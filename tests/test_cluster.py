"""Tests for the Appendix-B cluster rekeying heuristic."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ids import Id, IdScheme
from repro.keytree.cluster import ClusterRekeyingTree

SCHEME = IdScheme(num_digits=3, base=4)


def settled(users):
    tree = ClusterRekeyingTree(SCHEME)
    for uid in users:
        tree.request_join(uid)
    tree.process_batch()
    return tree


class TestLeadership:
    def test_first_join_in_cluster_is_leader(self):
        tree = ClusterRekeyingTree(SCHEME)
        assert tree.request_join(Id([0, 0, 0])) is True
        assert tree.request_join(Id([0, 0, 1])) is False  # same cluster
        assert tree.is_leader(Id([0, 0, 0]))
        assert not tree.is_leader(Id([0, 0, 1]))

    def test_leader_by_earliest_join_time(self):
        tree = settled([Id([1, 2, 3]), Id([1, 2, 0]), Id([1, 2, 1])])
        assert tree.leader_of(Id([1, 2, 1])) == Id([1, 2, 3])

    def test_clusters_are_level_dminus1_subtrees(self):
        tree = settled([Id([0, 0, 0]), Id([0, 1, 0]), Id([0, 0, 3])])
        assert tree.num_clusters == 2
        assert tree.cluster_of(Id([0, 0, 3])) == Id([0, 0])
        assert sorted(tree.cluster_members(Id([0, 0]))) == [
            Id([0, 0, 0]),
            Id([0, 0, 3]),
        ]

    def test_leadership_handoff_on_leader_leave(self):
        tree = settled([Id([2, 2, 0]), Id([2, 2, 1]), Id([2, 2, 2])])
        assert tree.request_leave(Id([2, 2, 0])) is True
        assert tree.leader_of(Id([2, 2, 1])) == Id([2, 2, 1])
        tree.process_batch()
        # the new leader's u-node is now in the inner key tree
        assert tree.key_tree.has_node(Id([2, 2, 1]))
        assert not tree.key_tree.has_node(Id([2, 2, 0]))


class TestRekeyTriggers:
    def test_non_leader_churn_is_free(self):
        tree = settled([Id([0, 0, 0]), Id([1, 1, 1])])
        assert tree.request_join(Id([0, 0, 2])) is False
        assert tree.request_leave(Id([0, 0, 2])) is False
        result = tree.process_batch()
        assert result.rekey_cost == 0
        assert result.unicasts == ()

    def test_leader_join_rekeys(self):
        tree = settled([Id([0, 0, 0])])
        assert tree.request_join(Id([3, 3, 0])) is True  # new cluster
        result = tree.process_batch()
        assert result.rekey_cost > 0

    def test_leader_leave_rekeys(self):
        tree = settled([Id([0, 0, 0]), Id([3, 3, 0])])
        assert tree.request_leave(Id([3, 3, 0])) is True
        result = tree.process_batch()
        assert result.rekey_cost > 0

    def test_unicasts_cover_every_non_leader(self):
        users = [Id([0, 0, j]) for j in range(3)] + [Id([2, 1, 0])]
        tree = settled(users)
        tree.request_leave(Id([2, 1, 0]))  # leader leaves -> rekey
        result = tree.process_batch()
        assert result.rekey_cost > 0
        fanout = {u.leader: set(u.members) for u in result.unicasts}
        assert fanout == {Id([0, 0, 0]): {Id([0, 0, 1]), Id([0, 0, 2])}}

    def test_errors(self):
        tree = settled([Id([0, 0, 0])])
        with pytest.raises(ValueError):
            tree.request_leave(Id([1, 1, 1]))
        tree.request_join(Id([0, 0, 1]))
        with pytest.raises(ValueError):
            tree.request_join(Id([0, 0, 1]))


class TestCostComparison:
    def test_cluster_cheaper_than_plain_modified_for_nonleader_churn(self):
        """With clusters populated, most churn hits non-leaders and the
        heuristic's rekey cost drops below the plain modified tree's."""
        from repro.keytree.modified_tree import ModifiedKeyTree

        users = [Id([a, b, c]) for a in range(2) for b in range(2) for c in range(3)]
        cluster = settled(users)
        plain = ModifiedKeyTree(SCHEME)
        for uid in users:
            plain.request_join(uid)
        plain.process_batch()
        # two non-leader leaves
        victims = [Id([0, 0, 1]), Id([0, 0, 2])]
        for v in victims:
            cluster.request_leave(v)
            plain.request_leave(v)
        assert cluster.process_batch().rekey_cost == 0
        assert plain.process_batch().rekey_cost > 0


@st.composite
def cluster_scenarios(draw):
    all_ids = [
        Id((a, b, c)) for a in range(3) for b in range(3) for c in range(4)
    ]
    initial = draw(st.lists(st.sampled_from(all_ids), min_size=3, max_size=20, unique=True))
    leave_count = draw(st.integers(0, len(initial)))
    return initial, leave_count


class TestChurnProperty:
    @given(cluster_scenarios(), st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_invariants_through_churn(self, scenario, seed):
        initial, leave_count = scenario
        rng = np.random.default_rng(seed)
        tree = settled(initial)
        victims = [
            initial[int(i)]
            for i in rng.choice(len(initial), size=leave_count, replace=False)
        ]
        for v in victims:
            tree.request_leave(v)
        tree.process_batch()
        remaining = set(initial) - set(victims)
        assert tree.num_users == len(remaining)
        # leaders exist exactly for occupied clusters, and each is the
        # earliest-joined member of its cluster
        clusters = {}
        for uid in remaining:
            clusters.setdefault(tree.cluster_of(uid), []).append(uid)
        assert tree.num_clusters == len(clusters)
        for prefix, members in clusters.items():
            leader = tree.leader_of(members[0])
            assert leader in members
            assert tree.key_tree.has_node(leader)
            for m in members:
                if m != leader:
                    assert not tree.key_tree.has_node(m)
