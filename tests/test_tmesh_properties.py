"""Property-based tests for the T-mesh: Theorem 1 and Lemmas 1-2 over
random 1-consistent tables, and the reliable transport's repair guarantee
under random fault plans.

The hypothesis profiles are registered in ``tests/conftest.py``:
``HYPOTHESIS_PROFILE=thorough pytest tests/test_tmesh_properties.py``
runs the deep version of these properties.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from tests.conftest import make_static_world
from repro.alm.reliable import ReliableSession
from repro.core.ids import Id, IdScheme
from repro.core.tmesh import rekey_session, run_multicast
from repro.faults import FaultPlan

SCHEME = IdScheme(3, 4)

id_sets = st.sets(
    st.tuples(*[st.integers(0, SCHEME.base - 1)] * SCHEME.num_digits),
    min_size=1,
    max_size=20,
)
seeds = st.integers(0, 10_000)


def to_ids(id_tuples):
    return [Id(t) for t in sorted(id_tuples)]


class TestTheorem1Properties:
    @given(id_sets, seeds)
    def test_exactly_once_and_lemmas(self, id_tuples, seed):
        """One random world, all three claims at once: Theorem 1
        (exactly-once) and Lemmas 1-2 (downstream == prefix sharers)."""
        ids = to_ids(id_tuples)
        topology, _, tables, server_table = make_static_world(
            SCHEME, ids, seed=seed
        )
        session = rekey_session(server_table, tables, topology)
        # Theorem 1
        assert set(session.receipts) == set(ids)
        assert session.duplicate_copies == {}
        # Lemmas 1-2: the users downstream of a level-i member are
        # exactly the other users sharing its first i digits.
        for member, receipt in session.receipts.items():
            level = receipt.forward_level
            downstream = set(session.downstream_users(member))
            sharers = {
                other
                for other in ids
                if other != member and other.shares_prefix(member, level)
            }
            assert downstream == sharers

    @given(id_sets, seeds, st.integers(1, 4))
    def test_exactly_once_for_any_k(self, id_tuples, seed, k):
        ids = to_ids(id_tuples)
        topology, _, tables, server_table = make_static_world(
            SCHEME, ids, seed=seed, k=k
        )
        session = rekey_session(server_table, tables, topology)
        assert set(session.receipts) == set(ids)
        assert session.duplicate_copies == {}


class TestFaultPlanProperties:
    @given(id_sets, seeds, st.floats(0.05, 0.5))
    def test_unrepaired_transport_never_invents_receivers(
        self, id_tuples, seed, loss
    ):
        """The lossy (unrepaired) FORWARD can only lose receipts, never
        create members or duplicate under pure drops."""
        ids = to_ids(id_tuples)
        topology, _, tables, server_table = make_static_world(
            SCHEME, ids, seed=seed
        )
        plan = FaultPlan(seed=seed).drop(loss)
        session = run_multicast(
            server_table, tables, topology, fault_plan=plan
        )
        assert set(session.receipts) <= set(ids)
        assert session.duplicate_copies == {}

    @given(
        st.sets(
            st.tuples(*[st.integers(0, SCHEME.base - 1)] * SCHEME.num_digits),
            min_size=2,
            max_size=12,
        ),
        st.integers(0, 10_000),
        st.floats(0.0, 0.25),
    )
    @settings(max_examples=15, deadline=None)
    def test_repair_restores_exactly_once(self, id_tuples, seed, loss):
        """The tentpole property: under any drawn drop rate up to 25%,
        every member eventually holds exactly one copy of every payload
        after NACK repair — Theorem 1's guarantee, restored."""
        ids = to_ids(id_tuples)
        topology, _, tables, server_table = make_static_world(
            SCHEME, ids, seed=seed
        )
        plan = FaultPlan(seed=seed).drop(loss)
        session = ReliableSession(tables, server_table, topology, plan=plan)
        payloads = ["k0", "k1", "k2"]
        outcome = session.multicast(payloads)
        assert outcome.delivery_ratio == 1.0
        assert outcome.duplicates_surfaced == 0
        for got in outcome.delivered.values():
            assert got == payloads

    @given(
        st.sets(
            st.tuples(*[st.integers(0, SCHEME.base - 1)] * SCHEME.num_digits),
            min_size=3,
            max_size=10,
        ),
        st.integers(0, 10_000),
    )
    @settings(max_examples=10, deadline=None)
    def test_repair_with_mixed_faults(self, id_tuples, seed):
        """Drops, duplicates, and reordering together still end in
        exactly-once for every member."""
        ids = to_ids(id_tuples)
        topology, _, tables, server_table = make_static_world(
            SCHEME, ids, seed=seed
        )
        plan = (
            FaultPlan(seed=seed)
            .drop(0.15)
            .duplicate(0.15)
            .reorder(0.2, spread=80.0)
        )
        session = ReliableSession(tables, server_table, topology, plan=plan)
        outcome = session.multicast(["a", "b", "c", "d"])
        assert outcome.delivery_ratio == 1.0
        assert outcome.duplicates_surfaced == 0
