"""Tests for the Table-2 protocol definitions."""

import pytest

from repro.core.protocols import PROTOCOLS, SPLITTING_PAIRS, RekeyProtocol


class TestTable2:
    def test_seven_protocols(self):
        assert len(PROTOCOLS) == 7
        assert set(PROTOCOLS) == {"P0", "P0'", "P1", "P1'", "P2", "P3", "P4"}

    def test_nice_protocols_use_original_tree(self):
        assert PROTOCOLS["P0'"].key_tree == "original"
        assert PROTOCOLS["P1'"].key_tree == "original"
        assert PROTOCOLS["P0'"].multicast == "nice"
        assert not PROTOCOLS["P0'"].splitting
        assert PROTOCOLS["P1'"].splitting

    def test_tmesh_protocols_use_modified_tree(self):
        for name in ("P1", "P2", "P3", "P4"):
            assert PROTOCOLS[name].key_tree == "modified"
            assert PROTOCOLS[name].multicast == "tmesh"
        assert PROTOCOLS["P1"].cluster_rekeying is False
        assert PROTOCOLS["P2"].cluster_rekeying is False
        assert PROTOCOLS["P3"].cluster_rekeying is True
        assert PROTOCOLS["P4"].cluster_rekeying is True
        assert not PROTOCOLS["P1"].splitting
        assert PROTOCOLS["P2"].splitting
        assert not PROTOCOLS["P3"].splitting
        assert PROTOCOLS["P4"].splitting

    def test_ip_multicast_protocol(self):
        p0 = PROTOCOLS["P0"]
        assert (p0.key_tree, p0.multicast, p0.splitting) == (
            "original",
            "ip",
            False,
        )

    def test_splitting_pairs_differ_only_in_splitting(self):
        for unsplit, split in SPLITTING_PAIRS:
            a, b = PROTOCOLS[unsplit], PROTOCOLS[split]
            assert not a.splitting and b.splitting
            assert a.key_tree == b.key_tree
            assert a.multicast == b.multicast
            assert a.cluster_rekeying == b.cluster_rekeying


class TestValidation:
    def test_unknown_tree_rejected(self):
        with pytest.raises(ValueError):
            RekeyProtocol("x", "magic", "tmesh", False, True)

    def test_unknown_multicast_rejected(self):
        with pytest.raises(ValueError):
            RekeyProtocol("x", "original", "smoke-signals", None, False)

    def test_cluster_only_for_tmesh(self):
        with pytest.raises(ValueError):
            RekeyProtocol("x", "original", "nice", True, False)
        with pytest.raises(ValueError):
            RekeyProtocol("x", "modified", "tmesh", None, False)
