"""Cross-backend conformance for the :mod:`repro.compute` seam.

The vectorized ``"numpy"`` backend claims to be *bitwise identical* to
the pure-Python ``"reference"`` backend on every kernel it accelerates:
the FORWARD fan-out, Theorem-2 rekey splitting, and key-tree batch-node
marking.  Property tests drive randomly generated worlds — receipt sets,
split boundaries, batch leave-sets — through both backends and compare
the serialized results byte for byte (not approximately: the perf
overhaul's equivalence discipline, see ``tests/test_perf_equivalence.py``
and docs/PERFORMANCE.md).

Runs in tier-1 via the ``conformance`` marker and standalone via
``pytest -q -m compute``.  Every numpy-backed case *skips* (never fails)
when the ``fast`` extra is not installed; the registry/fallback tests run
regardless.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.compute as compute_registry
from repro.compute import (
    ComputeUnavailable,
    available_backends,
    create_backend,
    resolve_backend,
)
from repro.core.ids import Id, IdScheme
from repro.core.splitting import run_split_rekey
from repro.core.tmesh import plan_session, rekey_session
from repro.keytree.modified_tree import ModifiedKeyTree
from tests.conftest import SMALL_SCHEME, make_static_world

pytestmark = [pytest.mark.conformance, pytest.mark.compute]


@pytest.fixture(scope="module")
def numpy_backend():
    try:
        return create_backend("numpy")
    except ComputeUnavailable:
        pytest.skip("fast extra not installed; numpy backend unavailable")


def _session_state(session):
    return pickle.dumps(
        (session.receipts, session.edges, session.duplicate_copies)
    )


def _split_state(result):
    return pickle.dumps(
        (result.received, result.forwarded, result.edge_loads)
    )


#: Distinct user IDs in the small 3-digit base-4 scheme, as digit tuples.
_ID_SETS = st.sets(
    st.tuples(*([st.integers(min_value=0, max_value=3)] * 3)),
    min_size=2,
    max_size=12,
).map(sorted)


# ----------------------------------------------------------------------
# FORWARD fan-out: random receipt sets
# ----------------------------------------------------------------------
class TestFanoutEquivalence:
    @given(digit_sets=_ID_SETS, seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=20, deadline=None)
    def test_random_receipt_sets_bitwise_equal(
        self, numpy_backend, digit_sets, seed
    ):
        ids = [Id(d) for d in digit_sets]
        topology, _, tables, server_table = make_static_world(
            SMALL_SCHEME, ids, seed=seed
        )
        ref = rekey_session(
            server_table, tables, topology, compute="reference"
        )
        vec = rekey_session(
            server_table, tables, topology, compute=numpy_backend
        )
        assert list(ref.receipts) == list(vec.receipts)
        assert _session_state(ref) == _session_state(vec)

    @given(digit_sets=_ID_SETS, seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=10, deadline=None)
    def test_planned_replay_bitwise_equal(
        self, numpy_backend, digit_sets, seed
    ):
        ids = [Id(d) for d in digit_sets]
        topology, _, tables, server_table = make_static_world(
            SMALL_SCHEME, ids, seed=seed
        )
        plan = plan_session(server_table, tables)
        ref = plan.run(topology, compute="reference")
        vec = plan.run(topology, compute=numpy_backend)
        assert _session_state(ref) == _session_state(vec)

    @given(
        digit_sets=_ID_SETS,
        seed=st.integers(min_value=0, max_value=2**16),
        delay=st.floats(
            min_value=0.0, max_value=10.0,
            allow_nan=False, allow_infinity=False,
        ),
    )
    @settings(max_examples=10, deadline=None)
    def test_processing_delay_floats_bitwise_equal(
        self, numpy_backend, digit_sets, seed, delay
    ):
        ids = [Id(d) for d in digit_sets]
        topology, _, tables, server_table = make_static_world(
            SMALL_SCHEME, ids, seed=seed
        )
        ref = rekey_session(
            server_table, tables, topology,
            processing_delay=delay, compute="reference",
        )
        vec = rekey_session(
            server_table, tables, topology,
            processing_delay=delay, compute=numpy_backend,
        )
        # Same floats bit for bit, not just approximately.
        assert _session_state(ref) == _session_state(vec)


# ----------------------------------------------------------------------
# Theorem-2 splitting: random split boundaries (leave-sets)
# ----------------------------------------------------------------------
class TestSplitEquivalence:
    @given(
        data=st.data(),
        digit_sets=_ID_SETS,
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=20, deadline=None)
    def test_random_split_boundaries_bitwise_equal(
        self, numpy_backend, data, digit_sets, seed
    ):
        ids = [Id(d) for d in digit_sets]
        leavers = data.draw(
            st.sets(st.sampled_from(ids), max_size=len(ids) - 1)
        )
        topology, _, tables, server_table = make_static_world(
            SMALL_SCHEME, ids, seed=seed
        )
        tree = ModifiedKeyTree(SMALL_SCHEME)
        for uid in ids:
            tree.request_join(uid)
        tree.process_batch()
        for uid in sorted(leavers, key=lambda u: u.digits):
            tree.request_leave(uid)
        message = tree.process_batch()

        session = rekey_session(
            server_table, tables, topology, compute="reference"
        )
        ref = run_split_rekey(session, message, compute="reference")
        vec = run_split_rekey(session, message, compute=numpy_backend)
        assert _split_state(ref) == _split_state(vec)

        ref_sets = run_split_rekey(
            session, message, track_sets=True, compute="reference"
        )
        vec_sets = run_split_rekey(
            session, message, track_sets=True, compute=numpy_backend
        )
        assert ref_sets.received_sets == vec_sets.received_sets
        assert _split_state(ref_sets) == _split_state(vec_sets)

    def test_split_over_numpy_session_matches_reference_world(self):
        """The whole pipeline on one backend equals the whole pipeline on
        the other: sessions produced by either backend are interchangeable
        inputs to either split kernel."""
        backend = create_backend_or_skip()
        ids = [Id([a, b, 0]) for a in range(4) for b in range(3)]
        topology, _, tables, server_table = make_static_world(
            SMALL_SCHEME, ids, seed=3
        )
        tree = ModifiedKeyTree(SMALL_SCHEME)
        for uid in ids:
            tree.request_join(uid)
        tree.process_batch()
        for uid in ids[::3]:
            tree.request_leave(uid)
        message = tree.process_batch()

        ref_session = rekey_session(
            server_table, tables, topology, compute="reference"
        )
        vec_session = rekey_session(
            server_table, tables, topology, compute=backend
        )
        ref = run_split_rekey(ref_session, message, compute="reference")
        vec = run_split_rekey(vec_session, message, compute=backend)
        assert _split_state(ref) == _split_state(vec)


def create_backend_or_skip():
    try:
        return create_backend("numpy")
    except ComputeUnavailable:
        pytest.skip("fast extra not installed; numpy backend unavailable")


# ----------------------------------------------------------------------
# Key-tree batch rekeying: random batch leave-sets
# ----------------------------------------------------------------------
class TestMarkUpdatedEquivalence:
    @given(
        data=st.data(),
        digit_sets=_ID_SETS,
    )
    @settings(max_examples=20, deadline=None)
    def test_random_batch_leave_sets_identical_messages(
        self, numpy_backend, data, digit_sets
    ):
        ids = [Id(d) for d in digit_sets]
        leavers = data.draw(st.sets(st.sampled_from(ids)))
        joins_after = data.draw(
            st.sets(
                st.tuples(*([st.integers(min_value=0, max_value=3)] * 3)),
                max_size=4,
            )
        )
        messages = []
        for backend in ("reference", numpy_backend):
            tree = ModifiedKeyTree(SMALL_SCHEME, compute=backend)
            for uid in ids:
                tree.request_join(uid)
            tree.process_batch()
            for uid in sorted(leavers, key=lambda u: u.digits):
                tree.request_leave(uid)
            for digits in sorted(joins_after):
                if Id(digits) not in tree.user_ids:
                    tree.request_join(Id(digits))
            messages.append(tree.process_batch())
        ref_message, vec_message = messages
        assert pickle.dumps(ref_message) == pickle.dumps(vec_message)

    def test_short_id_batches_fall_back_identically(self, numpy_backend):
        """IDs shorter than the scheme's digit count (unreachable through
        the public join path, reachable through mark_updated directly)
        route the numpy backend to the reference fallback — same output."""
        scheme = IdScheme(num_digits=3, base=4)
        changed = [Id([1, 2]), Id([1]), Id([1, 2, 3])]
        members = {
            Id(()), Id([1]), Id([1, 2]), Id([1, 2, 3]),
        }
        ref = create_backend("reference").mark_updated(
            changed, members.__contains__, scheme.num_digits
        )
        vec = numpy_backend.mark_updated(
            changed, members.__contains__, scheme.num_digits
        )
        assert ref == vec


# ----------------------------------------------------------------------
# Registry contract and graceful degradation (run without numpy too)
# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtins_listed(self):
        assert {"reference", "numpy"} <= set(available_backends())

    def test_unknown_backend_is_a_key_error(self):
        with pytest.raises(KeyError, match="unknown compute backend"):
            create_backend("no-such-backend")

    def test_resolve_accepts_name_instance_and_none(self):
        ref = create_backend("reference")
        assert resolve_backend("reference") is ref
        assert resolve_backend(ref) is ref
        assert resolve_backend(None).name in set(available_backends())

    def test_set_default_backend_round_trip(self):
        compute_registry.set_default_backend("reference")
        try:
            assert resolve_backend(None).name == "reference"
        finally:
            compute_registry.set_default_backend(None)

    def test_missing_numpy_degrades_to_reference(self, monkeypatch):
        """REPRO_COMPUTE=numpy with no numpy importable must *run*, on
        the reference backend — the fast extra can never break a user."""
        from repro.compute import numpy_backend as nb

        monkeypatch.setattr(nb, "np", None)
        monkeypatch.setattr(compute_registry, "_INSTANCES", {})
        monkeypatch.setattr(compute_registry, "_DEFAULT", None)
        monkeypatch.setattr(compute_registry, "_DEFAULT_NAME", None)
        monkeypatch.setenv("REPRO_COMPUTE", "numpy")
        with pytest.raises(ComputeUnavailable):
            create_backend("numpy")
        assert compute_registry.default_backend().name == "reference"

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setattr(compute_registry, "_DEFAULT", None)
        monkeypatch.setattr(compute_registry, "_DEFAULT_NAME", None)
        monkeypatch.setenv("REPRO_COMPUTE", "reference")
        assert compute_registry.default_backend().name == "reference"


# ----------------------------------------------------------------------
# The numpy backend really vectorizes (sanity, not perf)
# ----------------------------------------------------------------------
def test_numpy_backend_reuses_compiled_structure(numpy_backend):
    """Theorem 1: with fixed tables the delivery tree is fixed, so the
    compiled fan-out must be reused across sessions (cache hit), and a
    table mutation must invalidate it."""
    ids = [Id([a, b, 0]) for a in range(4) for b in range(2)]
    topology, _, tables, server_table = make_static_world(
        SMALL_SCHEME, ids, seed=11
    )
    first = rekey_session(
        server_table, tables, topology, compute=numpy_backend
    )
    first.receipts  # materialize, forcing the compile
    compiled = server_table._compiled_fanout
    second = rekey_session(
        server_table, tables, topology, compute=numpy_backend
    )
    second.receipts
    assert server_table._compiled_fanout is compiled
    assert _session_state(first) == _session_state(second)
