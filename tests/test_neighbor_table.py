"""Tests for neighbor tables and K-consistency (Section 2.2, Def. 3)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.id_tree import IdTree
from repro.core.ids import Id, IdScheme, NULL_ID
from repro.core.neighbor_table import (
    NeighborTable,
    UserRecord,
    build_consistent_tables,
    build_server_table,
    check_k_consistency,
)

SCHEME = IdScheme(num_digits=3, base=4)


def rec(digits, host):
    return UserRecord(Id(digits), host)


@pytest.fixture
def owner_table():
    return NeighborTable(SCHEME, rec([1, 2, 3], 0), k=2)


class TestSlotPlacement:
    def test_slot_is_common_prefix_row(self, owner_table):
        # (i, w.ID[i]) where i = longest common prefix length (Def. 3).
        assert owner_table.slot_for(rec([0, 0, 0], 1)) == (0, 0)
        assert owner_table.slot_for(rec([1, 0, 0], 2)) == (1, 0)
        assert owner_table.slot_for(rec([1, 2, 0], 3)) == (2, 0)

    def test_own_id_has_no_slot(self, owner_table):
        assert owner_table.slot_for(rec([1, 2, 3], 9)) is None

    def test_own_digit_entry_stays_empty(self, owner_table):
        # Def. 3 (1): if j == u.ID[i], the (i,j)-entry is empty — records
        # with that digit land in a deeper row instead.
        owner_table.insert(rec([1, 0, 0], 1), 10.0)
        assert owner_table.entry(0, 1) == []
        assert [r.user_id for r in owner_table.entry(1, 0)] == [Id([1, 0, 0])]


class TestInsertRemove:
    def test_insert_sorted_by_rtt(self, owner_table):
        owner_table.insert(rec([0, 0, 0], 1), 30.0)
        owner_table.insert(rec([0, 1, 0], 2), 10.0)
        assert [r.host for r in owner_table.entry(0, 0)] == [2, 1]
        assert owner_table.primary(0, 0).host == 2
        assert owner_table.entry_rtts(0, 0) == [10.0, 30.0]

    def test_insert_respects_k(self, owner_table):
        owner_table.insert(rec([0, 0, 0], 1), 30.0)
        owner_table.insert(rec([0, 1, 0], 2), 10.0)
        changed = owner_table.insert(rec([0, 2, 0], 3), 20.0)  # evicts host 1
        assert changed
        assert [r.host for r in owner_table.entry(0, 0)] == [2, 3]

    def test_insert_worse_than_k_is_noop(self, owner_table):
        owner_table.insert(rec([0, 0, 0], 1), 10.0)
        owner_table.insert(rec([0, 1, 0], 2), 20.0)
        changed = owner_table.insert(rec([0, 2, 0], 3), 99.0)
        assert not changed
        assert [r.host for r in owner_table.entry(0, 0)] == [1, 2]

    def test_duplicate_user_rejected(self, owner_table):
        assert owner_table.insert(rec([0, 0, 0], 1), 10.0)
        assert not owner_table.insert(rec([0, 0, 0], 1), 5.0)
        assert len(owner_table.entry(0, 0)) == 1

    def test_remove(self, owner_table):
        owner_table.insert(rec([0, 0, 0], 1), 10.0)
        assert owner_table.remove(Id([0, 0, 0]))
        assert owner_table.entry(0, 0) == []
        assert not owner_table.remove(Id([0, 0, 0]))

    def test_contains_and_iteration(self, owner_table):
        owner_table.insert(rec([0, 0, 0], 1), 10.0)
        owner_table.insert(rec([1, 0, 0], 2), 10.0)
        assert owner_table.contains(Id([0, 0, 0]))
        assert owner_table.num_neighbors() == 2
        assert {r.host for r in owner_table.all_records()} == {1, 2}

    def test_row_primaries(self, owner_table):
        owner_table.insert(rec([0, 0, 0], 1), 10.0)
        owner_table.insert(rec([2, 0, 0], 2), 10.0)
        assert [(j, r.host) for j, r in owner_table.row_primaries(0)] == [
            (0, 1),
            (2, 2),
        ]

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            NeighborTable(SCHEME, rec([0, 0, 0], 0), k=0)

    def test_bad_slot_indices(self, owner_table):
        with pytest.raises(IndexError):
            owner_table.entry(3, 0)
        with pytest.raises(IndexError):
            owner_table.entry(0, 4)


class TestServerTable:
    def test_single_row(self):
        table = NeighborTable(SCHEME, UserRecord(NULL_ID, 99), k=2)
        assert table.is_server_table
        assert table.num_rows == 1

    def test_entries_keyed_by_first_digit(self):
        # Section 2.2: the (0,j)-entry holds the K users closest to the
        # server among those whose IDs start with digit j.
        records = [rec([0, 0, 0], 0), rec([0, 1, 0], 1), rec([2, 0, 0], 2)]
        rtts = {0: 30.0, 1: 10.0, 2: 5.0}
        table = build_server_table(
            SCHEME, 99, records, lambda s, h: rtts[h], k=1
        )
        assert table.primary(0, 0).host == 1  # closest of the two 0-prefix
        assert table.primary(0, 2).host == 2
        assert table.primary(0, 1) is None


def _random_population(rng, n):
    ids = set()
    while len(ids) < n:
        ids.add(tuple(int(rng.integers(0, SCHEME.base)) for _ in range(3)))
    return [UserRecord(Id(t), i) for i, t in enumerate(sorted(ids))]


class TestConsistency:
    def test_oracle_tables_are_k_consistent(self):
        rng = np.random.default_rng(1)
        records = _random_population(rng, 20)
        rtt = lambda a, b: abs(a - b) + 1.0
        tables = build_consistent_tables(SCHEME, records, rtt, k=2)
        tree = IdTree(SCHEME, [r.user_id for r in records])
        assert check_k_consistency(tables, tree, 2) == []

    def test_checker_flags_missing_neighbor(self):
        rng = np.random.default_rng(2)
        records = _random_population(rng, 12)
        rtt = lambda a, b: 1.0
        tables = build_consistent_tables(SCHEME, records, rtt, k=1)
        tree = IdTree(SCHEME, [r.user_id for r in records])
        # break one table
        victim = records[0].user_id
        other = next(iter(tables[victim].all_records()))
        tables[victim].remove(other.user_id)
        problems = check_k_consistency(tables, tree, 1)
        assert problems and str(victim) in problems[0]

    def test_checker_flags_foreign_record(self):
        records = [rec([0, 0, 0], 0), rec([1, 0, 0], 1), rec([2, 0, 0], 2)]
        tables = build_consistent_tables(
            SCHEME, records, lambda a, b: 1.0, k=1
        )
        tree = IdTree(SCHEME, [r.user_id for r in records])
        # smuggle a wrong-subtree record directly into an entry
        table = tables[Id([0, 0, 0])]
        entry = table._entries[(0, 1)]
        entry.neighbors.append((0.5, rec([2, 0, 0], 2)))
        problems = check_k_consistency(tables, tree, 1)
        assert any("outside subtree" in p or "neighbors" in p for p in problems)

    @given(st.integers(min_value=2, max_value=25), st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_oracle_consistency_property(self, n, seed):
        rng = np.random.default_rng(seed)
        records = _random_population(rng, n)
        hosts = {r.host: rng.uniform(0, 100, size=2) for r in records}
        rtt = lambda a, b: float(np.linalg.norm(hosts[a] - hosts[b])) + 0.1
        for k in (1, 3):
            tables = build_consistent_tables(SCHEME, records, rtt, k=k)
            tree = IdTree(SCHEME, [r.user_id for r in records])
            assert check_k_consistency(tables, tree, k) == []
