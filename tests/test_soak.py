"""The seeded soak lane: ``pytest -q -m soak`` (docs/SERVICE.md).

A bounded (~10s wall) slice of what ``tools/soak.py`` runs for minutes:
seeded churn from each profile, chaos crash windows, convergent
checkpoints asserting the :mod:`repro.verify` invariants, a mid-run
graceful restart resuming byte-identical key-tree state, and the CLI
driver end to end.  Everything is seeded; the deterministic (virtual
clock, in-process delivery) drive is additionally asserted reproducible
run over run.
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest

from repro.net import TransitStubParams, TransitStubTopology
from repro.service import PROFILES, SoakHarness
from repro.trace import tracing

pytestmark = pytest.mark.soak

SEED = 7
HOSTS = 17
PARAMS = TransitStubParams(
    transit_domains=3, transit_per_domain=3, stubs_per_transit=2, stub_size=3
)


def make_topology(seed: int = SEED) -> TransitStubTopology:
    return TransitStubTopology(num_hosts=HOSTS, params=PARAMS, seed=seed)


def run_soak(cycles: int, **kwargs):
    kwargs.setdefault("seed", SEED)
    kwargs.setdefault("interval_ms", 512.0)
    kwargs.setdefault("realtime", False)
    kwargs.setdefault("use_sockets", False)
    with tracing(seed=kwargs["seed"]):
        harness = SoakHarness(make_topology(kwargs["seed"]), 0, **kwargs)
        report = harness.run(cycles=cycles)
    return report


class TestDeterministicSoak:
    def test_clean_soak_zero_violations(self):
        report = run_soak(cycles=6, checkpoint_every=3)
        assert report.cycles == 6
        assert report.violations == []
        assert report.checkpoints == 3  # 2 periodic + final
        assert report.joins > 0
        assert report.scrapes > 0
        assert report.snapshot_bytes > 0

    def test_chaos_soak_zero_violations(self):
        report = run_soak(
            cycles=8, chaos=True, crash_every=4, checkpoint_every=4
        )
        assert report.violations == []
        assert report.crashes >= 1
        assert report.messages_dropped > 0

    def test_restart_resumes_byte_identical(self):
        report = run_soak(cycles=6, checkpoint_every=3, restart_at_cycle=2)
        assert report.restarts == 1
        assert report.restart_state_match
        assert report.violations == []

    def test_seeded_runs_are_reproducible(self):
        first = run_soak(cycles=4, chaos=True, checkpoint_every=2)
        second = run_soak(cycles=4, chaos=True, checkpoint_every=2)
        assert (first.joins, first.leaves, first.crashes) == (
            second.joins,
            second.leaves,
            second.crashes,
        )
        assert first.events == second.events
        assert first.messages_sent == second.messages_sent
        assert first.snapshot_bytes == second.snapshot_bytes

    @pytest.mark.parametrize("profile", sorted(PROFILES))
    def test_every_profile_soaks_clean(self, profile):
        report = run_soak(cycles=4, profile=profile, checkpoint_every=4)
        assert report.violations == []
        assert report.intervals >= 4


class TestLiveSoak:
    def test_socket_realtime_chaos_slice(self):
        """The acceptance configuration at test scale: sockets, realtime
        pacing (scaled far below wall speed), chaos, restart."""
        report = run_soak(
            cycles=6,
            chaos=True,
            crash_every=3,
            checkpoint_every=3,
            restart_at_cycle=2,
            realtime=True,
            time_scale=1e-6,
            use_sockets=True,
        )
        assert report.violations == []
        assert report.restart_state_match
        assert report.restarts == 1


class TestSoakCli:
    def soak_main(self):
        path = pathlib.Path(__file__).parent.parent / "tools" / "soak.py"
        spec = importlib.util.spec_from_file_location("soak_cli", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module.main

    def test_deterministic_cli_run_exits_zero(self, capsys, tmp_path):
        main = self.soak_main()
        snapshot = tmp_path / "final.snap"
        code = main(
            [
                "--cycles", "4",
                "--seed", "7",
                "--hosts", str(HOSTS),
                "--interval-ms", "512",
                "--checkpoint-every", "2",
                "--no-sockets",
                "--no-realtime",
                "--no-restart",
                "--snapshot", str(snapshot),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "zero verify violations at every checkpoint" in out
        assert snapshot.read_bytes()  # final state written

    def test_cli_scrape_dir(self, capsys, tmp_path):
        main = self.soak_main()
        code = main(
            [
                "--cycles", "2",
                "--seed", "7",
                "--hosts", str(HOSTS),
                "--interval-ms", "512",
                "--no-sockets",
                "--no-realtime",
                "--no-restart",
                "--no-faults",
                "--scrape-dir", str(tmp_path),
            ]
        )
        assert code == 0
        assert (tmp_path / "metrics.prom").read_text().strip()
