"""Tests for the T-mesh multicast scheme: Theorem 1, Lemmas 1–2, and the
Section 4.1 latency metrics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.id_tree import IdTree
from repro.core.ids import Id, IdScheme, NULL_ID
from repro.core.neighbor_table import (
    UserRecord,
    build_consistent_tables,
    build_server_table,
)
from repro.core.tmesh import data_session, rekey_session, run_multicast
from repro.net.planetlab import MatrixTopology

FIG1_SCHEME = IdScheme(num_digits=2, base=3)
FIG1_IDS = [Id([0, 0]), Id([0, 1]), Id([2, 0]), Id([2, 1]), Id([2, 2])]


def build_world(scheme, ids, seed=0, k=1, server_host=None):
    """Random-geometry topology + consistent tables for a given ID set."""
    n = len(ids) + 1
    rng = np.random.default_rng(seed)
    points = rng.uniform(0, 100, size=(n, 2))
    matrix = np.sqrt(
        ((points[:, None, :] - points[None, :, :]) ** 2).sum(axis=2)
    )
    matrix = (matrix + matrix.T) / 2
    np.fill_diagonal(matrix, 0.0)
    topology = MatrixTopology(matrix)
    records = [UserRecord(uid, host) for host, uid in enumerate(ids)]
    tables = build_consistent_tables(scheme, records, topology.rtt, k=k)
    server = server_host if server_host is not None else n - 1
    server_table = build_server_table(scheme, server, records, topology.rtt, k=k)
    return topology, records, tables, server_table


class TestFig3Example:
    """The example rekey multicast tree of Fig. 3."""

    def test_every_user_receives_exactly_once(self):
        topology, _, tables, server_table = build_world(FIG1_SCHEME, FIG1_IDS)
        session = rekey_session(server_table, tables, topology)
        assert set(session.receipts) == set(FIG1_IDS)
        assert session.duplicate_copies == {}

    def test_server_sends_one_copy_per_level1_subtree(self):
        topology, _, tables, server_table = build_world(FIG1_SCHEME, FIG1_IDS)
        session = rekey_session(server_table, tables, topology)
        server_edges = [e for e in session.edges if e.src == NULL_ID]
        # two level-1 subtrees exist ([0] and [2]) => two copies sent
        assert len(server_edges) == 2
        first_digits = sorted(e.dst[0] for e in server_edges)
        assert first_digits == [0, 2]

    def test_forwarding_levels_increase_along_tree(self):
        topology, _, tables, server_table = build_world(FIG1_SCHEME, FIG1_IDS)
        session = rekey_session(server_table, tables, topology)
        for receipt in session.receipts.values():
            assert 1 <= receipt.forward_level <= FIG1_SCHEME.num_digits


class TestTheorem1:
    """Exactly-once delivery under 1-consistent tables."""

    @given(
        st.sets(st.tuples(*[st.integers(0, 3)] * 3), min_size=1, max_size=30),
        st.integers(0, 10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_rekey_exactly_once(self, id_tuples, seed):
        scheme = IdScheme(3, 4)
        ids = [Id(t) for t in sorted(id_tuples)]
        topology, _, tables, server_table = build_world(scheme, ids, seed=seed)
        session = rekey_session(server_table, tables, topology)
        assert set(session.receipts) == set(ids)
        assert session.duplicate_copies == {}

    @given(
        st.sets(st.tuples(*[st.integers(0, 3)] * 3), min_size=2, max_size=30),
        st.integers(0, 10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_data_exactly_once(self, id_tuples, seed):
        scheme = IdScheme(3, 4)
        ids = [Id(t) for t in sorted(id_tuples)]
        topology, _, tables, _ = build_world(scheme, ids, seed=seed)
        rng = np.random.default_rng(seed)
        sender = ids[int(rng.integers(0, len(ids)))]
        session = data_session(sender, tables, topology)
        assert set(session.receipts) == set(ids) - {sender}
        assert session.duplicate_copies == {}

    def test_k4_tables_also_deliver_exactly_once(self):
        scheme = IdScheme(3, 4)
        rng = np.random.default_rng(5)
        ids = [
            Id(t)
            for t in sorted(
                {tuple(int(rng.integers(0, 4)) for _ in range(3)) for _ in range(25)}
            )
        ]
        topology, _, tables, server_table = build_world(scheme, ids, k=4)
        session = rekey_session(server_table, tables, topology)
        assert set(session.receipts) == set(ids)
        assert session.duplicate_copies == {}


class TestLemmas:
    """Lemma 1: a level-i member and its downstream users share
    ID[0:i-1].  Lemma 2: any member sharing that prefix IS downstream."""

    def _session(self, seed=3):
        scheme = IdScheme(3, 4)
        rng = np.random.default_rng(seed)
        ids = [
            Id(t)
            for t in sorted(
                {tuple(int(rng.integers(0, 4)) for _ in range(3)) for _ in range(30)}
            )
        ]
        topology, _, tables, server_table = build_world(scheme, ids, seed=seed)
        return rekey_session(server_table, tables, topology), ids

    def test_lemma1_downstream_share_prefix(self):
        session, _ = self._session()
        for member, receipt in session.receipts.items():
            level = receipt.forward_level
            for down in session.downstream_users(member):
                assert down.shares_prefix(member, level), (
                    f"{down} at downstream of level-{level} {member}"
                )

    def test_lemma2_prefix_sharers_are_downstream(self):
        session, ids = self._session()
        for member, receipt in session.receipts.items():
            level = receipt.forward_level
            downstream = set(session.downstream_users(member))
            for other in ids:
                if other == member:
                    continue
                if other.shares_prefix(member, level):
                    assert other in downstream


class TestMetrics:
    def test_app_delay_is_sum_of_hop_delays(self):
        topology, _, tables, server_table = build_world(FIG1_SCHEME, FIG1_IDS)
        session = rekey_session(server_table, tables, topology)
        for member, receipt in session.receipts.items():
            # reconstruct path delay from upstream chain
            delay = 0.0
            node = member
            while node != NULL_ID:
                r = session.receipts[node]
                prev_host = (
                    session.sender_host
                    if r.upstream == NULL_ID
                    else session.receipts[r.upstream].host
                )
                delay += topology.one_way_delay(prev_host, r.host)
                node = r.upstream
            assert receipt.arrival_time == pytest.approx(delay)

    def test_rdp_at_least_one_for_direct_children(self):
        topology, _, tables, server_table = build_world(FIG1_SCHEME, FIG1_IDS)
        session = rekey_session(server_table, tables, topology)
        for member, receipt in session.receipts.items():
            if receipt.upstream == NULL_ID:
                assert session.rdp(member, topology) == pytest.approx(1.0)

    def test_user_stress_counts_forwards(self):
        topology, _, tables, server_table = build_world(FIG1_SCHEME, FIG1_IDS)
        session = rekey_session(server_table, tables, topology)
        total_forwards = sum(
            session.user_stress(uid) for uid in FIG1_IDS
        ) + session.user_stress(NULL_ID)
        assert total_forwards == len(session.edges)

    def test_processing_delay_adds_per_hop(self):
        topology, _, tables, server_table = build_world(FIG1_SCHEME, FIG1_IDS)
        base = rekey_session(server_table, tables, topology)
        slowed = rekey_session(server_table, tables, topology, processing_delay=5.0)
        for member in base.receipts:
            hops = 1
            node = member
            while base.receipts[node].upstream != NULL_ID:
                node = base.receipts[node].upstream
                hops += 1
            assert slowed.receipts[member].arrival_time >= (
                base.receipts[member].arrival_time
            )

    def test_data_session_rejects_non_member(self):
        topology, _, tables, _ = build_world(FIG1_SCHEME, FIG1_IDS)
        with pytest.raises(ValueError):
            data_session(Id([1, 1]), tables, topology)
        with pytest.raises(ValueError):
            data_session(NULL_ID, tables, topology)

    def test_rekey_session_requires_server_table(self):
        topology, _, tables, _ = build_world(FIG1_SCHEME, FIG1_IDS)
        with pytest.raises(ValueError):
            rekey_session(tables[FIG1_IDS[0]], tables, topology)


class TestFailureResilience:
    """Section 2.3: with K > 1, a forwarder routes around a failed next
    hop using another neighbor from the same table entry."""

    def _world(self, k, seed=9):
        scheme = IdScheme(3, 4)
        rng = np.random.default_rng(seed)
        ids = [
            Id(t)
            for t in sorted(
                {tuple(int(rng.integers(0, 4)) for _ in range(3)) for _ in range(40)}
            )
        ]
        return build_world(scheme, ids, seed=seed, k=k), ids

    def test_failures_cut_subtrees_without_backups(self):
        (topology, _, tables, server_table), ids = self._world(k=4)
        # fail the server's first primary: its subtree loses delivery
        victim = server_table.row_primaries(0)[0][1]
        session = run_multicast(
            server_table,
            tables,
            topology,
            failed_hosts={victim.host},
            use_backups=False,
        )
        assert victim.user_id not in session.receipts
        assert len(session.receipts) < len(ids) - 1

    def test_backups_restore_delivery(self):
        (topology, _, tables, server_table), ids = self._world(k=4)
        victim = server_table.row_primaries(0)[0][1]
        session = run_multicast(
            server_table,
            tables,
            topology,
            failed_hosts={victim.host},
            use_backups=True,
        )
        # every live member delivered exactly once
        assert set(session.receipts) == set(ids) - {victim.user_id}
        assert session.duplicate_copies == {}

    def test_k1_cannot_route_around(self):
        (topology, _, tables, server_table), ids = self._world(k=1)
        victim = server_table.row_primaries(0)[0][1]
        subtree_size = sum(
            1 for uid in ids if uid.shares_prefix(victim.user_id, 1)
        )
        session = run_multicast(
            server_table,
            tables,
            topology,
            failed_hosts={victim.host},
            use_backups=True,
        )
        if subtree_size > 1:
            # with no backups in the entry, the whole subtree stays dark
            assert len(session.receipts) <= len(ids) - subtree_size

    def test_multiple_failures_with_backups(self):
        (topology, _, tables, server_table), ids = self._world(k=4)
        rng = np.random.default_rng(3)
        victims = {tables[uid].owner.host for uid in list(ids)[::7]}
        victim_ids = {uid for uid in ids if tables[uid].owner.host in victims}
        session = run_multicast(
            server_table,
            tables,
            topology,
            failed_hosts=victims,
            use_backups=True,
        )
        live = set(ids) - victim_ids
        # backups may not save subtrees whose entire entries failed, but
        # coverage must beat the no-backup run
        plain = run_multicast(
            server_table,
            tables,
            topology,
            failed_hosts=victims,
            use_backups=False,
        )
        assert len(set(session.receipts) & live) >= len(set(plain.receipts) & live)
        assert session.duplicate_copies == {}
