"""Integration tests of the experiment drivers at tiny scale: each run
must reproduce the *shape* of the paper's result — who wins, and in which
direction the effects point."""

import numpy as np
import pytest

from repro.experiments.bandwidth_experiment import run_bandwidth_experiment
from repro.experiments.common import (
    CentralizedController,
    build_topology,
    server_host_of,
)
from repro.experiments.config import SCALES, current_scale
from repro.experiments.latency_experiments import run_latency_experiment
from repro.experiments.rekey_cost import default_grid, run_rekey_cost
from repro.experiments.thresholds import run_threshold_sweep


class TestConfig:
    def test_scales_defined(self):
        assert set(SCALES) >= {"paper", "small", "tiny"}
        paper = SCALES["paper"]
        assert paper.planetlab_users == 226
        assert paper.gtitm_users_large == 1024

    def test_current_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert current_scale().name == "tiny"
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(ValueError):
            current_scale()

    def test_topology_kinds(self):
        assert build_topology("planetlab", 10, 0).num_hosts == 11
        with pytest.raises(ValueError):
            build_topology("atm", 10, 0)


class TestCentralizedController:
    def test_assigns_unique_topology_aware_ids(self, gtitm):
        from repro import PAPER_SCHEME

        controller = CentralizedController(PAPER_SCHEME, gtitm, seed=1)
        ids = [controller.join(h) for h in range(30)]
        assert len(set(ids)) == 30

    def test_leave_frees_id(self, gtitm):
        from repro import PAPER_SCHEME

        controller = CentralizedController(PAPER_SCHEME, gtitm, seed=2)
        ids = [controller.join(h) for h in range(5)]
        controller.leave(ids[0])
        assert len(controller.records) == 4


class TestLatencyShapes:
    @pytest.fixture(scope="class")
    def rekey_cmp(self):
        return run_latency_experiment(
            "test", "planetlab", 48, mode="rekey", runs=2, seed=3
        )

    def test_tmesh_beats_nice_on_delay(self, rekey_cmp):
        # the paper's headline: T-mesh app-layer delay ~ half of NICE's
        assert rekey_cmp.tmesh.median_delay() < rekey_cmp.nice.median_delay()

    def test_tmesh_beats_nice_on_rdp(self, rekey_cmp):
        assert rekey_cmp.tmesh.fraction_rdp_below(2.0) > rekey_cmp.nice.fraction_rdp_below(2.0)

    def test_stress_comparable(self, rekey_cmp):
        # "the distributions of user stress in T-mesh and NICE are
        # comparable" — same order of magnitude, not 10x apart
        t, n = rekey_cmp.tmesh.p95_stress(), rekey_cmp.nice.p95_stress()
        assert t <= 3 * n + 1

    def test_data_mode_shape(self):
        cmp = run_latency_experiment(
            "test", "planetlab", 40, mode="data", runs=1, seed=4
        )
        assert cmp.tmesh.median_delay() <= cmp.nice.median_delay() * 1.5

    def test_render_contains_headlines(self, rekey_cmp):
        text = rekey_cmp.render()
        assert "RDP < 2" in text and "T-mesh" in text and "NICE" in text

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            run_latency_experiment("x", "planetlab", 10, mode="carrier-pigeon")


class TestRekeyCostShapes:
    @pytest.fixture(scope="class")
    def surface(self, gtitm):
        return run_rekey_cost(
            num_users=48, grid=default_grid(48, 3), runs=2, seed=5, topology=gtitm
        )

    def test_modified_costs_more_than_original(self, surface):
        # Fig. 12(b): positive surface (except trivial corners)
        diffs = [
            p.modified_minus_original
            for p in surface.points
            if 0 < p.joins or 0 < p.leaves < surface.num_users
        ]
        assert np.mean(diffs) > 0

    def test_cluster_cheaper_for_join_heavy_churn(self, surface):
        # Fig. 12(c): negative for small leave fractions
        p = surface.point(surface.num_users, 0)  # all joins, no leaves
        assert p.cluster_minus_original < 0

    def test_cost_grows_with_churn(self, surface):
        zero = surface.point(0, 0)
        heavy = surface.point(surface.num_users, surface.num_users // 2)
        assert zero.modified == 0
        assert heavy.modified > 0

    def test_render(self, surface):
        assert "mod-orig" in surface.render()


class TestBandwidthShapes:
    @pytest.fixture(scope="class")
    def experiment(self):
        return run_bandwidth_experiment(num_users=64, churn=16, seed=6)

    def test_all_protocols_present(self, experiment):
        assert set(experiment.results) == {
            "P0",
            "P0'",
            "P1",
            "P1'",
            "P2",
            "P3",
            "P4",
        }

    def test_splitting_reduces_max_load(self, experiment):
        r = experiment.results
        assert r["P2"].max_forwarded() < r["P1"].max_forwarded()
        assert r["P4"].max_forwarded() < r["P3"].max_forwarded()
        assert r["P1'"].max_forwarded() < r["P0'"].max_forwarded()

    def test_splitting_helps_most_users(self, experiment):
        r = experiment.results
        assert r["P2"].fraction_users_below(10) > r["P1"].fraction_users_below(10)
        assert r["P4"].fraction_users_below(10) >= r["P2"].fraction_users_below(10) * 0.8

    def test_tmesh_split_beats_nice_split_at_the_top(self, experiment):
        # Section 4.3: splitting is more effective in P2/P4 than in P1',
        # especially for the most loaded users
        r = experiment.results
        assert r["P2"].max_forwarded() <= r["P1'"].max_forwarded() * 1.5

    def test_ip_multicast_users_receive_full_message(self, experiment):
        p0 = experiment.results["P0"]
        assert (p0.sample.received == p0.message_size).all()
        assert p0.max_forwarded() == 0

    def test_unsplit_users_receive_full_message(self, experiment):
        for name in ("P1", "P3", "P0'"):
            r = experiment.results[name]
            assert r.sample.received.min() >= r.message_size

    def test_render(self, experiment):
        text = experiment.render()
        assert "P4" in text and "max link" in text


class TestThresholdShapes:
    def test_insensitive_to_thresholds(self):
        sweep = run_threshold_sweep(num_users=48, seed=7)
        # Fig. 14: latency performance "not sensitive" to the choice
        assert sweep.max_median_delay_spread() < 2.0
        assert "Fig 14" in sweep.render()
