"""Tests for the GNP network-coordinates extension (Section 5)."""

import numpy as np
import pytest

from repro.net import PlanetLabTopology
from repro.net.gnp import GnpEstimatedTopology, GnpModel, fit_gnp
from repro.net.planetlab import MatrixTopology


@pytest.fixture(scope="module")
def world():
    topology = PlanetLabTopology(num_hosts=60, seed=4)
    model = fit_gnp(topology, num_landmarks=12, dim=6, seed=1)
    return topology, model


class TestFit:
    def test_estimates_are_accurate_on_clustered_latencies(self, world):
        topology, model = world
        rng = np.random.default_rng(0)
        pairs = [
            (int(a), int(b))
            for a, b in rng.integers(0, 60, size=(200, 2))
            if a != b
        ]
        err = model.relative_error(topology, pairs)
        assert np.median(err) < 0.25  # GNP's published accuracy regime

    def test_probe_budget_is_landmark_count(self, world):
        _, model = world
        assert model.probes_per_host == 12

    def test_self_distance_zero(self, world):
        _, model = world
        assert model.estimated_rtt(5, 5) == 0.0

    def test_symmetry(self, world):
        _, model = world
        assert model.estimated_rtt(3, 7) == pytest.approx(
            model.estimated_rtt(7, 3)
        )

    def test_exact_recovery_of_euclidean_matrix(self):
        """A perfectly Euclidean RTT matrix must embed near-exactly."""
        rng = np.random.default_rng(2)
        pts = rng.uniform(0, 100, size=(25, 3))
        m = np.sqrt(((pts[:, None] - pts[None, :]) ** 2).sum(axis=2))
        np.fill_diagonal(m, 0.0)
        topology = MatrixTopology((m + m.T) / 2)
        model = fit_gnp(topology, num_landmarks=8, dim=3, seed=0)
        pairs = [(a, b) for a in range(25) for b in range(a + 1, 25)]
        err = model.relative_error(topology, pairs)
        assert np.median(err) < 0.05

    def test_parameter_validation(self, world):
        topology, _ = world
        with pytest.raises(ValueError):
            fit_gnp(topology, num_landmarks=3, dim=6)
        with pytest.raises(ValueError):
            fit_gnp(topology, num_landmarks=100, dim=2, hosts=range(10))


class TestEstimatedTopology:
    def test_view_swaps_rtts_only(self, world):
        topology, model = world
        view = GnpEstimatedTopology(topology, model)
        assert view.num_hosts == topology.num_hosts
        assert view.rtt(1, 2) == model.estimated_rtt(1, 2)
        assert view.access_rtt(1) == topology.access_rtt(1)

    def test_centralized_assignment_over_gnp(self, world):
        """The Section-5 extension end to end: the controller assigns
        topology-aware IDs from coordinates alone."""
        from repro import PAPER_SCHEME
        from repro.experiments.common import CentralizedController

        topology, model = world
        view = GnpEstimatedTopology(topology, model)
        controller = CentralizedController(PAPER_SCHEME, view, seed=3)
        ids = {}
        for host in range(40):
            ids[host] = controller.join(host)
        assert len(set(ids.values())) == 40
        # same-site hosts should still share prefixes under estimates
        same_site = [
            (a, b)
            for a in range(40)
            for b in range(a + 1, 40)
            if topology.host_site(a) == topology.host_site(b)
        ]
        if same_site:
            shares = [ids[a].common_prefix_len(ids[b]) for a, b in same_site]
            assert np.mean(shares) >= 1.0
