"""The scale-ladder lane (``pytest -q -m scale``; docs/PERFORMANCE.md).

The large-N architecture rests on one claim: the streaming array path —
on-demand RTT synthesis, bit-packed codes, per-shard rep-chain fan-out,
array-backed membership — is *bitwise indistinguishable* from the dense
object path at every size where both can run.  This lane enforces the
claim three ways:

* property tests hold the array world and the streaming receipt digest
  equal to the object world and the dense ``SessionResult`` digest over
  random ``(N, seed)``;
* a hypothesis stateful machine drives join/leave churn through
  :class:`~repro.keytree.cluster.ClusterRekeyingTree` and its array twin
  :class:`~repro.keytree.array_store.ArrayClusterStore` in lockstep,
  asserting byte-equal membership digests after every step and — after
  every batch — byte-equal key-tree state and byte-equal
  ``ReliableOutcome``s between the dense-matrix and synthesized-RTT
  topologies;
* the 100k streaming rung runs bounded (well under the lane's 60 s
  budget) with the :class:`~repro.verify.checkers.
  StreamingDeliveryChecker` active and no dense matrix materializable.

The 1M rung and the peak-RSS guard live in the bench lane
(``benchmarks/test_scale_rss.py``).
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.alm.reliable import ReliableSession
from repro.compute.packing import pack_id
from repro.core.ids import Id, IdScheme
from repro.core.neighbor_table import (
    UserRecord,
    build_consistent_tables,
    build_server_table,
)
from repro.core.tmesh import rekey_session
from repro.keytree import ArrayClusterStore, ClusterRekeyingTree
from repro.net.planetlab import MatrixTopology
from repro.net.synthetic import SyntheticRttTopology
from repro.perf.scale import (
    build_array_world,
    build_scale_world,
    run_streaming_rekey,
)
from repro.verify import (
    ForwardPrefixChecker,
    InvariantViolation,
    StreamingDeliveryChecker,
    verification,
)

pytestmark = pytest.mark.scale


# ----------------------------------------------------------------------
# Array world == object world (construction equivalence)
# ----------------------------------------------------------------------
@given(
    st.integers(min_value=1, max_value=512),
    st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=25, deadline=None)
def test_array_world_reproduces_object_world(n, seed):
    """Identical RNG consumption: packing the object world's IDs in
    generation order must reproduce the array world's codes exactly,
    and the coordinate planes must match bitwise."""
    topology, _, tables = build_scale_world(n, seed=seed)
    world = build_array_world(n, seed=seed)
    object_codes = np.array(
        [pack_id(uid)[0] for uid in tables], dtype=np.uint64
    )
    assert np.array_equal(object_codes, world.codes)
    assert topology.coords.tobytes() == world.topology.coords.tobytes()


@given(
    st.integers(min_value=1, max_value=256),
    st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=25, deadline=None)
def test_streaming_digest_matches_dense_session(n, seed):
    """The rep-chain streaming fan-out reproduces the dense FORWARD
    fan-out receipt for receipt: one canonical digest."""
    topology, server_table, tables = build_scale_world(n, seed=seed)
    session = rekey_session(server_table, tables, topology)
    summary = run_streaming_rekey(build_array_world(n, seed=seed))
    assert session.canonical_receipt_digest() == summary.digest
    assert summary.num_receipts == len(session.receipts) == n
    assert summary.num_duplicates == sum(
        session.duplicate_copies.values()
    ) == 0


@pytest.mark.parametrize("n,seed", [(2048, 20), (4096, 5)])
def test_streaming_digest_matches_dense_session_large(n, seed):
    topology, server_table, tables = build_scale_world(n, seed=seed)
    session = rekey_session(server_table, tables, topology)
    summary = run_streaming_rekey(build_array_world(n, seed=seed))
    assert session.canonical_receipt_digest() == summary.digest


# ----------------------------------------------------------------------
# Sharded churn in lockstep (stateful)
# ----------------------------------------------------------------------
class ShardedChurnMachine(RuleBasedStateMachine):
    """Joins, leaves, and batch rekeys through the sharded topology,
    with the dense-path reference and the array twin in lockstep.

    After every step the two membership representations must render the
    same canonical digest and the same leader map; after every batch the
    inner key tree must hold exactly the leaders' paths, and a reliable
    rekey multicast must produce pickle-equal ``ReliableOutcome``s under
    the dense RTT matrix and the on-demand synthesized topology."""

    SCHEME = IdScheme(num_digits=3, base=4)
    NUM_HOSTS = 24  # member hosts 0..22, key server on 23

    def __init__(self):
        super().__init__()
        self.tree = ClusterRekeyingTree(self.SCHEME, shard_depth=1)
        self.store = ArrayClusterStore(
            self.SCHEME, shard_depth=1, initial_capacity=2
        )
        self.present: dict = {}  # uid -> host, insertion order
        self.free_hosts = list(range(self.NUM_HOSTS - 1))
        self.lazy = SyntheticRttTopology.seeded(self.NUM_HOSTS, seed=99)
        self.dense = MatrixTopology(
            SyntheticRttTopology.seeded(
                self.NUM_HOSTS, seed=99
            ).ensure_rtt_matrix()
        )

    @rule(
        digits=st.tuples(
            st.integers(min_value=0, max_value=3),
            st.integers(min_value=0, max_value=3),
            st.integers(min_value=0, max_value=3),
        )
    )
    def join(self, digits):
        uid = Id(digits)
        if uid in self.present:
            # Double joins must be rejected identically.
            with pytest.raises(ValueError):
                self.tree.request_join(uid)
            with pytest.raises(ValueError):
                self.store.request_join(uid)
            return
        if not self.free_hosts:
            return
        rekeys_tree = self.tree.request_join(uid)
        rekeys_store = self.store.request_join(uid)
        assert rekeys_tree == rekeys_store
        self.present[uid] = self.free_hosts.pop(0)

    @rule(index=st.integers(min_value=0, max_value=10**6))
    def leave(self, index):
        if not self.present:
            return
        uid = list(self.present)[index % len(self.present)]
        rekeys_tree = self.tree.request_leave(uid)
        rekeys_store = self.store.request_leave(uid)
        assert rekeys_tree == rekeys_store
        self.free_hosts.append(self.present.pop(uid))

    @rule(payload_count=st.integers(min_value=1, max_value=3))
    def batch(self, payload_count):
        self.tree.process_batch()
        # Key-tree state: the inner tree's u-nodes are exactly the
        # leaders, its k-nodes exactly the leaders' path prefixes.
        leaders = {members[0] for members in self.tree.shards().values()}
        assert self.tree.key_tree.user_ids == leaders
        expected_nodes = {
            leader.prefix(level)
            for leader in leaders
            for level in range(self.SCHEME.num_digits + 1)
        }
        assert set(self.tree.key_tree.node_ids()) == expected_nodes
        if len(self.present) < 2:
            return
        # Dense-matrix vs synthesized-RTT reliable rekey: byte-equal.
        records = [
            UserRecord(uid, host)
            for uid, host in sorted(
                self.present.items(), key=lambda kv: kv[1]
            )
        ]
        payloads = [f"key{i}" for i in range(payload_count)]
        outcomes = []
        for topology in (self.dense, self.lazy):
            tables = build_consistent_tables(
                self.SCHEME, records, topology.rtt, k=1
            )
            server_table = build_server_table(
                self.SCHEME, self.NUM_HOSTS - 1, records, topology.rtt, k=1
            )
            session = ReliableSession(tables, server_table, topology)
            outcome = session.multicast(payloads)
            assert outcome.delivery_ratio == 1.0
            assert outcome.duplicates_surfaced == 0
            outcomes.append(
                pickle.dumps(
                    (
                        outcome.source,
                        outcome.payloads,
                        outcome.delivered,
                        outcome.missing,
                        outcome.stats,
                        outcome.per_node,
                    )
                )
            )
        assert outcomes[0] == outcomes[1]

    @invariant()
    def membership_lockstep(self):
        assert self.tree.state_digest() == self.store.state_digest()
        tree_leaders = {
            pack_id(prefix)[0]: pack_id(members[0])[0]
            for prefix, members in self.tree.shards().items()
        }
        assert tree_leaders == self.store.leaders()
        assert self.tree.num_users == self.store.num_users == len(self.present)
        assert self.tree.num_clusters == self.store.num_clusters


TestShardedChurn = ShardedChurnMachine.TestCase


def test_array_store_rejects_unknown_and_duplicate_members():
    scheme = IdScheme(num_digits=3, base=4)
    store = ArrayClusterStore(scheme, shard_depth=1, initial_capacity=1)
    uid = Id([1, 2, 3])
    with pytest.raises(ValueError, match="not in any cluster"):
        store.request_leave(uid)
    assert store.request_join(uid) is True
    with pytest.raises(ValueError, match="already in cluster"):
        store.request_join(uid)
    # Capacity growth from 1 is exercised by a second shard.
    assert store.request_join(Id([2, 0, 0])) is True
    assert store.num_users == 2 and store.num_clusters == 2


def test_rejoin_within_interval_keeps_cluster_and_tree_consistent():
    """A member that leaves and rejoins inside one rekey interval used
    to crash the inner key tree on the leadership hand-off; now the
    pending leave is cancelled and the path still rotates."""
    scheme = IdScheme(num_digits=3, base=4)
    tree = ClusterRekeyingTree(scheme, shard_depth=1)
    store = ArrayClusterStore(scheme, shard_depth=1)
    leader, follower = Id([0, 1, 2]), Id([0, 2, 1])
    for uid in (leader, follower):
        assert tree.request_join(uid) == store.request_join(uid)
    # The leader leaves (hand-off to follower), then rejoins, then the
    # follower leaves (hand-off straight back) — all in one interval.
    assert tree.request_leave(leader) == store.request_leave(leader) is True
    assert tree.request_join(leader) == store.request_join(leader) is False
    assert tree.request_leave(follower) == store.request_leave(follower)
    assert tree.state_digest() == store.state_digest()
    tree.process_batch()
    assert tree.key_tree.user_ids == {leader}


# ----------------------------------------------------------------------
# ForwardPrefixChecker: fast vectorized verdict == scalar sweep
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def verified_scale_session():
    topology, server_table, tables = build_scale_world(1024, seed=20)
    return rekey_session(server_table, tables, topology)


def test_forward_prefix_fast_path_clean_agrees_with_scan(
    verified_scale_session,
):
    checker = ForwardPrefixChecker()
    assert checker.check(verified_scale_session) == []
    assert checker.check(verified_scale_session, force_scan=True) == []


def test_forward_prefix_fast_path_dirty_reports_identical():
    """Tampering must route the fast path to the scalar sweep, so the
    report strings are the scalar path's, verbatim."""
    topology, server_table, tables = build_scale_world(256, seed=20)
    session = rekey_session(server_table, tables, topology)
    victim = next(
        member
        for member, receipt in session.receipts.items()
        if receipt.forward_level >= 2
    )
    session.receipts[victim] = session.receipts[victim]._replace(
        forward_level=1
    )
    checker = ForwardPrefixChecker()
    fast = checker.check(session)
    scan = checker.check(session, force_scan=True)
    assert fast == scan
    assert fast  # the tampering was detected


# ----------------------------------------------------------------------
# StreamingDeliveryChecker + the 100k rung
# ----------------------------------------------------------------------
def test_streaming_checker_flags_corrupt_aggregates():
    world = build_array_world(512, seed=20)
    summary = run_streaming_rekey(world)
    checker = StreamingDeliveryChecker()
    assert checker.check(summary, expected_members=512) == []

    import dataclasses

    dup = dataclasses.replace(summary, num_duplicates=3)
    assert any(
        "duplicate" in r.detail for r in checker.check(dup, 512)
    )
    short = dataclasses.replace(summary, num_receipts=511, num_edges=511)
    assert checker.check(short, 512)
    wrong_world = checker.check(summary, expected_members=100)
    assert wrong_world

    with pytest.raises(InvariantViolation):
        with verification(seed=20) as ctx:
            ctx.observe_streaming(dup, expected_members=512)


def test_streaming_100k_rung_bounded():
    """The lane's large rung: 100k members, streamed per shard, under
    an active verification context, with no dense RTT matrix possible."""
    world = build_array_world(100_000, seed=20)
    with pytest.raises(RuntimeError, match="max_dense_hosts"):
        world.topology.ensure_rtt_matrix()
    with verification(seed=20) as ctx:
        summary = run_streaming_rekey(world)
        assert ctx.sessions_checked == 1
    assert summary.num_members == 100_000
    assert summary.num_receipts == summary.num_edges == 100_000
    assert summary.num_duplicates == 0
    assert summary.num_shards == 8  # SCALE_DIGIT_BOUNDS[0]
    assert summary.level_counts[0] == 0
    assert sum(summary.level_counts) == 100_000
    assert summary.max_arrival > 0.0
    assert len(summary.digest) == 32  # blake2b-128 hex
