"""Unit and integration tests for the invariant-checker subsystem.

Covers each checker against hand-corrupted state, the differential
oracle's zero-diff guarantee on clean sessions (bitwise arrival times),
the structured :class:`InvariantViolation` contract (checker name, seed,
offending IDs, repro snippet), the hook layer's install/uninstall
semantics, the CSV export, and the ``--verify`` CLI surface.
"""

import numpy as np
import pytest

from tests.conftest import SMALL_SCHEME, make_static_world
from repro.core.ids import Id
from repro.core.id_tree import IdTree
from repro.core.tmesh import Receipt, data_session, rekey_session
from repro.keytree.modified_tree import ModifiedKeyTree
from repro.metrics.export import write_violation_reports
from repro.verify import (
    DifferentialOracle,
    ExactlyOnceChecker,
    ForwardPrefixChecker,
    InvariantViolation,
    KConsistencyChecker,
    KeyIdResolutionChecker,
    TreeAgreementChecker,
    VerificationContext,
    ViolationReport,
    active,
    install,
    uninstall,
    verification,
)

pytestmark = pytest.mark.verify


def random_ids(n, seed=9, scheme=SMALL_SCHEME):
    rng = np.random.default_rng(seed)
    seen = set()
    while len(seen) < n:
        seen.add(
            tuple(int(rng.integers(0, scheme.base)) for _ in range(scheme.num_digits))
        )
    return [Id(t) for t in sorted(seen)]


@pytest.fixture
def world():
    ids = random_ids(30)
    return ids, make_static_world(SMALL_SCHEME, ids, seed=3, k=2)


def cut_server_subtree(server_table):
    """Empty one non-empty (0, j) server-table entry — with both the
    primary and backup gone, the whole level-1 subtree is unreachable.
    Returns the removed records' user IDs."""
    for j in range(server_table.scheme.base):
        victims = [r.user_id for r in list(server_table.entry(0, j))]
        if victims:
            for uid in victims:
                server_table.remove(uid)
            return victims
    raise AssertionError("server table had no non-empty entry")


# ----------------------------------------------------------------------
# Session checkers
# ----------------------------------------------------------------------
class TestExactlyOnceChecker:
    def test_clean_session_yields_no_reports(self, world):
        ids, (topology, _, tables, server_table) = world
        session = rekey_session(server_table, tables, topology)
        assert ExactlyOnceChecker().check(session, tables.keys()) == []

    def test_missing_member_reported_with_ids(self, world):
        ids, (topology, _, tables, server_table) = world
        session = rekey_session(server_table, tables, topology)
        victim = next(iter(session.receipts))
        del session.receipts[victim]
        reports = ExactlyOnceChecker().check(
            session, tables.keys(), seed=3, repro="snippet"
        )
        assert len(reports) == 1
        report = reports[0]
        assert report.checker == "exactly-once"
        assert report.citation == "Theorem 1"
        assert str(victim) in report.offending_ids
        assert report.seed == 3
        assert report.repro == "snippet"

    def test_duplicates_reported(self, world):
        ids, (topology, _, tables, server_table) = world
        session = rekey_session(server_table, tables, topology)
        session.duplicate_copies[ids[0]] = 2
        reports = ExactlyOnceChecker().check(session, tables.keys())
        assert [r for r in reports if "duplicate" in r.detail]

    def test_non_member_receipt_reported(self, world):
        ids, (topology, _, tables, server_table) = world
        session = rekey_session(server_table, tables, topology)
        from itertools import product

        ghost = next(
            Id(t)
            for t in product(range(SMALL_SCHEME.base), repeat=SMALL_SCHEME.num_digits)
            if Id(t) not in tables
        )
        session.receipts[ghost] = Receipt(ghost, 99, 1.0, 1, session.sender)
        reports = ExactlyOnceChecker().check(session, tables.keys())
        assert any(str(ghost) in r.offending_ids for r in reports)


class TestForwardPrefixChecker:
    def test_clean_session_yields_no_reports(self, world):
        ids, (topology, _, tables, server_table) = world
        session = data_session(ids[0], tables, topology)
        assert ForwardPrefixChecker().check(session) == []

    def test_wrong_forward_level_breaks_a_lemma(self, world):
        """Bumping one receipt's level must violate Lemma 1 or Lemma 2
        (which one depends on where the member sits in the tree)."""
        ids, (topology, _, tables, server_table) = world
        session = rekey_session(server_table, tables, topology)
        member = max(
            session.receipts,
            key=lambda m: len(list(session.downstream_users(m))),
        )
        r = session.receipts[member]
        session.receipts[member] = Receipt(
            r.member, r.host, r.arrival_time, r.forward_level + 1, r.upstream
        )
        reports = ForwardPrefixChecker().check(session)
        assert reports
        assert all(r.citation == "Lemmas 1-2" for r in reports)

    def test_lossy_mode_skips_lemma2(self, world):
        """A leaf claiming a lower forwarding level than it had violates
        Lemma 2 (prefix-sharers exist that are not downstream of it) but
        not Lemma 1 (it has no downstream users) — exactly the converse
        that stops being a theorem under loss, so lossless=False must
        accept what lossless=True flags."""
        ids, (topology, _, tables, server_table) = world
        session = rekey_session(server_table, tables, topology)
        leaf = next(
            m
            for m in session.receipts
            if session.receipts[m].forward_level > 1
            and not list(session.downstream_users(m))
            and any(o != m and o[0] == m[0] for o in session.receipts)
        )
        r = session.receipts[leaf]
        session.receipts[leaf] = Receipt(
            r.member, r.host, r.arrival_time, 1, r.upstream
        )
        assert ForwardPrefixChecker().check(session, lossless=True) != []
        assert ForwardPrefixChecker().check(session, lossless=False) == []


# ----------------------------------------------------------------------
# Table checker: the corrupted-fixture acceptance scenario
# ----------------------------------------------------------------------
class TestKConsistencyChecker:
    def test_clean_tables_pass(self, world):
        ids, (topology, _, tables, server_table) = world
        tree = IdTree(SMALL_SCHEME, ids)
        assert KConsistencyChecker().check(tables, tree, 2) == []

    def test_corrupted_table_fixture_triggers_structured_violation(self, world):
        """The acceptance scenario: deliberately corrupt one neighbor
        table, run under a verification context, and demand a structured
        InvariantViolation carrying checker name, seed, and repro."""
        ids, (topology, _, tables, server_table) = world
        tree = IdTree(SMALL_SCHEME, ids)
        owner = ids[5]
        record = next(tables[owner].all_records())
        tables[owner].remove(record.user_id)  # K-consistency now broken
        context = VerificationContext(seed=1234, oracle=False)
        with pytest.raises(InvariantViolation) as exc_info:
            context.observe_tables(tables, tree, 2)
        violation = exc_info.value
        assert set(violation.checkers) == {"k-consistency"}
        report = violation.reports[0]
        assert report.citation == "Definition 3"
        assert report.seed == 1234
        assert "seed=1234" in report.repro
        assert str(owner) in report.detail

    def test_corrupted_server_table_caught_in_flight(self, world):
        """Corrupting the server table makes the live multicast itself
        violate Theorem 1 — the session hook must raise mid-experiment
        with the unreachable members listed."""
        ids, (topology, _, tables, server_table) = world
        victims = cut_server_subtree(server_table)
        with pytest.raises(InvariantViolation) as exc_info:
            with verification(seed=7):
                rekey_session(server_table, tables, topology)
        assert "exactly-once" in exc_info.value.checkers
        missing = next(
            r for r in exc_info.value.reports if r.checker == "exactly-once"
        )
        assert str(victims[0]) in missing.offending_ids
        assert missing.seed == 7


# ----------------------------------------------------------------------
# Key-tree checkers
# ----------------------------------------------------------------------
class TestTreeAgreementChecker:
    def make_tree(self, n=12):
        tree = ModifiedKeyTree(SMALL_SCHEME)
        for uid in random_ids(n, seed=4):
            tree.request_join(uid)
        tree.process_batch()
        return tree

    def test_clean_tree_passes(self):
        assert TreeAgreementChecker().check(self.make_tree()) == []

    def test_ghost_key_node_reported(self):
        tree = self.make_tree()
        ghost = Id((0,) * SMALL_SCHEME.num_digits)
        assert not tree.has_node(ghost)
        tree._versions[ghost] = 0
        reports = TreeAgreementChecker().check(tree)
        assert len(reports) == 1
        assert "no ID-tree counterpart" in reports[0].detail
        assert str(ghost) in reports[0].offending_ids

    def test_missing_key_node_reported(self):
        tree = self.make_tree()
        victim = next(iter(tree.user_ids))
        del tree._versions[victim]
        reports = TreeAgreementChecker().check(tree)
        assert len(reports) == 1
        assert "hold no key" in reports[0].detail


class TestKeyIdResolutionChecker:
    def make_message(self, n=12):
        tree = ModifiedKeyTree(SMALL_SCHEME)
        for uid in random_ids(n, seed=4):
            tree.request_join(uid)
        message = tree.process_batch()
        return tree, message

    def test_clean_rekey_message_passes(self):
        tree, message = self.make_message()
        assert (
            KeyIdResolutionChecker().check(message, tree.user_ids, SMALL_SCHEME)
            == []
        )

    def test_unresolvable_encryption_reported(self):
        """Dropping an encryption that is some member's only way to an
        updated key strands that member (Lemma 3's resolution closure)."""
        tree, message = self.make_message()
        by_new = {}
        for enc in message.encryptions:
            by_new.setdefault(enc.new_key_id, []).append(enc)
        victim = stranded = None
        for key_id, encs in by_new.items():
            for candidate in encs:
                for user in tree.user_ids:
                    if not key_id.is_prefix_of(user):
                        continue
                    if candidate.encrypting_key_id.is_prefix_of(user) and not any(
                        e is not candidate and e.encrypting_key_id.is_prefix_of(user)
                        for e in encs
                    ):
                        victim, stranded = candidate, user
                        break
                if victim:
                    break
            if victim:
                break
        assert victim is not None, "no sole-coverage encryption in batch"
        from repro.keytree.keys import RekeyMessage

        pruned = RekeyMessage(
            message.interval,
            [e for e in message.encryptions if e is not victim],
        )
        reports = KeyIdResolutionChecker().check(
            pruned, tree.user_ids, SMALL_SCHEME
        )
        assert reports
        assert all(r.checker == "key-id-resolution" for r in reports)
        assert any(str(stranded) in r.offending_ids for r in reports)


# ----------------------------------------------------------------------
# Differential oracle
# ----------------------------------------------------------------------
class TestDifferentialOracle:
    def test_zero_diff_on_clean_sessions_bitwise(self, world):
        """The reference BFS reproduces the event loop's receipts, edges,
        levels, and arrival times bitwise (time_tolerance=0)."""
        ids, (topology, _, tables, server_table) = world
        oracle = DifferentialOracle()
        for session, sender_table in (
            (rekey_session(server_table, tables, topology, 0.002), server_table),
            (data_session(ids[3], tables, topology), tables[ids[3]]),
        ):
            delay = 0.002 if sender_table is server_table else 0.0
            assert (
                oracle.diff(
                    session,
                    oracle.reference(sender_table, tables, topology, delay),
                )
                == []
            )

    def test_arrival_time_corruption_diffed(self, world):
        ids, (topology, _, tables, server_table) = world
        session = rekey_session(server_table, tables, topology)
        member = next(iter(session.receipts))
        r = session.receipts[member]
        session.receipts[member] = Receipt(
            r.member, r.host, r.arrival_time + 1e-9, r.forward_level, r.upstream
        )
        reference = DifferentialOracle().reference(server_table, tables, topology)
        problems = DifferentialOracle().diff(session, reference)
        assert any("arrival" in p for p in problems)
        # ... and a tolerant oracle accepts the same perturbation.
        assert DifferentialOracle(time_tolerance=1e-6).diff(session, reference) == []

    def test_edge_corruption_diffed(self, world):
        ids, (topology, _, tables, server_table) = world
        session = rekey_session(server_table, tables, topology)
        session.edges.pop()
        problems = DifferentialOracle().diff(
            session, DifferentialOracle().reference(server_table, tables, topology)
        )
        assert any("edge count" in p for p in problems)

    def test_table_drift_between_run_and_replay_diffed(self, world):
        """A session recorded against richer tables must diff against a
        replay over corrupted ones — the oracle detects table drift, not
        just result corruption."""
        ids, (topology, _, tables, server_table) = world
        session = rekey_session(server_table, tables, topology)
        victim = next(server_table.all_records())
        server_table.remove(victim.user_id)
        reports = DifferentialOracle().check(
            session, server_table, tables, topology, seed=11
        )
        assert reports
        assert all(r.checker == "differential-oracle" for r in reports)
        assert all(r.seed == 11 for r in reports)


# ----------------------------------------------------------------------
# Hook layer
# ----------------------------------------------------------------------
class TestHookLayer:
    def test_no_context_by_default(self):
        assert active() is None

    def test_install_uninstall_cycle(self):
        context = VerificationContext()
        assert install(context) is context
        try:
            assert active() is context
            with pytest.raises(RuntimeError):
                install(VerificationContext())
        finally:
            uninstall()
        assert active() is None

    def test_context_uninstalled_even_on_violation(self, world):
        ids, (topology, _, tables, server_table) = world
        cut_server_subtree(server_table)
        with pytest.raises(InvariantViolation):
            with verification():
                rekey_session(server_table, tables, topology)
        assert active() is None

    def test_passive_collection_mode(self, world):
        """raise_on_violation=False accumulates reports instead."""
        ids, (topology, _, tables, server_table) = world
        cut_server_subtree(server_table)
        with verification(seed=2, raise_on_violation=False) as ctx:
            rekey_session(server_table, tables, topology)
            rekey_session(server_table, tables, topology)
        assert ctx.sessions_checked == 2
        assert ctx.reports
        assert "violation" in ctx.summary()

    def test_zero_overhead_shape_when_off(self, world):
        """With no context installed the hooks reduce to one global read
        per session: results are identical objectwise to a hooked run."""
        ids, (topology, _, tables, server_table) = world
        bare = rekey_session(server_table, tables, topology)
        with verification():
            hooked = rekey_session(server_table, tables, topology)
        assert bare.receipts == hooked.receipts
        assert bare.edges == hooked.edges


# ----------------------------------------------------------------------
# Reports: pickling, rendering, CSV export
# ----------------------------------------------------------------------
class TestReports:
    def test_render_carries_all_fields(self):
        report = ViolationReport(
            checker="exactly-once",
            citation="Theorem 1",
            detail="boom",
            offending_ids=("[0,1,2]",),
            seed=99,
            repro="python tools/check_invariants.py",
        )
        rendered = report.render()
        for needle in ("exactly-once", "Theorem 1", "boom", "[0,1,2]", "99"):
            assert needle in rendered

    def test_csv_export_round_trips(self, tmp_path):
        path = tmp_path / "violations.csv"
        reports = [
            ViolationReport("a", "Thm 1", "d1", ("x", "y"), 1, "r1"),
            ViolationReport("b", "Lemma 2", "d2"),
        ]
        write_violation_reports(str(path), reports)
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("checker,citation,detail")
        assert "a,Thm 1,d1,x y,1,r1" in lines[1]
        assert lines[2].startswith("b,Lemma 2,d2")


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestCliVerify:
    def test_quickstart_under_verify_exits_zero(self, capsys):
        from repro.__main__ import main

        assert main(["--verify", "quickstart"]) == 0
        assert "[verify]" in capsys.readouterr().err

    def test_flag_off_means_no_context(self, capsys):
        from repro.__main__ import main

        assert main(["quickstart"]) == 0
        assert "[verify]" not in capsys.readouterr().err
