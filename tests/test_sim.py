"""Tests for the discrete event simulator and message-passing nodes."""

import pytest

from repro.net.planetlab import MatrixTopology
from repro.sim import Network, Node, Simulator

import numpy as np


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(5.0, lambda: log.append("b"))
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(9.0, lambda: log.append("c"))
        sim.run()
        assert log == ["a", "b", "c"]
        assert sim.now == 9.0

    def test_simultaneous_events_fifo(self):
        sim = Simulator()
        log = []
        for i in range(5):
            sim.schedule(1.0, lambda i=i: log.append(i))
        sim.run()
        assert log == [0, 1, 2, 3, 4]

    def test_cancel(self):
        sim = Simulator()
        log = []
        event = sim.schedule(1.0, lambda: log.append("x"))
        event.cancel()
        sim.run()
        assert log == []

    def test_run_until(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append(1))
        sim.schedule(10.0, lambda: log.append(10))
        sim.run(until=5.0)
        assert log == [1]
        assert sim.now == 5.0
        sim.run()
        assert log == [1, 10]

    def test_max_events(self):
        sim = Simulator()
        log = []
        for i in range(10):
            sim.schedule(i, lambda i=i: log.append(i))
        sim.run(max_events=3)
        assert log == [0, 1, 2]

    def test_nested_scheduling(self):
        sim = Simulator()
        log = []

        def first():
            log.append(("first", sim.now))
            sim.schedule(2.0, lambda: log.append(("second", sim.now)))

        sim.schedule(1.0, first)
        sim.run()
        assert log == [("first", 1.0), ("second", 3.0)]

    def test_past_scheduling_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: sim.schedule(-1.0, lambda: None))
        with pytest.raises(ValueError):
            sim.run()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_pending_and_processed_counts(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        e = sim.schedule(2.0, lambda: None)
        e.cancel()
        assert sim.pending == 1
        sim.run()
        assert sim.events_processed == 1


class TestSimulatorEdgeCases:
    """Tie-breaking and cancellation corners the repair protocol leans on
    (pending-NACK cancellation, zero-delay rescheduling, FIFO ties)."""

    def test_cancel_from_a_simultaneous_earlier_event(self):
        # A and B fire at the same time; A was scheduled first, so it runs
        # first and may still cancel B.
        sim = Simulator()
        log = []
        later = {}
        sim.schedule(1.0, lambda: (log.append("a"), later["b"].cancel()))
        later["b"] = sim.schedule(1.0, lambda: log.append("b"))
        sim.run()
        assert log == ["a"]
        assert sim.events_processed == 1

    def test_canceled_head_does_not_block_run(self):
        sim = Simulator()
        log = []
        head = sim.schedule(1.0, lambda: log.append("head"))
        sim.schedule(2.0, lambda: log.append("tail"))
        head.cancel()
        sim.run(until=5.0)
        assert log == ["tail"]
        assert sim.now == 5.0

    def test_run_with_only_canceled_events(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None).cancel()
        sim.schedule(2.0, lambda: None).cancel()
        assert sim.run() == 0
        assert sim.pending == 0
        assert sim.events_processed == 0

    def test_zero_delay_self_rescheduling_is_fifo(self):
        # A zero-delay reschedule goes to the *back* of the same-time
        # cohort: other events already queued at that time run in between.
        sim = Simulator()
        log = []
        count = [0]

        def tick():
            log.append(("tick", count[0]))
            count[0] += 1
            if count[0] < 3:
                sim.schedule(0.0, tick)

        sim.schedule(1.0, tick)
        sim.schedule(1.0, lambda: log.append(("other", 0)))
        sim.run()
        assert log == [("tick", 0), ("other", 0), ("tick", 1), ("tick", 2)]
        assert sim.now == 1.0

    def test_max_events_bounds_a_zero_delay_loop(self):
        sim = Simulator()

        def forever():
            sim.schedule(0.0, forever)

        sim.schedule(1.0, forever)
        assert sim.run(max_events=50) == 50
        assert sim.now == 1.0

    def test_schedule_at_current_time_allowed(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: sim.schedule_at(sim.now, lambda: fired.append(sim.now)))
        sim.run()
        assert fired == [2.0]

    def test_schedule_and_schedule_at_share_fifo_order(self):
        sim = Simulator()
        log = []
        sim.schedule(3.0, lambda: log.append("relative"))
        sim.schedule_at(3.0, lambda: log.append("absolute"))
        sim.schedule(3.0, lambda: log.append("relative-2"))
        sim.run()
        assert log == ["relative", "absolute", "relative-2"]


class EchoNode(Node):
    def __init__(self, network, host):
        super().__init__(network, host)
        self.inbox = []

    def on_message(self, src, payload):
        self.inbox.append((src, payload, self.network.simulator.now))
        if payload == "ping":
            self.send(src, "pong")


def star_topology():
    m = np.array([[0.0, 10.0], [10.0, 0.0]])
    return MatrixTopology(m)


class TestNetwork:
    def test_delivery_after_one_way_delay(self):
        sim = Simulator()
        net = Network(sim, star_topology())
        a, b = EchoNode(net, 0), EchoNode(net, 1)
        a.send(1, "hello")
        sim.run()
        assert b.inbox == [(0, "hello", 5.0)]  # one-way = rtt/2

    def test_request_response(self):
        sim = Simulator()
        net = Network(sim, star_topology())
        a, b = EchoNode(net, 0), EchoNode(net, 1)
        a.send(1, "ping")
        sim.run()
        assert a.inbox == [(1, "pong", 10.0)]

    def test_detach_drops_messages(self):
        sim = Simulator()
        net = Network(sim, star_topology())
        a, b = EchoNode(net, 0), EchoNode(net, 1)
        b.detach()
        a.send(1, "lost")
        sim.run()
        assert b.inbox == []
        assert net.stats.dropped == 1

    def test_drop_filter(self):
        sim = Simulator()
        net = Network(sim, star_topology())
        a, b = EchoNode(net, 0), EchoNode(net, 1)
        net.drop_filter = lambda src, dst, payload: payload == "bad"
        a.send(1, "bad")
        a.send(1, "good")
        sim.run()
        assert [p for _, p, _ in b.inbox] == ["good"]
        assert net.stats.dropped == 1
        assert net.stats.delivered == 1

    def test_double_attach_rejected(self):
        sim = Simulator()
        net = Network(sim, star_topology())
        EchoNode(net, 0)
        with pytest.raises(ValueError):
            EchoNode(net, 0)
