"""Tests for the discrete event simulator and message-passing nodes."""

import pytest

from repro.net.planetlab import MatrixTopology
from repro.sim import Network, Node, Simulator

import numpy as np


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(5.0, lambda: log.append("b"))
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(9.0, lambda: log.append("c"))
        sim.run()
        assert log == ["a", "b", "c"]
        assert sim.now == 9.0

    def test_simultaneous_events_fifo(self):
        sim = Simulator()
        log = []
        for i in range(5):
            sim.schedule(1.0, lambda i=i: log.append(i))
        sim.run()
        assert log == [0, 1, 2, 3, 4]

    def test_cancel(self):
        sim = Simulator()
        log = []
        event = sim.schedule(1.0, lambda: log.append("x"))
        event.cancel()
        sim.run()
        assert log == []

    def test_run_until(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append(1))
        sim.schedule(10.0, lambda: log.append(10))
        sim.run(until=5.0)
        assert log == [1]
        assert sim.now == 5.0
        sim.run()
        assert log == [1, 10]

    def test_max_events(self):
        sim = Simulator()
        log = []
        for i in range(10):
            sim.schedule(i, lambda i=i: log.append(i))
        sim.run(max_events=3)
        assert log == [0, 1, 2]

    def test_nested_scheduling(self):
        sim = Simulator()
        log = []

        def first():
            log.append(("first", sim.now))
            sim.schedule(2.0, lambda: log.append(("second", sim.now)))

        sim.schedule(1.0, first)
        sim.run()
        assert log == [("first", 1.0), ("second", 3.0)]

    def test_past_scheduling_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: sim.schedule(-1.0, lambda: None))
        with pytest.raises(ValueError):
            sim.run()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_pending_and_processed_counts(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        e = sim.schedule(2.0, lambda: None)
        e.cancel()
        assert sim.pending == 1
        sim.run()
        assert sim.events_processed == 1


class EchoNode(Node):
    def __init__(self, network, host):
        super().__init__(network, host)
        self.inbox = []

    def on_message(self, src, payload):
        self.inbox.append((src, payload, self.network.simulator.now))
        if payload == "ping":
            self.send(src, "pong")


def star_topology():
    m = np.array([[0.0, 10.0], [10.0, 0.0]])
    return MatrixTopology(m)


class TestNetwork:
    def test_delivery_after_one_way_delay(self):
        sim = Simulator()
        net = Network(sim, star_topology())
        a, b = EchoNode(net, 0), EchoNode(net, 1)
        a.send(1, "hello")
        sim.run()
        assert b.inbox == [(0, "hello", 5.0)]  # one-way = rtt/2

    def test_request_response(self):
        sim = Simulator()
        net = Network(sim, star_topology())
        a, b = EchoNode(net, 0), EchoNode(net, 1)
        a.send(1, "ping")
        sim.run()
        assert a.inbox == [(1, "pong", 10.0)]

    def test_detach_drops_messages(self):
        sim = Simulator()
        net = Network(sim, star_topology())
        a, b = EchoNode(net, 0), EchoNode(net, 1)
        b.detach()
        a.send(1, "lost")
        sim.run()
        assert b.inbox == []
        assert net.stats.dropped == 1

    def test_drop_filter(self):
        sim = Simulator()
        net = Network(sim, star_topology())
        a, b = EchoNode(net, 0), EchoNode(net, 1)
        net.drop_filter = lambda src, dst, payload: payload == "bad"
        a.send(1, "bad")
        a.send(1, "good")
        sim.run()
        assert [p for _, p, _ in b.inbox] == ["good"]
        assert net.stats.dropped == 1
        assert net.stats.delivered == 1

    def test_double_attach_rejected(self):
        sim = Simulator()
        net = Network(sim, star_topology())
        EchoNode(net, 0)
        with pytest.raises(ValueError):
            EchoNode(net, 0)
