"""Shutdown-path behavior of the distributed harness (docs/SERVICE.md).

Three territories the soak lane crosses constantly, pinned here in
isolation: a member whose key-server requests all vanish exhausts its
bounded retries and gives up cleanly; a member crashing silently in the
middle of an interval is detected by probes and rotated out at the next
announcement; and a key-server snapshot restores byte-identically
(``key_tree_state``) and re-snapshots stably.  Each territory is covered
in the clean lane and — where a fault plan is the mechanism — in the
``pytest -q -m faults`` lane.
"""

from __future__ import annotations

import pytest

from repro.distributed import DistributedGroup
from repro.faults import FaultPlan
from repro.net import TransitStubParams, TransitStubTopology

SEED = 7
HOSTS = 17
SERVER = 0
PARAMS = TransitStubParams(
    transit_domains=3, transit_per_domain=3, stubs_per_transit=2, stub_size=3
)


def make_world(fault_plan=None, seed: int = SEED) -> DistributedGroup:
    topology = TransitStubTopology(num_hosts=HOSTS, params=PARAMS, seed=seed)
    return DistributedGroup(
        topology,
        server_host=SERVER,
        seed=seed,
        fault_plan=fault_plan,
        backend="eventloop",
    )


def populate(world: DistributedGroup, hosts=(1, 2, 3, 4, 5)) -> None:
    for i, host in enumerate(hosts):
        world.schedule_join(host, at=1.0 + 300.0 * i)
    world.end_interval(at=5000.0)
    world.run()


def converge(world: DistributedGroup, rounds: int = 8) -> None:
    """Bounded protocol-only repair: probe (detect), announce what the
    probes queued, recover, refill — until tables are 1-consistent."""
    for _ in range(rounds):
        world.run()
        if not world.check_one_consistency():
            return
        now = world.simulator.now
        server = world.server
        if (
            server._pending_joins
            or server._pending_leaves
            or server._pending_replacements
        ):
            world.end_interval(at=now + 10.0)
        world.schedule_probe_round(at=now + 50.0)
        world.schedule_probe_round(at=now + 200.0)
        world.schedule_recovery_round(at=now + 350.0)
        world.schedule_refill_sweep(at=now + 400.0)
        world.run()


# ----------------------------------------------------------------------
# Server retry exhaustion
# ----------------------------------------------------------------------
@pytest.mark.faults
class TestServerRetryExhaustion:
    def test_join_gives_up_after_bounded_retries(self):
        """Every request to the server lost: the joiner retries with
        exponential backoff exactly ``max_server_retries`` times, then
        stops — no unbounded retry storm, no crash."""
        plan = FaultPlan(seed=SEED).drop(1.0, dst=SERVER)
        world = make_world(fault_plan=plan)
        node = world.schedule_join(1, at=1.0)
        world.run()
        assert not node.joined
        assert node.max_server_retries == 3
        assert node.stats.server_retries == 3
        assert world.simulator.pending == 0  # nothing left ticking

    def test_leave_request_exhaustion_keeps_the_member_registered(self):
        """Requests to the server start vanishing *after* the group
        forms: a leaver's LeaveRequest exhausts its retries and the
        server — which never heard it — still carries the member."""
        plan = FaultPlan(seed=SEED).drop(1.0, dst=SERVER, start=6000.0)
        world = make_world(fault_plan=plan)
        populate(world, hosts=(1, 2, 3))
        leaver = world.users[2]
        assert leaver.joined
        world.schedule_leave_of_host(2, at=6500.0)
        world.run()
        assert leaver.stats.server_retries == 3
        assert leaver.leaving
        assert leaver.user_id in world.server.records

    def test_clean_lane_never_needs_a_retry(self):
        world = make_world()
        populate(world, hosts=(1, 2, 3))
        world.schedule_leave_of_host(2, at=6500.0)
        world.end_interval(at=7000.0)
        world.run()
        assert all(u.stats.server_retries == 0 for u in world.users.values())


# ----------------------------------------------------------------------
# Member crash mid-interval
# ----------------------------------------------------------------------
class TestCrashMidInterval:
    CRASH_HOST = 3

    def drive_crash(self, world: DistributedGroup) -> None:
        populate(world)
        # Crash strictly inside the next interval, then let probes
        # detect it and the following announcement rotate the member out.
        world.schedule_crash(self.CRASH_HOST, at=5500.0)
        world.schedule_probe_round(at=6000.0)
        world.schedule_probe_round(at=6400.0)
        world.schedule_recovery_round(at=6800.0)
        world.end_interval(at=7000.0)
        world.run()
        converge(world)
        # Ping timeouts (5s) mean detection can land after the 7000ms
        # announcement with tables already consistent; flush the queued
        # eviction so the server-side record rotates out too.
        server = world.server
        if server._pending_leaves or server._pending_replacements:
            world.end_interval(at=world.simulator.now + 10.0)
            world.run()
            converge(world)

    def assert_rotated_out(self, world: DistributedGroup) -> None:
        crashed = world.users[self.CRASH_HOST]
        assert world.network.node_at(self.CRASH_HOST) is not crashed
        active = world.active_users()
        assert self.CRASH_HOST not in {u.host for u in active}
        assert len(active) == 4
        assert crashed.user_id not in world.server.records
        assert world.check_one_consistency() == []

    def test_clean_lane_probes_detect_and_evict(self):
        world = make_world()
        self.drive_crash(world)
        self.assert_rotated_out(world)
        assert any(u.stats.failures_detected > 0 for u in world.active_users())

    @pytest.mark.faults
    def test_crash_window_drops_inflight_traffic_too(self):
        """The declarative crash window makes traffic *to* the dead host
        vanish at delivery time while the silent detach is the crash —
        the soak harness's chaos pairing."""
        plan = FaultPlan(seed=SEED).crash(self.CRASH_HOST, at=5500.0)
        world = make_world(fault_plan=plan)
        self.drive_crash(world)
        self.assert_rotated_out(world)


# ----------------------------------------------------------------------
# Snapshot / restore round trip
# ----------------------------------------------------------------------
class TestSnapshotRoundTrip:
    def restored_copy(self, world: DistributedGroup) -> DistributedGroup:
        blob = world.server.snapshot_state()
        fresh = make_world()
        fresh.server.restore_state(blob)
        return fresh

    def test_round_trip_is_byte_equal(self):
        world = make_world()
        populate(world)
        fresh = self.restored_copy(world)
        assert fresh.server.key_tree_state() == world.server.key_tree_state()
        assert fresh.server.interval == world.server.interval
        assert fresh.server.snapshot_state() == world.server.snapshot_state()

    def test_round_trip_with_pending_batch(self):
        """A snapshot taken mid-batch (joins admitted but not yet
        announced) must carry the pending work byte-identically."""
        world = make_world()
        populate(world, hosts=(1, 2, 3))
        world.schedule_join(6, at=6000.0)
        world.run()
        assert world.server._pending_joins
        fresh = self.restored_copy(world)
        assert fresh.server.snapshot_state() == world.server.snapshot_state()
        assert len(fresh.server._pending_joins) == len(
            world.server._pending_joins
        )

    @pytest.mark.faults
    def test_round_trip_under_faults(self):
        """Background loss changes what the servers saw, never whether
        their snapshots round-trip."""
        plan = FaultPlan(seed=SEED).drop(0.1).delay(0.2, jitter=25.0)
        world = make_world(fault_plan=plan)
        populate(world)
        fresh = self.restored_copy(world)
        assert fresh.server.key_tree_state() == world.server.key_tree_state()
        assert fresh.server.snapshot_state() == world.server.snapshot_state()

    def test_scheme_mismatch_fails_loudly(self):
        from repro.core.ids import IdScheme

        world = make_world()
        populate(world, hosts=(1, 2))
        blob = world.server.snapshot_state()
        other = make_world()
        other.server.scheme = IdScheme(2, 7)
        with pytest.raises(ValueError, match="scheme"):
            other.server.restore_state(blob)
