"""Tests for the command-line interface and report generator."""

import os

import pytest

from repro.__main__ import main
from repro.experiments.config import SCALES
from repro.experiments.report import PAPER_CLAIMS, render_markdown, ReportSection


class TestCli:
    def test_quickstart(self, capsys):
        assert main(["quickstart"]) == 0
        out = capsys.readouterr().out
        assert "rekey cost" in out
        assert "audit OK" in out

    def test_fig14(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert main(["fig", "14"]) == 0
        assert "Fig 14" in capsys.readouterr().out

    def test_unknown_figure(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert main(["fig", "99"]) == 2

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestReport:
    def test_claims_cover_every_figure(self):
        assert set(PAPER_CLAIMS) == {
            "fig6",
            "fig7_8",
            "fig9_11",
            "fig12",
            "fig13",
            "fig14",
        }

    def test_render_markdown_structure(self):
        sections = [
            ReportSection("Fig. 6 — test", "claim text", "measured rows", 1.5)
        ]
        text = render_markdown(sections, SCALES["tiny"])
        assert "# EXPERIMENTS" in text
        assert "## Fig. 6 — test" in text
        assert "claim text" in text
        assert "measured rows" in text
