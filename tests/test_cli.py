"""Tests for the command-line interface, the report generator, and the
trace-report tool."""

import json
import os
import pathlib
import subprocess
import sys

import pytest

from repro.__main__ import main
from repro.experiments.config import SCALES
from repro.experiments.report import PAPER_CLAIMS, render_markdown, ReportSection

TOOLS = pathlib.Path(__file__).parent.parent / "tools"


class TestCli:
    def test_quickstart(self, capsys):
        assert main(["quickstart"]) == 0
        out = capsys.readouterr().out
        assert "rekey cost" in out
        assert "audit OK" in out

    def test_fig14(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert main(["fig", "14"]) == 0
        assert "Fig 14" in capsys.readouterr().out

    def test_unknown_figure(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert main(["fig", "99"]) == 2

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


@pytest.mark.trace
class TestTraceCli:
    def test_bare_trace_prints_summary(self, capsys):
        """Bare --trace (flag before the subcommand) runs the command
        under a trace context and prints the summary to stderr."""
        assert main(["--trace", "quickstart"]) == 0
        captured = capsys.readouterr()
        assert "rekey cost" in captured.out
        assert "[trace]" in captured.err
        assert "session(s)" in captured.err

    def test_trace_to_file(self, capsys, tmp_path):
        out = tmp_path / "cli.jsonl"
        assert main([f"--trace={out}", "quickstart"]) == 0
        assert f"wrote {out}" in capsys.readouterr().err
        header = json.loads(
            out.read_text(encoding="utf-8").splitlines()[0]
        )
        assert header["kind"] == "header"
        assert header["label"] == "cli:quickstart"

    def test_trace_composes_with_verify(self, capsys, tmp_path):
        out = tmp_path / "both.jsonl"
        assert main(["--verify", f"--trace={out}", "quickstart"]) == 0
        err = capsys.readouterr().err
        assert "[verify]" in err
        assert "[trace]" in err
        assert out.exists()


@pytest.mark.trace
class TestTraceReportTool:
    def _write_trace(self, path):
        from repro.metrics.export import write_trace_jsonl
        from repro.trace import tracing

        from tests.conftest import make_static_world
        from repro.core.ids import Id, IdScheme
        from repro.core.tmesh import rekey_session

        scheme = IdScheme(2, 3)
        ids = [Id((i, j)) for i in range(3) for j in range(2)]
        topology, _, tables, server_table = make_static_world(
            scheme, ids, seed=3
        )
        with tracing(seed=3, label="cli-smoke") as ctx:
            rekey_session(server_table, tables, topology)
        write_trace_jsonl(str(path), ctx)

    def _run(self, *argv):
        env = dict(os.environ)
        root = TOOLS.parent
        env["PYTHONPATH"] = os.pathsep.join(
            [str(root / "src"), str(root), env.get("PYTHONPATH", "")]
        )
        return subprocess.run(
            [sys.executable, str(TOOLS / "trace_report.py"), *map(str, argv)],
            capture_output=True,
            text=True,
            timeout=120,
            env=env,
        )

    def test_summary_report(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        self._write_trace(trace)
        result = self._run(trace)
        assert result.returncode == 0, result.stderr[-2000:]
        assert "trace report" in result.stdout
        assert "tmesh.session" in result.stdout
        assert "tmesh.hop" in result.stdout
        assert "max depth 1" in result.stdout

    def test_golden_match_and_mismatch(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        self._write_trace(trace)
        golden = tmp_path / "golden.jsonl"
        golden.write_text(
            trace.read_text(encoding="utf-8"), encoding="utf-8"
        )
        ok = self._run(trace, "--golden", golden)
        assert ok.returncode == 0, ok.stdout + ok.stderr
        assert "byte-exact" in ok.stdout

        golden.write_text(
            trace.read_text(encoding="utf-8") + "extra\n", encoding="utf-8"
        )
        bad = self._run(trace, "--golden", golden)
        assert bad.returncode == 1
        assert "DIVERGES" in bad.stdout


class TestReport:
    def test_claims_cover_every_figure(self):
        assert set(PAPER_CLAIMS) == {
            "fig6",
            "fig7_8",
            "fig9_11",
            "fig12",
            "fig13",
            "fig14",
        }

    def test_render_markdown_structure(self):
        sections = [
            ReportSection("Fig. 6 — test", "claim text", "measured rows", 1.5)
        ]
        text = render_markdown(sections, SCALES["tiny"])
        assert "# EXPERIMENTS" in text
        assert "## Fig. 6 — test" in text
        assert "claim text" in text
        assert "measured rows" in text
