"""Tests for the NACK-based reliable T-mesh transport
(:mod:`repro.alm.reliable`): exactly-once on a clean network, full repair
under seeded loss, duplicate suppression, bounded buffers, source
escalation, and graceful give-up."""

import numpy as np
import pytest

from tests.conftest import make_static_world
from repro.alm.reliable import (
    ReliabilityConfig,
    ReliableSession,
    TmeshData,
    TmeshNack,
)
from repro.core.ids import Id, IdScheme
from repro.faults import FaultPlan

SCHEME = IdScheme(3, 4)


def random_ids(n, seed=9, scheme=SCHEME):
    rng = np.random.default_rng(seed)
    seen = set()
    while len(seen) < n:
        seen.add(
            tuple(int(rng.integers(0, scheme.base)) for _ in range(scheme.num_digits))
        )
    return [Id(t) for t in sorted(seen)]


def make_session(ids, plan=None, config=None, k=1, seed=0):
    topology, _, tables, server_table = make_static_world(
        SCHEME, ids, seed=seed, k=k
    )
    return ReliableSession(tables, server_table, topology, plan=plan, config=config)


PAYLOADS = [f"rekey-{i}" for i in range(8)]


class TestCleanNetwork:
    def test_exactly_once_with_zero_repair_traffic(self):
        ids = random_ids(30)
        outcome = make_session(ids).multicast(PAYLOADS)
        assert outcome.delivery_ratio == 1.0
        assert outcome.members_short() == []
        assert outcome.duplicates_surfaced == 0
        assert outcome.stats.nacks_sent == 0
        assert outcome.stats.retransmissions == 0
        assert outcome.stats.duplicates_suppressed == 0
        assert all(not holes for holes in outcome.missing.values())

    def test_payloads_arrive_in_sequence_order(self):
        ids = random_ids(20)
        outcome = make_session(ids).multicast(PAYLOADS)
        for got in outcome.delivered.values():
            assert got == PAYLOADS

    def test_data_transport_from_a_user(self):
        ids = random_ids(25)
        sender = ids[7]
        outcome = make_session(ids).multicast(PAYLOADS, sender=sender)
        assert set(outcome.delivered) == set(ids) - {sender}
        assert outcome.delivery_ratio == 1.0
        assert outcome.duplicates_surfaced == 0


@pytest.mark.faults
class TestRepairUnderLoss:
    def test_twenty_percent_drop_fully_repaired(self):
        """The headline acceptance criterion: 20% seeded loss, yet every
        member ends with 100% of the payloads and zero duplicates, and the
        repair-overhead counter is exported."""
        ids = random_ids(40)
        plan = FaultPlan(seed=42).drop(0.2)
        outcome = make_session(ids, plan=plan).multicast(PAYLOADS)
        assert plan.stats.drops > 0  # the plan really injected loss
        assert outcome.delivery_ratio == 1.0
        assert outcome.members_short() == []
        assert outcome.duplicates_surfaced == 0
        assert outcome.stats.gave_up == 0
        assert outcome.stats.nacks_sent > 0
        assert outcome.stats.retransmissions > 0
        row = outcome.stats.as_row()
        assert row["repair_overhead"] > 0.0

    def test_repair_disabled_demonstrably_loses(self):
        """Same seed, repair off: the plain FORWARD transport loses
        payloads — proof the repair layer is what closes the gap."""
        ids = random_ids(40)
        plan = FaultPlan(seed=42).drop(0.2)
        config = ReliabilityConfig(repair_enabled=False)
        outcome = make_session(ids, plan=plan, config=config).multicast(PAYLOADS)
        assert outcome.delivery_ratio < 1.0
        assert outcome.members_short() != []
        assert outcome.stats.nacks_sent == 0
        assert outcome.stats.retransmissions == 0

    def test_injected_duplicates_never_surface(self):
        ids = random_ids(30)
        plan = FaultPlan(seed=5).duplicate(0.5)
        outcome = make_session(ids, plan=plan).multicast(PAYLOADS)
        assert outcome.delivery_ratio == 1.0
        assert outcome.duplicates_surfaced == 0
        assert outcome.stats.duplicates_suppressed > 0

    def test_reordering_and_delay_tolerated(self):
        ids = random_ids(30)
        plan = (
            FaultPlan(seed=8)
            .delay(0.3, jitter=60.0)
            .reorder(0.3, spread=120.0)
            .drop(0.1)
        )
        outcome = make_session(ids, plan=plan).multicast(PAYLOADS)
        assert outcome.delivery_ratio == 1.0
        assert outcome.duplicates_surfaced == 0
        # repairs delivered out of band still end up sequence-ordered
        for got in outcome.delivered.values():
            assert got == PAYLOADS

    def test_crashed_member_routed_around(self):
        """Section 2.3: with K=4 tables and backup routing, one crashed
        member costs only its own deliveries."""
        ids = random_ids(40)
        topology, _, tables, server_table = make_static_world(
            SCHEME, ids, seed=0, k=4
        )
        # crash the server's first primary — a top-level forwarder
        victim = server_table.row_primaries(0)[0][1]
        plan = FaultPlan(seed=2).drop(0.1).crash(host=victim.host, at=0.0)
        session = ReliableSession(tables, server_table, topology, plan=plan)
        outcome = session.multicast(PAYLOADS)
        for uid, got in outcome.delivered.items():
            if uid == victim.user_id:
                assert got == []  # it is down, after all
            else:
                assert got == PAYLOADS, f"live member {uid} shorted"
        assert outcome.duplicates_surfaced == 0


class TestRepairMechanics:
    def test_repair_buffer_stays_bounded(self):
        ids = random_ids(20)
        config = ReliabilityConfig(repair_buffer=4)
        session = make_session(ids, config=config)
        session.multicast([f"p{i}" for i in range(12)])
        for node in list(session.nodes.values()) + [session.server]:
            for buffer in node._buffer.values():
                assert len(buffer) <= 4

    def test_escalation_to_source(self):
        """When upstream NACKs go unanswered, receivers fall back to the
        source itself (NORM's repair escalation) and still recover."""
        ids = random_ids(30)
        source_host = len(ids)  # the key server's host in make_static_world

        def nack_not_to_source(src, dst, payload):
            return isinstance(payload, TmeshNack) and dst != source_host

        plan = (
            FaultPlan(seed=4)
            .drop(0.25, match=lambda s, d, p: isinstance(p, TmeshData) and not p.retransmit)
            .drop(1.0, match=nack_not_to_source)
        )
        outcome = make_session(ids, plan=plan).multicast(PAYLOADS)
        assert outcome.stats.source_repairs > 0
        assert outcome.delivery_ratio == 1.0
        assert outcome.duplicates_surfaced == 0

    def test_gave_up_counter_and_termination(self):
        """With every retransmission eaten, the bounded retry budget must
        give the holes up instead of spinning forever."""
        ids = random_ids(25)
        plan = (
            FaultPlan(seed=6)
            .drop(0.3, match=lambda s, d, p: isinstance(p, TmeshData) and not p.retransmit)
            .drop(1.0, match=lambda s, d, p: isinstance(p, TmeshData) and p.retransmit)
        )
        config = ReliabilityConfig(max_upstream_nacks=1, max_source_nacks=2)
        outcome = make_session(ids, plan=plan, config=config).multicast(PAYLOADS)
        # the simulator drained (multicast returned) and losses were real
        assert outcome.delivery_ratio < 1.0
        assert outcome.stats.gave_up > 0
        assert any(holes for holes in outcome.missing.values())

    def test_two_streams_do_not_interfere(self):
        """A rekey stream from the server and a data stream from a user
        are tracked independently per source."""
        ids = random_ids(15)
        session = make_session(ids)
        session.multicast(["server-a", "server-b"])
        sender = ids[3]
        outcome = session.multicast(["user-a"], sender=sender)
        assert set(outcome.delivered) == set(ids) - {sender}
        for uid, node in session.nodes.items():
            if uid != sender:
                assert node.delivered_payloads(sender) == ["user-a"]
            assert node.delivered_payloads(session.server.source_id) == [
                "server-a",
                "server-b",
            ]
