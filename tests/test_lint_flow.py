"""The flow half of the ``-m lint`` lane: CFG construction, dataflow
fixpoints, and the four flow rules' precision.

Three layers:

* CFG shape — branch joins, loop back edges, try/finally inlining,
  break/continue routing, and (the part everything else rides on) await
  nodes placed at every suspension point, explicit and implicit;
* dataflow — reaching definitions checked against brute-force path
  enumeration on hypothesis-generated acyclic programs, plus the
  await-crossing bit and seed-source resolution;
* rule precision — the true-positive/near-miss pairs for each flow rule
  (the badtree/goodtree fixture canaries in ``test_lint_rules.py`` lock
  the same behaviour against the real engine walk).
"""

from __future__ import annotations

import ast
import itertools
import textwrap

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lint import check_source
from repro.lint.flow.cfg import AWAIT, PARAM, TEST, WRITE, build_cfg
from repro.lint.flow.dataflow import (
    SEED_CONST,
    SEED_NONE,
    SEED_PARAM,
    AwaitCrossing,
    ReachingDefinitions,
    classify_seed_expr,
    reachable_without,
)

pytestmark = pytest.mark.lint


def cfg_of(source: str, name: str = "f", self_name: str | None = None):
    tree = ast.parse(textwrap.dedent(source))
    func = next(
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        and node.name == name
    )
    return build_cfg(func, self_name)


def rules_of(violations):
    return {violation.rule for violation in violations}


# ----------------------------------------------------------------------
# CFG construction
# ----------------------------------------------------------------------
def test_if_else_branches_and_join():
    cfg = cfg_of(
        """
        def f(c):
            if c:
                a = 1
            else:
                a = 2
            return a
        """
    )
    tests = [node for node in cfg.nodes if node.kind == TEST]
    assert len(tests) == 1
    assert len(tests[0].succs) == 2  # both arms
    # Both arm writes flow into the return's read node.
    returns = [
        node
        for node in cfg.nodes
        if node.stmt is not None and isinstance(node.stmt, ast.Return)
    ]
    assert len(returns) == 1
    assert len(returns[0].preds) == 2


def test_while_loop_has_back_edge_and_exit():
    cfg = cfg_of(
        """
        def f(n):
            while n:
                n = n - 1
            return n
        """
    )
    head = next(node for node in cfg.nodes if node.kind == TEST)
    body_write = next(
        node
        for node in cfg.nodes
        if any(w.name == "n" and w.kind == WRITE for w in node.writes)
    )
    assert head.index in body_write.succs  # back edge
    assert len(head.succs) == 2  # loop + fall-through


def test_while_true_has_no_fall_through():
    cfg = cfg_of(
        """
        def f(n):
            while True:
                if n:
                    break
                n = n + 1
            return n
        """
    )
    head = next(
        node
        for node in cfg.nodes
        if node.kind == TEST and isinstance(node.stmt, ast.While)
    )
    # The only way past the loop is the break; the While test itself
    # never falls through.
    ret = next(
        node
        for node in cfg.nodes
        if node.stmt is not None and isinstance(node.stmt, ast.Return)
    )
    assert head.index not in ret.preds
    assert reachable_without(cfg, cfg.entry, set(), cfg.exit)


def test_explicit_await_nodes_per_suspension():
    cfg = cfg_of(
        """
        async def f(x):
            a = await x.get()
            await x.put(a)
            return a
        """
    )
    assert len(cfg.await_nodes()) == 2


def test_async_for_and_async_with_get_implicit_awaits():
    cfg = cfg_of(
        """
        async def f(source, lock):
            async with lock:
                async for item in source:
                    pass
            return 0
        """
    )
    # __aenter__ + __aexit__ for the with, __anext__ for the for.
    assert len(cfg.await_nodes()) == 3


def test_async_for_back_edge_re_enters_through_the_await():
    cfg = cfg_of(
        """
        async def f(source):
            total = 0
            async for item in source:
                total = total + item
            return total
        """
    )
    anext = next(node for node in cfg.nodes if node.kind == AWAIT)
    # The loop body's write jumps back to the __anext__ await, never
    # straight to the target bind: every iteration is a suspension.
    writes_total = [
        node
        for node in cfg.nodes
        if any(w.name == "total" for w in node.writes)
    ]
    in_loop = writes_total[-1]
    assert anext.index in in_loop.succs


def test_try_finally_is_inlined_on_the_return_path():
    cfg = cfg_of(
        """
        def f(handle):
            try:
                return handle.read()
            finally:
                handle.close()
        """
    )
    close_nodes = [
        node
        for node in cfg.nodes
        if node.stmt is not None
        and isinstance(node.stmt, ast.Expr)
        and "close" in ast.dump(node.stmt)
    ]
    # Once inlined for the return, once for the normal/exception paths.
    assert len(close_nodes) >= 2
    # The return cannot reach the exit while skipping every close copy.
    ret = next(
        node
        for node in cfg.nodes
        if node.stmt is not None and isinstance(node.stmt, ast.Return)
    )
    blocked = {node.index for node in close_nodes}
    assert not reachable_without(cfg, ret.index, blocked, cfg.exit)


def test_break_routes_through_finally():
    cfg = cfg_of(
        """
        def f(items, handle):
            for item in items:
                try:
                    if item:
                        break
                finally:
                    handle.release()
            return 0
        """
    )
    close_nodes = {
        node.index
        for node in cfg.nodes
        if node.stmt is not None and "release" in ast.dump(node.stmt)
    }
    break_marker = next(
        node
        for node in cfg.nodes
        if node.stmt is not None and isinstance(node.stmt, ast.Break)
    )
    assert not reachable_without(cfg, break_marker.index, close_nodes, cfg.exit)


def test_except_handler_reachable_from_body():
    cfg = cfg_of(
        """
        def f(x):
            try:
                y = x()
            except ValueError:
                y = 0
            return y
        """
    )
    handler = next(
        node
        for node in cfg.nodes
        if node.stmt is not None and isinstance(node.stmt, ast.ExceptHandler)
    )
    body = next(
        node
        for node in cfg.nodes
        if any(w.name == "y" for w in node.writes)
        and not isinstance(node.stmt, ast.ExceptHandler)
    )
    assert reachable_without(cfg, body.index, set(), handler.index)


def test_parameters_are_entry_definitions():
    cfg = cfg_of("def f(a, b, *rest, key=None, **extra):\n    return a\n")
    entry = cfg.nodes[cfg.entry]
    assert {w.name for w in entry.writes} == {"a", "b", "rest", "key", "extra"}
    assert all(w.kind == PARAM for w in entry.writes)


def test_self_attributes_become_pseudo_names():
    cfg = cfg_of(
        """
        def f(self, x):
            self.total = x
            return self.total + self.base
        """,
        self_name="self",
    )
    names = {access.name for _, access in cfg.accesses() if access.is_self}
    assert names == {"self.total", "self.base"}


# ----------------------------------------------------------------------
# reaching definitions vs brute-force path enumeration
# ----------------------------------------------------------------------
_assign = st.sampled_from(["a", "b"])
_branch = st.lists(_assign, max_size=2)
_item = st.one_of(
    _assign.map(lambda v: ("assign", v)),
    st.tuples(_branch, _branch).map(lambda t: ("if", t[0], t[1])),
)
_program = st.lists(_item, max_size=5)


def _build_source(program):
    """Render the abstract program and return (source, sim) where sim
    mirrors it with each assignment's line number as its identity."""
    lines = ["def f(c):"]
    sim = []

    def emit(text: str) -> int:
        lines.append(text)
        return len(lines)

    for item in program:
        if item[0] == "assign":
            line = emit(f"    {item[1]} = 0")
            sim.append(("assign", (item[1], line)))
        else:
            _, then_branch, else_branch = item
            emit("    if c:")
            then_ids = []
            if not then_branch:
                emit("        pass")
            for var in then_branch:
                then_ids.append((var, emit(f"        {var} = 0")))
            emit("    else:")
            else_ids = []
            if not else_branch:
                emit("        pass")
            for var in else_branch:
                else_ids.append((var, emit(f"        {var} = 0")))
            sim.append(("if", then_ids, else_ids))
    emit("    return 0")
    return "\n".join(lines) + "\n", sim


def _brute_force_exit_defs(sim):
    """Per-variable sets of line numbers whose assignment can be live at
    exit, by enumerating every branch decision."""
    n_branches = sum(1 for item in sim if item[0] == "if")
    live = {"a": set(), "b": set()}
    for decisions in itertools.product((True, False), repeat=n_branches):
        env = {}
        chooser = iter(decisions)
        for item in sim:
            if item[0] == "assign":
                var, line = item[1]
                env[var] = line
            else:
                chosen = item[1] if next(chooser) else item[2]
                for var, line in chosen:
                    env[var] = line
        for var, line in env.items():
            live[var].add(line)
    return live


@given(_program)
@settings(max_examples=120, deadline=None)
def test_reaching_definitions_match_path_enumeration(program):
    source, sim = _build_source(program)
    tree = ast.parse(source)
    cfg = build_cfg(tree.body[0])
    rd = ReachingDefinitions(cfg)
    expected = _brute_force_exit_defs(sim)
    for var in ("a", "b"):
        got = {
            definition.access.node.lineno
            for definition in rd.reaching(cfg.exit, var)
            if definition.access.kind == WRITE
        }
        assert got == expected[var], source


def test_loop_definition_reaches_its_own_head():
    cfg = cfg_of(
        """
        def f(n):
            total = 0
            while n:
                total = total + 1
                n = n - 1
            return total
        """
    )
    rd = ReachingDefinitions(cfg)
    # Both the init and the in-loop write reach the exit read.
    assert len(rd.reaching(cfg.exit, "total")) == 2


def test_def_use_chain_finds_all_uses():
    cfg = cfg_of(
        """
        def f(c):
            x = 1
            if c:
                y = x
            return x
        """
    )
    rd = ReachingDefinitions(cfg)
    definition = next(
        d
        for d in rd.reaching(cfg.exit, "x")
        if d.access.kind == WRITE
    )
    uses = rd.uses_of(definition)
    assert len(uses) == 2  # the aliasing read and the return read


# ----------------------------------------------------------------------
# await-crossing
# ----------------------------------------------------------------------
def _crossing_of(source):
    cfg = cfg_of(source, self_name="self")
    return cfg, AwaitCrossing(cfg, ReachingDefinitions(cfg))


def _read_node(cfg, name):
    return next(
        node
        for node in cfg.nodes
        if any(
            a.name == name and a.kind == "read" and not a.is_test
            for a in node.reads
        )
    )


def test_crossing_bit_set_after_await():
    cfg, crossing = _crossing_of(
        """
        async def f(self, q):
            self.epoch = 1
            await q.get()
            return self.epoch
        """
    )
    read = _read_node(cfg, "self.epoch")
    assert crossing.stale_defs(read.index, "self.epoch")


def test_crossing_bit_clear_without_await():
    cfg, crossing = _crossing_of(
        """
        async def f(self, q):
            self.epoch = 1
            return self.epoch
        """
    )
    read = _read_node(cfg, "self.epoch")
    assert not crossing.stale_defs(read.index, "self.epoch")


def test_test_read_revalidates_only_its_own_name():
    cfg, crossing = _crossing_of(
        """
        async def f(self, q):
            self.epoch = 1
            self.other = 2
            await q.get()
            if self.epoch:
                return self.epoch + self.other
            return 0
        """
    )
    epoch_read = _read_node(cfg, "self.epoch")
    other_read = _read_node(cfg, "self.other")
    assert not crossing.stale_defs(epoch_read.index, "self.epoch")
    assert crossing.stale_defs(other_read.index, "self.other")


def test_rewrite_after_await_kills_the_stale_def():
    cfg, crossing = _crossing_of(
        """
        async def f(self, q):
            self.epoch = 1
            await q.get()
            self.epoch = 2
            return self.epoch
        """
    )
    read = _read_node(cfg, "self.epoch")
    assert not crossing.stale_defs(read.index, "self.epoch")


# ----------------------------------------------------------------------
# seed-source resolution
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "body,verdict",
    [
        ("s = None\nuse(s)", SEED_NONE),
        ("s = 42\nuse(s)", SEED_CONST),
        ("s = seed\nuse(s)", SEED_PARAM),
        ("s = seed\nt = s\nuse(t)", SEED_PARAM),
        ("s = None\ns = seed\nuse(s)", SEED_PARAM),  # None killed
        ("s = seed + 1\nuse(s)", SEED_PARAM),
        ("s = lookup()\nuse(s)", "other"),
    ],
)
def test_classify_seed_expr_chains(body, verdict):
    indented = "\n".join("    " + line for line in body.splitlines())
    source = f"def f(seed):\n{indented}\n"
    cfg = cfg_of(source)
    rd = ReachingDefinitions(cfg)
    call = next(
        node
        for node in ast.walk(cfg.func)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "use"
    )
    at = next(
        node.index
        for node in cfg.nodes
        if node.stmt is not None
        and isinstance(node.stmt, ast.Expr)
        and node.stmt.value is call
    )
    assert classify_seed_expr(call.args[0], at, rd) == verdict


def test_classify_merges_branches_weakest_wins():
    source = (
        "def f(seed, c):\n"
        "    if c:\n"
        "        s = seed\n"
        "    else:\n"
        "        s = None\n"
        "    use(s)\n"
    )
    cfg = cfg_of(source)
    rd = ReachingDefinitions(cfg)
    call = next(
        node for node in ast.walk(cfg.func) if isinstance(node, ast.Call)
    )
    at = next(
        node.index
        for node in cfg.nodes
        if node.stmt is not None
        and isinstance(node.stmt, ast.Expr)
        and node.stmt.value is call
    )
    assert classify_seed_expr(call.args[0], at, rd) == SEED_NONE


# ----------------------------------------------------------------------
# rule precision: flow-await-race
# ----------------------------------------------------------------------
RACE_TP = """
import asyncio

class Svc:
    async def bump(self):
        self._epoch = self.compute()
        await asyncio.sleep(0)
        return self._epoch + 1
"""

RACE_REVALIDATED = """
import asyncio

class Svc:
    async def bump(self):
        self._epoch = self.compute()
        await asyncio.sleep(0)
        if self._epoch:
            return self._epoch + 1
        return 0
"""

RACE_NO_AWAIT_BETWEEN = """
import asyncio

class Svc:
    async def bump(self):
        await asyncio.sleep(0)
        self._epoch = self.compute()
        return self._epoch + 1
"""


def test_await_race_fires_on_stale_read():
    found = check_source(RACE_TP, relpath="repro/service/svc.py")
    assert "flow-await-race" in rules_of(found)


def test_await_race_quiet_when_revalidated():
    found = check_source(RACE_REVALIDATED, relpath="repro/service/svc.py")
    assert "flow-await-race" not in rules_of(found)


def test_await_race_quiet_when_write_follows_await():
    found = check_source(RACE_NO_AWAIT_BETWEEN, relpath="repro/service/svc.py")
    assert "flow-await-race" not in rules_of(found)


def test_await_race_scoped_to_service_and_eventloop():
    assert "flow-await-race" in rules_of(
        check_source(RACE_TP, relpath="repro/net/eventloop.py")
    )
    # Same pattern outside the scoped paths: the runtime there is not
    # concurrent, so the rule stays quiet.
    assert "flow-await-race" not in rules_of(
        check_source(RACE_TP, relpath="repro/experiments/driver.py")
    )


def test_await_race_assign_from_await_is_clean():
    # The write lands *after* the await in the statement's own chain:
    # reads of the fresh value never cross a suspension.
    found = check_source(
        """
import asyncio

class Svc:
    async def start(self, handler):
        self._hub = await asyncio.start_server(handler, port=0)
        return self._hub.sockets
""",
        relpath="repro/service/svc.py",
    )
    assert "flow-await-race" not in rules_of(found)


# ----------------------------------------------------------------------
# rule precision: flow-dropped-coroutine
# ----------------------------------------------------------------------
def test_dropped_coroutine_bare_call():
    found = check_source(
        """
async def tick():
    pass

def kick():
    tick()
""",
        relpath="repro/service/svc.py",
    )
    assert "flow-dropped-coroutine" in rules_of(found)


def test_dropped_coroutine_dead_binding():
    found = check_source(
        """
class Hub:
    async def notify(self):
        pass

    def go(self):
        coro = self.notify()
""",
        relpath="repro/service/svc.py",
    )
    assert "flow-dropped-coroutine" in rules_of(found)


def test_awaited_and_scheduled_coroutines_are_clean():
    found = check_source(
        """
import asyncio

async def tick():
    pass

async def direct():
    await tick()

def scheduled():
    return asyncio.create_task(tick())

def via_binding(loop):
    coro = tick()
    return asyncio.ensure_future(coro, loop=loop)
""",
        relpath="repro/service/svc.py",
    )
    assert "flow-dropped-coroutine" not in rules_of(found)


def test_unknown_callees_are_not_guessed():
    # Only same-module async defs are resolved; imported names could be
    # sync factories, so silence is correct.
    found = check_source(
        "from helpers import maybe_async\n"
        "def go():\n"
        "    maybe_async()\n",
        relpath="repro/service/svc.py",
    )
    assert "flow-dropped-coroutine" not in rules_of(found)


# ----------------------------------------------------------------------
# rule precision: flow-seed-taint
# ----------------------------------------------------------------------
def test_seed_taint_through_copy_chain():
    found = check_source(
        """
import numpy as np

def make():
    seed = None
    s = seed
    return np.random.default_rng(s)
""",
        relpath="repro/core/streams.py",
    )
    assert "flow-seed-taint" in rules_of(found)


def test_seed_taint_direct_none():
    found = check_source(
        "import numpy as np\n"
        "def make():\n"
        "    return np.random.default_rng(None)\n",
        relpath="repro/core/streams.py",
    )
    assert "flow-seed-taint" in rules_of(found)


def test_seed_from_parameter_or_constant_is_clean():
    found = check_source(
        """
import numpy as np
import random

def from_param(seed, shard):
    s = seed + shard
    return np.random.default_rng(s)

def from_const():
    replay = 1234
    return random.Random(replay)
""",
        relpath="repro/core/streams.py",
    )
    assert "flow-seed-taint" not in rules_of(found)


def test_seed_taint_scoped_to_protocol_packages():
    source = (
        "import numpy as np\n"
        "def make():\n"
        "    seed = None\n"
        "    return np.random.default_rng(seed)\n"
    )
    assert "flow-seed-taint" not in rules_of(
        check_source(source, relpath="repro/experiments/driver.py")
    )


def test_seed_overwritten_before_use_is_clean():
    found = check_source(
        """
import numpy as np

def make(seed):
    s = None
    s = seed
    return np.random.default_rng(s)
""",
        relpath="repro/core/streams.py",
    )
    assert "flow-seed-taint" not in rules_of(found)


# ----------------------------------------------------------------------
# rule precision: flow-resource-leak
# ----------------------------------------------------------------------
def test_resource_leak_on_early_return():
    found = check_source(
        """
import asyncio

async def probe(host):
    reader, writer = await asyncio.open_connection(host, 9)
    data = await reader.read(64)
    if not data:
        return None
    writer.close()
    return data
""",
        relpath="repro/service/svc.py",
    )
    assert "flow-resource-leak" in rules_of(found)


def test_resource_closed_in_finally_is_clean():
    found = check_source(
        """
import asyncio

async def probe(host):
    reader, writer = await asyncio.open_connection(host, 9)
    try:
        return await reader.read(64)
    finally:
        writer.close()
""",
        relpath="repro/service/svc.py",
    )
    assert "flow-resource-leak" not in rules_of(found)


def test_resource_in_async_with_is_clean():
    found = check_source(
        """
import asyncio

async def serve(handler):
    server = await asyncio.start_server(handler, port=0)
    async with server:
        await server.serve_forever()
""",
        relpath="repro/service/svc.py",
    )
    assert "flow-resource-leak" not in rules_of(found)


def test_escaping_handle_is_the_callers_problem():
    found = check_source(
        """
import asyncio

async def connect(host, registry):
    reader, writer = await asyncio.open_connection(host, 9)
    registry.adopt(reader, writer)

async def handed_back(host):
    reader, writer = await asyncio.open_connection(host, 9)
    return reader, writer
""",
        relpath="repro/service/svc.py",
    )
    assert "flow-resource-leak" not in rules_of(found)


def test_resource_rule_scoped_to_service():
    found = check_source(
        "def load(path):\n"
        "    handle = open(path)\n"
        "    return handle.read()\n",
        relpath="repro/core/loader.py",
    )
    assert "flow-resource-leak" not in rules_of(found)
