"""Equivalence tests for the hot-path performance work.

Every optimization in the perf overhaul — cached IDs, dense RTT
matrices, batched Dijkstra, indexed session metrics, reusable session
plans, batched table fills, and the parallel experiment runner — claims
to be *semantically invisible*: same values, bit for bit, as the scalar
or sequential code it replaces.  This module is where those claims are
enforced, including under fault injection (``pytest -m faults``).
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ids import Id, NULL_ID, PAPER_SCHEME
from repro.core.neighbor_table import NeighborTable, UserRecord
from repro.core.tmesh import plan_session, rekey_session, run_multicast
from repro.experiments.common import build_group, build_topology
from repro.experiments.latency_experiments import run_latency_experiment
from repro.experiments.parallel import ParallelRunner, replication_seeds
from repro.faults import FaultPlan
from repro.metrics.export import write_latency_comparison
from repro.net.topology import Topology, validate_rtt_matrix
from repro.perf import percentile_linear


# ----------------------------------------------------------------------
# Cached Id
# ----------------------------------------------------------------------
class TestCachedId:
    def test_hash_matches_digit_tuple(self):
        uid = Id([3, 1, 4, 1, 5])
        assert hash(uid) == hash((3, 1, 4, 1, 5))
        assert hash(uid) == hash(Id((3, 1, 4, 1, 5)))

    def test_prefixes_are_interned(self):
        uid = Id([9, 2, 6, 5, 3])
        assert uid.prefix(2) is uid.prefix(2)
        assert uid[:2] is uid.prefix(2)
        assert uid[:len(uid)] is uid
        assert uid.prefix(0) is NULL_ID
        assert uid[:0] is NULL_ID

    def test_slicing_matches_tuple_slicing(self):
        uid = Id([9, 2, 6, 5, 3])
        for start in range(6):
            for stop in range(6):
                assert Id(uid.digits[start:stop]) == uid[start:stop]
        assert uid[1:4].digits == (2, 6, 5)
        assert uid[2] == 6

    def test_single_pass_validation(self):
        with pytest.raises(ValueError):
            Id([1, -2, 3])
        coerced = Id(np.array([1, 2, 3], dtype=np.int64))
        assert all(type(d) is int for d in coerced.digits)
        assert hash(coerced) == hash(Id([1, 2, 3]))

    def test_pickle_roundtrip_drops_prefix_cache(self):
        uid = Id([7, 7, 0, 1, 2])
        uid.prefix(3)  # populate the per-instance cache
        clone = pickle.loads(pickle.dumps(uid))
        assert clone == uid
        assert hash(clone) == hash(uid)
        assert clone._prefixes is None  # cache not dragged through pickle

    @given(st.lists(st.integers(min_value=0, max_value=255), max_size=8))
    def test_id_behaves_like_digit_tuple(self, digits):
        uid = Id(digits)
        assert tuple(uid) == tuple(digits)
        assert len(uid) == len(digits)
        assert uid == Id(tuple(digits))
        assert hash(uid) == hash(tuple(digits))


# ----------------------------------------------------------------------
# percentile_linear vs numpy
# ----------------------------------------------------------------------
@given(
    st.lists(
        st.floats(
            min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
        ),
        min_size=1,
        max_size=40,
    ),
    st.floats(min_value=0.0, max_value=100.0),
)
@settings(max_examples=200, deadline=None)
def test_percentile_linear_matches_numpy(values, q):
    ours = percentile_linear(values, q)
    numpy_result = float(np.percentile(np.asarray(values, dtype=np.float64), q))
    assert ours == numpy_result  # bitwise, not approx


# ----------------------------------------------------------------------
# Dense RTT cache vs scalar topology access
# ----------------------------------------------------------------------
@pytest.fixture(scope="module", params=["gtitm", "planetlab"])
def scalar_and_dense(request):
    """The same topology twice: one left scalar, one with the dense
    matrix built.  Same kind and seed, so scalar rtt() values agree."""
    scalar = build_topology(request.param, 32, seed=5, dense_rtt=False)
    dense = build_topology(request.param, 32, seed=5, dense_rtt=True)
    return scalar, dense


class TestDenseRttEquivalence:
    def test_matrix_entries_equal_scalar_rtt(self, scalar_and_dense):
        scalar, dense = scalar_and_dense
        m = dense.rtt_matrix_or_none()
        assert m is not None and not scalar.has_rtt_matrix()
        hosts = range(min(40, scalar.num_hosts))
        for a in hosts:
            for b in hosts:
                assert m[a, b] == scalar.rtt(a, b)

    def test_rtt_many_both_orientations(self, scalar_and_dense):
        scalar, dense = scalar_and_dense
        hosts = list(range(min(40, scalar.num_hosts)))
        src = hosts[-1]
        assert list(dense.rtt_many(src, hosts)) == [
            scalar.rtt(src, h) for h in hosts
        ]
        assert list(dense.rtt_to_many(src, hosts)) == [
            scalar.rtt(h, src) for h in hosts
        ]
        # The scalar fallbacks of the same methods agree too.
        assert list(scalar.rtt_many(src, hosts)) == [
            scalar.rtt(src, h) for h in hosts
        ]
        assert list(scalar.rtt_to_many(src, hosts)) == [
            scalar.rtt(h, src) for h in hosts
        ]

    def test_one_way_rows_equal_scalar_one_way(self, scalar_and_dense):
        scalar, dense = scalar_and_dense
        rows = dense.one_way_rows()
        assert rows is not None and scalar.one_way_rows() is None
        for a in range(min(20, scalar.num_hosts)):
            for b in range(min(20, scalar.num_hosts)):
                assert rows[a][b] == scalar.one_way_delay(a, b)

    def test_validate_rtt_matrix_vectorized_matches_scalar(
        self, scalar_and_dense
    ):
        _, dense = scalar_and_dense
        sample = range(0, min(30, dense.num_hosts), 3)
        assert validate_rtt_matrix(dense, sample) == validate_rtt_matrix(
            dense, sample, force_scalar=True
        )


def test_validate_rtt_matrix_reports_identical_violations():
    """A corrupted dense matrix must fall back to the scalar sweep and
    report the exact same messages the scalar path produces."""
    topology = build_topology("gtitm", 16, seed=3, dense_rtt=True)
    m = topology.ensure_rtt_matrix()
    m[1, 2] += 5.0  # asymmetry
    m[4, 4] = 1.0  # non-zero diagonal
    topology._rtt_rows = m.tolist()  # keep scalar rtt() consistent
    sample = range(6)
    vectorized = validate_rtt_matrix(topology, sample)
    scalar = validate_rtt_matrix(topology, sample, force_scalar=True)
    assert vectorized == scalar
    assert vectorized  # the corruption was detected


def test_validate_rtt_matrix_reports_from_the_checked_matrix():
    """Regression: corruption in the dense matrix must be reported even
    when the scalar row cache has drifted out of sync.  The old fallback
    re-read ``topology.rtt()`` (served from the stale rows), detected the
    dirt vectorized, then reported a clean [] — a silent false negative.
    """
    topology = build_topology("gtitm", 16, seed=3, dense_rtt=True)
    m = topology.ensure_rtt_matrix()
    m[1, 2] += 5.0  # asymmetry
    m[4, 4] = 1.0  # non-zero diagonal
    # _rtt_rows deliberately NOT refreshed: the two caches now disagree.
    problems = validate_rtt_matrix(topology, range(6))
    assert "rtt(4,4) = 1.0 != 0" in problems
    assert any("asymmetry" in p and "(1,2)" in p for p in problems)


class _AsymmetricTopology(Topology):
    """A raw scalar topology whose RTTs are genuinely asymmetric (the
    dense-cache constructors reject such matrices, so the validator's
    asymmetric branch is only reachable through a plain subclass)."""

    def __init__(self, matrix):
        self._m = np.asarray(matrix, dtype=np.float64)

    @property
    def num_hosts(self):
        return len(self._m)

    def rtt(self, a, b):
        return float(self._m[a, b])

    def access_rtt(self, host):
        return 0.5

    def _build_rtt_matrix(self):
        return self._m.copy()


_ASYMMETRIC = [
    [0.0, 10.0, 3.0],
    [12.0, 0.0, 4.0],
    [3.0, 4.0, -1.0],
]

#: The exact messages both validator paths must produce on _ASYMMETRIC,
#: in sweep order.  Locked verbatim: downstream tooling greps for them.
_ASYMMETRIC_MESSAGES = [
    "rtt asymmetry: (0,1) 10.0 vs 12.0",
    "rtt asymmetry: (1,0) 12.0 vs 10.0",
    "rtt(2,2) = -1.0 != 0",
    "rtt(2,2) = -1.0 < 0",
]


def test_validate_rtt_matrix_scalar_messages_locked():
    topology = _AsymmetricTopology(_ASYMMETRIC)
    assert (
        validate_rtt_matrix(topology, range(3), force_scalar=True)
        == _ASYMMETRIC_MESSAGES
    )


def test_validate_rtt_matrix_paths_identical_on_asymmetric_input():
    """The scalar fallback and the vectorized path must produce identical
    error messages on the same asymmetric input."""
    topology = _AsymmetricTopology(_ASYMMETRIC)
    scalar = validate_rtt_matrix(topology, range(3), force_scalar=True)
    topology.ensure_rtt_matrix()  # same values, now on the vectorized path
    vectorized = validate_rtt_matrix(topology, range(3))
    assert vectorized == scalar == _ASYMMETRIC_MESSAGES


# ----------------------------------------------------------------------
# Batched Dijkstra vs per-source
# ----------------------------------------------------------------------
def test_delays_from_many_matches_per_source_rows():
    topology = build_topology("gtitm", 32, seed=11, dense_rtt=False)
    graph = topology.graph
    sources = [0, 5, 3, 5, 1]  # duplicates on purpose
    batched = graph.delays_from_many(sources)
    for row, src in zip(batched, sources):
        assert np.array_equal(row, graph.delays_from(src))


# ----------------------------------------------------------------------
# Session metrics: index vs scan, plan vs classic
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def small_world():
    topology = build_topology("gtitm", 64, seed=20)
    group = build_group(topology, 64, seed=20)
    return topology, group


class TestSessionEquivalence:
    def test_indexed_metrics_match_scans(self, small_world):
        topology, group = small_world
        session = rekey_session(group.server_table, group.tables, topology)
        for member in group.tables:
            assert session.user_stress(member) == session.user_stress_scan(
                member
            )
            assert session.out_edges(member) == session.out_edges_scan(member)

    def test_index_rebuilds_after_edges_grow(self, small_world):
        topology, group = small_world
        session = rekey_session(group.server_table, group.tables, topology)
        member = next(iter(group.tables))
        before = session.user_stress(member)
        session.edges.append(session.edges[0]._replace(src=member))
        assert session.user_stress(member) == before + 1
        assert session.user_stress(member) == session.user_stress_scan(member)

    def test_session_plan_identical_to_classic(self, small_world):
        topology, group = small_world
        classic = rekey_session(group.server_table, group.tables, topology)
        plan = plan_session(group.server_table, group.tables)
        for _ in range(2):  # plan reuse must not drift
            planned = rekey_session(
                group.server_table, group.tables, topology, plan=plan
            )
            assert list(planned.receipts) == list(classic.receipts)
            assert planned.receipts == classic.receipts
            assert planned.edges == classic.edges
            assert planned.duplicate_copies == classic.duplicate_copies

    def test_classic_fast_and_general_drain_loops_agree(self, small_world):
        """run_multicast's fault-free fast path must equal the general
        loop (forced here by passing an impossible failed host)."""
        topology, group = small_world
        fast = run_multicast(group.server_table, group.tables, topology)
        general = run_multicast(
            group.server_table,
            group.tables,
            topology,
            failed_hosts={-1},
            use_backups=True,
        )
        assert list(fast.receipts) == list(general.receipts)
        assert fast.receipts == general.receipts
        assert fast.edges == general.edges
        assert fast.duplicate_copies == general.duplicate_copies


# ----------------------------------------------------------------------
# Compute backends: numpy kernels vs the reference loops
# ----------------------------------------------------------------------
class TestComputeBackendEquivalence:
    """The :mod:`repro.compute` seam inherits this module's discipline:
    the ``"numpy"`` backend must be semantically invisible next to
    ``"reference"``.  Property-based coverage lives in
    ``tests/test_compute_backends.py``; these cases pin the fixed
    worlds the rest of this module uses."""

    @pytest.fixture(scope="class")
    def numpy_backend(self):
        from repro.compute import ComputeUnavailable, create_backend

        try:
            return create_backend("numpy")
        except ComputeUnavailable:
            pytest.skip("fast extra not installed")

    def test_session_bitwise_identical(self, small_world, numpy_backend):
        topology, group = small_world
        ref = rekey_session(
            group.server_table, group.tables, topology, compute="reference"
        )
        vec = rekey_session(
            group.server_table, group.tables, topology, compute=numpy_backend
        )
        assert list(ref.receipts) == list(vec.receipts)
        assert pickle.dumps(
            (ref.receipts, ref.edges, ref.duplicate_copies)
        ) == pickle.dumps((vec.receipts, vec.edges, vec.duplicate_copies))

    def test_deferred_session_survives_pickle(self, small_world, numpy_backend):
        """The numpy backend's lazy SessionResult must materialize on
        pickle, so fork-boundary payloads stay byte-compatible."""
        topology, group = small_world
        vec = rekey_session(
            group.server_table, group.tables, topology, compute=numpy_backend
        )
        clone = pickle.loads(pickle.dumps(vec))
        assert clone.receipts == vec.receipts
        assert clone.edges == vec.edges
        assert clone.duplicate_copies == vec.duplicate_copies

    def test_plan_replay_matches_classic_on_both_backends(
        self, small_world, numpy_backend
    ):
        topology, group = small_world
        classic = rekey_session(
            group.server_table, group.tables, topology, compute="reference"
        )
        plan = plan_session(group.server_table, group.tables)
        for backend in ("reference", numpy_backend):
            replayed = plan.run(topology, compute=backend)
            assert list(replayed.receipts) == list(classic.receipts)
            assert replayed.receipts == classic.receipts
            assert replayed.edges == classic.edges
            assert replayed.duplicate_copies == classic.duplicate_copies


# ----------------------------------------------------------------------
# NeighborTable.fill vs sequential inserts
# ----------------------------------------------------------------------
@given(st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=25, deadline=None)
def test_fill_matches_sequential_inserts(seed):
    rng = np.random.default_rng(seed)
    scheme = PAPER_SCHEME
    owner = UserRecord(Id([0, 0, 0, 0, 0]), host=0)
    offers = []
    seen_ids = {owner.user_id}
    for host in range(1, 40):
        while True:
            uid = Id(
                int(rng.integers(0, 3)) for _ in range(scheme.num_digits)
            )
            if uid not in seen_ids:  # fill() requires distinct-ID offers
                break
        seen_ids.add(uid)
        rtt = float(rng.integers(0, 6))  # coarse values force RTT ties
        offers.append((UserRecord(uid, host=host), rtt))

    sequential = NeighborTable(scheme, owner, k=2)
    for record, rtt in offers:
        sequential.insert(record, rtt)
    batched = NeighborTable(scheme, owner, k=2)
    batched.fill(offers)

    assert batched._entries.keys() == sequential._entries.keys()
    for slot, entry in sequential._entries.items():
        assert batched._entries[slot].neighbors == entry.neighbors
        assert batched._entries[slot].ids == entry.ids


def test_row_primaries_cache_invalidated_on_mutation():
    scheme = PAPER_SCHEME
    table = NeighborTable(scheme, UserRecord(Id([0] * 5), host=0), k=1)
    a = UserRecord(Id([1, 0, 0, 0, 0]), host=1)
    b = UserRecord(Id([2, 0, 0, 0, 0]), host=2)
    table.insert(a, 10.0)
    assert [j for j, _ in table.row_primaries(0)] == [1]
    table.insert(b, 5.0)
    assert [j for j, _ in table.row_primaries(0)] == [1, 2]
    table.remove(a.user_id)
    assert [j for j, _ in table.row_primaries(0)] == [2]


# ----------------------------------------------------------------------
# ParallelRunner: byte-identical to the serial path
# ----------------------------------------------------------------------
def test_replication_seeds_are_stable():
    assert replication_seeds(7, 3) == [1007, 2007, 3007]


def test_parallel_runner_byte_identical_to_serial(tmp_path):
    kwargs = dict(mode="rekey", runs=3, seed=7)
    serial = run_latency_experiment("Fig 7", "gtitm", 32, **kwargs)
    parallel = run_latency_experiment(
        "Fig 7", "gtitm", 32, runner=ParallelRunner(processes=2), **kwargs
    )
    for scheme_name in ("tmesh", "nice"):
        s = getattr(serial, scheme_name)
        p = getattr(parallel, scheme_name)
        for metric in ("stress", "app_delay", "rdp"):
            assert (
                getattr(p, metric).mean.tobytes()
                == getattr(s, metric).mean.tobytes()
            )
            assert (
                getattr(p, metric).p95.tobytes()
                == getattr(s, metric).p95.tobytes()
            )

    serial_paths = write_latency_comparison(str(tmp_path / "serial"), serial)
    parallel_paths = write_latency_comparison(
        str(tmp_path / "parallel"), parallel
    )
    assert serial_paths.keys() == parallel_paths.keys()
    for key in serial_paths:
        with open(serial_paths[key], "rb") as f_serial, open(
            parallel_paths[key], "rb"
        ) as f_parallel:
            assert f_serial.read() == f_parallel.read()


# ----------------------------------------------------------------------
# Synthesized RTTs vs the materialized dense matrix
# ----------------------------------------------------------------------
class TestSyntheticRttEquivalence:
    """On-demand RTT synthesis (the scale ladder's topology) claims the
    dense matrix is redundant: every value it would hold is recomputed
    bitwise-identically from coordinates on demand.  Enforced here at
    every size where both representations can exist."""

    @given(
        st.integers(min_value=2, max_value=1024),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_synthesized_rtts_bitwise_equal_dense_matrix(self, n, seed):
        from repro.net.synthetic import SyntheticRttTopology

        lazy = SyntheticRttTopology.seeded(n, seed)
        dense = SyntheticRttTopology.seeded(n, seed)
        matrix = dense.ensure_rtt_matrix()
        assert not lazy.has_rtt_matrix()
        hosts = list(range(n))
        # Every row, vectorized lazy synthesis vs the materialized matrix.
        for a in range(0, n, max(1, n // 16)):
            assert np.array_equal(matrix[a], lazy.rtt_many(a, hosts))
            assert np.array_equal(matrix[:, a], lazy.rtt_to_many(a, hosts))
        # Scalar synthesis agrees too (spot-checked pairs).
        rng = np.random.default_rng(seed)
        for a, b in rng.integers(0, n, size=(32, 2)):
            assert lazy.rtt(int(a), int(b)) == matrix[a, b]

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_seeded_synthesis_deterministic(self, seed):
        from repro.net.synthetic import SyntheticRttTopology

        one = SyntheticRttTopology.seeded(64, seed)
        two = SyntheticRttTopology.seeded(64, seed)
        assert one.coords.tobytes() == two.coords.tobytes()
        assert [one.rtt(0, b) for b in range(64)] == [
            two.rtt(0, b) for b in range(64)
        ]

    def test_rtt_properties(self):
        from repro.net.synthetic import SyntheticRttTopology

        topology = SyntheticRttTopology.seeded(40, 20)
        for a in range(0, 40, 7):
            assert topology.rtt(a, a) == 0.0
            for b in range(0, 40, 5):
                assert topology.rtt(a, b) == topology.rtt(b, a)
                # One-way delay is exactly the Euclidean distance.
                assert topology.one_way_delay(a, b) == topology.rtt(a, b) / 2.0

    def test_dense_materialization_guard(self):
        from repro.net.synthetic import SyntheticRttTopology

        topology = SyntheticRttTopology.seeded(128, 20, max_dense_hosts=64)
        with pytest.raises(RuntimeError, match="max_dense_hosts"):
            topology.ensure_rtt_matrix()
        # Lazy access keeps working above the guard.
        assert topology.rtt(0, 127) > 0.0
        assert len(topology.rtt_many(0, list(range(128)))) == 128


# ----------------------------------------------------------------------
# Under fault injection (pytest -m faults)
# ----------------------------------------------------------------------
@pytest.mark.faults
class TestEquivalenceUnderFaults:
    def test_dense_cache_invisible_to_faulty_sessions(self):
        """Identically seeded fault plans on scalar vs dense topologies
        must produce identical sessions — the dense cache cannot perturb
        fault outcomes."""
        results = []
        for dense_rtt in (False, True):
            topology = build_topology("gtitm", 48, seed=9, dense_rtt=dense_rtt)
            group = build_group(topology, 48, seed=9)
            plan = (
                FaultPlan(seed=13)
                .drop(0.1)
                .delay(0.2, jitter=25.0)
                .duplicate(0.05)
            )
            session = run_multicast(
                group.server_table, group.tables, topology, fault_plan=plan
            )
            results.append(session)
        scalar_session, dense_session = results
        assert list(scalar_session.receipts) == list(dense_session.receipts)
        assert scalar_session.receipts == dense_session.receipts
        assert scalar_session.edges == dense_session.edges
        assert (
            scalar_session.duplicate_copies == dense_session.duplicate_copies
        )

    def test_indexed_metrics_match_scans_with_duplicates(self):
        topology = build_topology("gtitm", 48, seed=9)
        group = build_group(topology, 48, seed=9)
        plan = FaultPlan(seed=21).duplicate(0.3).delay(0.2, jitter=40.0)
        session = run_multicast(
            group.server_table, group.tables, topology, fault_plan=plan
        )
        assert any(session.duplicate_copies.values())
        for member in group.tables:
            assert session.user_stress(member) == session.user_stress_scan(
                member
            )
            assert session.out_edges(member) == session.out_edges_scan(member)

    def test_failed_host_sessions_identical_with_dense_cache(self):
        sessions = []
        for dense_rtt in (False, True):
            topology = build_topology("gtitm", 48, seed=9, dense_rtt=dense_rtt)
            group = build_group(topology, 48, seed=9)
            failed = {group.records[uid].host for uid in list(group.tables)[:4]}
            sessions.append(
                run_multicast(
                    group.server_table,
                    group.tables,
                    topology,
                    failed_hosts=failed,
                    use_backups=True,
                )
            )
        scalar_session, dense_session = sessions
        assert scalar_session.receipts == dense_session.receipts
        assert scalar_session.edges == dense_session.edges
