"""Stateful property-based tests on the core data structures."""

import numpy as np
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.core.id_tree import IdTree
from repro.core.ids import Id, IdScheme
from repro.core.neighbor_table import NeighborTable, UserRecord
from repro.keytree.modified_tree import ModifiedKeyTree
from repro.keytree.original_tree import OriginalKeyTree

SCHEME = IdScheme(num_digits=3, base=3)
ALL_IDS = [
    Id((a, b, c)) for a in range(3) for b in range(3) for c in range(3)
]
ids_strategy = st.sampled_from(ALL_IDS)


class NeighborTableMachine(RuleBasedStateMachine):
    """Random inserts/removals must keep every entry sorted, bounded by
    K, and placed at the Definition-3 slot."""

    def __init__(self):
        super().__init__()
        self.owner = UserRecord(Id([1, 1, 1]), 999)
        self.k = 2
        self.table = NeighborTable(SCHEME, self.owner, self.k)
        self.next_host = 0

    @rule(uid=ids_strategy, rtt=st.floats(0.1, 500.0))
    def insert(self, uid, rtt):
        self.next_host += 1
        self.table.insert(UserRecord(uid, self.next_host), rtt)

    @rule(uid=ids_strategy)
    def remove(self, uid):
        self.table.remove(uid)

    @invariant()
    def entries_sorted_bounded_and_placed(self):
        for i in range(SCHEME.num_digits):
            for j in range(SCHEME.base):
                rtts = self.table.entry_rtts(i, j)
                assert rtts == sorted(rtts)
                assert len(rtts) <= self.k
                for record in self.table.entry(i, j):
                    assert self.table.slot_for(record) == (i, j)
        # the own-digit entries stay empty
        for i in range(SCHEME.num_digits):
            assert self.table.entry(i, self.owner.user_id[i]) == []

    @invariant()
    def no_duplicate_users(self):
        ids = [r.user_id for r in self.table.all_records()]
        assert len(ids) == len(set(ids))


class ModifiedTreeMachine(RuleBasedStateMachine):
    """Random join/leave/batch sequences must keep the key tree's node
    set exactly equal to the ID tree induced by its users."""

    def __init__(self):
        super().__init__()
        self.tree = ModifiedKeyTree(SCHEME)
        self.present = set()
        self.pending_leave = set()

    @rule(uid=ids_strategy)
    def join(self, uid):
        if uid not in self.present:
            self.tree.request_join(uid)
            self.present.add(uid)

    @rule(uid=ids_strategy)
    def leave(self, uid):
        if uid in self.present and uid not in self.pending_leave:
            self.tree.request_leave(uid)
            self.pending_leave.add(uid)

    @rule()
    def batch(self):
        message = self.tree.process_batch()
        self.present -= self.pending_leave
        self.pending_leave = set()
        # every encryption's keys exist in the post-batch tree
        for enc in message.encryptions:
            assert self.tree.has_node(enc.encrypting_key_id)
            assert self.tree.has_node(enc.new_key_id)

    @invariant()
    def users_match(self):
        assert self.tree.user_ids == self.present

    @invariant()
    def nodes_match_id_tree(self):
        expected = set(IdTree(SCHEME, self.present).node_ids())
        actual = {n for n in expected if self.tree.has_node(n)}
        assert actual == expected


class OriginalTreeMachine(RuleBasedStateMachine):
    """Random churn on the WGL tree preserves its structural invariants."""

    def __init__(self):
        super().__init__()
        self.tree = OriginalKeyTree(degree=3)
        self.tree.initialize_balanced(list(range(9)))
        self.present = set(range(9))
        self.pending_leave = set()
        self.counter = 100
        self.rng = np.random.default_rng(0)

    @rule()
    def join(self):
        self.counter += 1
        self.tree.request_join(self.counter)

    @rule(data=st.data())
    def leave(self, data):
        candidates = sorted(self.present - self.pending_leave)
        if candidates:
            user = data.draw(st.sampled_from(candidates))
            self.tree.request_leave(user)
            self.pending_leave.add(user)

    @rule()
    def batch(self):
        before_pending = set(self.pending_leave)
        self.tree.process_batch(self.rng)
        self.present = set(self.tree.users)
        self.pending_leave -= before_pending
        assert self.tree.check_invariants() == []

    @invariant()
    def paths_reach_common_root(self):
        users = sorted(self.tree.users, key=str)
        if len(users) >= 2:
            roots = {self.tree.path_nodes(u)[-1] for u in users[:5]}
            assert len(roots) == 1


TestNeighborTableMachine = NeighborTableMachine.TestCase
TestNeighborTableMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestModifiedTreeMachine = ModifiedTreeMachine.TestCase
TestModifiedTreeMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestOriginalTreeMachine = OriginalTreeMachine.TestCase
TestOriginalTreeMachine.settings = settings(
    max_examples=20, stateful_step_count=25, deadline=None
)
