"""Engine-level behaviour of ``repro.lint``: suppressions, the
baseline lifecycle, and the ``tools/lint.py`` gate's exit codes.

The baseline tests pin the two ISSUE 5 satellite requirements verbatim:
a suppressed violation without justification text fails, and removing a
baselined violation's source line followed by ``--baseline-write``
shrinks the baseline.
"""

from __future__ import annotations

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import (
    Baseline,
    LintEngine,
    all_rules,
    check_source,
    select_rules,
)
from repro.lint.baseline import fingerprint
from repro.lint.engine import PARSE_RULE, SUPPRESS_RULE

pytestmark = pytest.mark.lint

REPO_ROOT = Path(__file__).parent.parent
FIXTURES = Path(__file__).parent / "lint_fixtures"
LINT_CLI = REPO_ROOT / "tools" / "lint.py"


def run_cli(*args: str, cwd: Path = REPO_ROOT) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(LINT_CLI), *map(str, args)],
        cwd=cwd,
        capture_output=True,
        text=True,
    )


# ----------------------------------------------------------------------
# suppression semantics
# ----------------------------------------------------------------------
BAD_LINE = "import time\n\n\ndef f():\n    return time.time()"


def test_justified_suppression_silences_the_finding():
    found = check_source(
        BAD_LINE
        + "  # lint: disable=determinism-wall-clock -- test scaffolding\n"
    )
    assert found == []


def test_unjustified_suppression_fails():
    """Satellite: a suppressed violation without justification text
    fails — the original finding survives AND the naked directive is
    itself a violation."""
    found = check_source(
        BAD_LINE + "  # lint: disable=determinism-wall-clock\n"
    )
    assert {violation.rule for violation in found} == {
        "determinism-wall-clock",
        SUPPRESS_RULE,
    }


def test_comment_only_directive_covers_next_line():
    found = check_source(
        "import time\n\n\ndef f():\n"
        "    # lint: disable=determinism-wall-clock -- profiling helper\n"
        "    return time.time()\n"
    )
    assert found == []


def test_directive_does_not_leak_past_next_line():
    found = check_source(
        "import time\n\n\ndef f():\n"
        "    # lint: disable=determinism-wall-clock -- only covers next line\n"
        "    a = time.time()\n"
        "    return a + time.time()\n"
    )
    assert [violation.rule for violation in found] == ["determinism-wall-clock"]
    assert found[0].line == 7


def test_suppression_is_rule_scoped():
    # Justified, but for a different rule: the wall-clock finding stays.
    found = check_source(
        BAD_LINE + "  # lint: disable=api-bare-except -- wrong rule\n"
    )
    assert [violation.rule for violation in found] == ["determinism-wall-clock"]


# ----------------------------------------------------------------------
# rule selection and parse resilience
# ----------------------------------------------------------------------
def test_select_rules_by_family_and_id():
    determinism = select_rules(["determinism"])
    assert {rule.family for rule in determinism} == {"determinism"}
    assert len(determinism) == 5
    single = select_rules(["api-bare-except"])
    assert [rule.rule_id for rule in single] == ["api-bare-except"]
    with pytest.raises(ValueError, match="unknown rule"):
        select_rules(["no-such-rule"])


def test_rule_metadata_complete():
    for rule in all_rules():
        assert rule.rule_id and rule.family and rule.description, rule
        assert rule.citation, f"{rule.rule_id} has no discipline citation"


def test_syntax_error_becomes_parse_violation(tmp_path):
    tree = tmp_path / "tree"
    (tree / "repro").mkdir(parents=True)
    (tree / "repro" / "broken.py").write_text("def f(:\n")
    result = LintEngine([tree]).run(Baseline())
    assert [violation.rule for violation in result.new] == [PARSE_RULE]
    # The broken file is reported, not counted as scanned.
    assert result.files_scanned == 0


# ----------------------------------------------------------------------
# baseline lifecycle
# ----------------------------------------------------------------------
def copy_badtree(tmp_path: Path) -> Path:
    tree = tmp_path / "badtree"
    shutil.copytree(FIXTURES / "badtree", tree)
    return tree


def test_baseline_roundtrip_absorbs_everything(tmp_path):
    tree = copy_badtree(tmp_path)
    first = LintEngine([tree]).run(Baseline())
    assert first.new
    baseline = Baseline.from_violations(first.violations)
    second = LintEngine([tree]).run(baseline)
    assert second.new == []
    assert len(second.baselined) == len(first.violations)


def test_baseline_is_line_number_insensitive(tmp_path):
    tree = copy_badtree(tmp_path)
    baseline = Baseline.from_violations(LintEngine([tree]).run(Baseline()).violations)
    # Unrelated edit above the findings: prepend a comment block.
    target = tree / "repro" / "core" / "bad_wallclock.py"
    target.write_text("# shifted\n# down\n" + target.read_text())
    result = LintEngine([tree]).run(baseline)
    assert result.new == []


def test_baseline_absorbs_only_recorded_count():
    violation = check_source(BAD_LINE)[0]
    baseline = Baseline({fingerprint(violation): 1})
    baselined, new = baseline.split([violation, violation])
    assert len(baselined) == 1 and len(new) == 1


def test_removing_fixed_line_shrinks_baseline_on_write(tmp_path):
    """Satellite: remove a baselined violation's source line, re-run
    ``--baseline-write``, and the baseline shrinks."""
    tree = copy_badtree(tmp_path)
    baseline_path = tmp_path / "baseline.json"

    wrote = run_cli(tree, "--baseline", baseline_path, "--baseline-write")
    assert wrote.returncode == 0, wrote.stdout + wrote.stderr
    before = json.loads(baseline_path.read_text())["entries"]

    gated = run_cli(tree, "--baseline", baseline_path)
    assert gated.returncode == 0, gated.stdout + gated.stderr

    # "Fix" one grandfathered finding by replacing its offending line.
    target = tree / "repro" / "core" / "bad_urandom.py"
    target.write_text(
        target.read_text().replace("os.urandom(16)", 'b"derived-not-sampled"')
    )

    rewrote = run_cli(tree, "--baseline", baseline_path, "--baseline-write")
    assert rewrote.returncode == 0, rewrote.stdout + rewrote.stderr
    after = json.loads(baseline_path.read_text())["entries"]

    assert len(after) < len(before)
    assert not any(entry["path"].endswith("bad_urandom.py") for entry in after)
    # ... and the shrunk baseline still gates the edited tree cleanly.
    regated = run_cli(tree, "--baseline", baseline_path)
    assert regated.returncode == 0, regated.stdout + regated.stderr


def test_committed_baseline_never_grows_silently(tmp_path):
    """A new finding is *new* even when the file already has baselined
    ones — the gate exits 2 instead of absorbing it."""
    tree = copy_badtree(tmp_path)
    baseline_path = tmp_path / "baseline.json"
    run_cli(tree, "--baseline", baseline_path, "--baseline-write")
    target = tree / "repro" / "core" / "bad_wallclock.py"
    target.write_text(
        target.read_text() + "\n\nFRESH_FINDING = time.time()\n"
    )
    gated = run_cli(tree, "--baseline", baseline_path)
    assert gated.returncode == 2
    assert "determinism-wall-clock" in gated.stdout


# ----------------------------------------------------------------------
# the CLI gate (acceptance criteria)
# ----------------------------------------------------------------------
def test_cli_shipped_tree_is_clean():
    """``python tools/lint.py`` exits 0 on the shipped tree against the
    committed ``.lint-baseline.json``."""
    result = run_cli()
    assert result.returncode == 0, result.stdout + result.stderr
    assert "0 new" in result.stdout


@pytest.mark.parametrize(
    "family", ["determinism", "hooks", "layering", "fork", "api", "flow"]
)
def test_cli_badtree_fails_per_family(family):
    """Exit 2 on the bad-fixture canaries, one run per rule family."""
    result = run_cli(FIXTURES / "badtree", "--no-baseline", "--rules", family)
    assert result.returncode == 2, result.stdout + result.stderr


def test_cli_goodtree_passes():
    result = run_cli(FIXTURES / "goodtree", "--no-baseline")
    assert result.returncode == 0, result.stdout + result.stderr


def test_cli_regression_tree_fails_on_wall_clock():
    result = run_cli(FIXTURES / "regression", "--no-baseline")
    assert result.returncode == 2
    assert result.stdout.count("determinism-wall-clock") == 2


def test_cli_json_output_is_structured():
    result = run_cli(FIXTURES / "badtree", "--no-baseline", "--json")
    assert result.returncode == 2
    payload = json.loads(result.stdout)
    assert f"{len(payload['new'])} new" in payload["summary"]
    rules = {violation["rule"] for violation in payload["new"]}
    assert "determinism-wall-clock" in rules


def test_cli_list_rules():
    result = run_cli("--list-rules")
    assert result.returncode == 0
    for rule in all_rules():
        assert rule.rule_id in result.stdout


def test_cli_unknown_rule_is_usage_error():
    result = run_cli("--rules", "no-such-rule")
    assert result.returncode == 1


# ----------------------------------------------------------------------
# --format=sarif and --changed (ISSUE 10 satellites)
# ----------------------------------------------------------------------
def test_cli_sarif_output_is_valid_and_gates():
    result = run_cli(FIXTURES / "badtree", "--no-baseline", "--format=sarif")
    assert result.returncode == 2  # exit codes unchanged by the format
    payload = json.loads(result.stdout)
    assert payload["version"] == "2.1.0"
    run = payload["runs"][0]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    declared = {rule["id"] for rule in driver["rules"]}
    assert {rule.rule_id for rule in all_rules()} <= declared
    fired = {res["ruleId"] for res in run["results"]}
    assert "determinism-wall-clock" in fired
    assert "flow-await-race" in fired
    location = run["results"][0]["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"].endswith(".py")
    assert location["region"]["startLine"] >= 1


def test_cli_sarif_clean_tree_has_empty_results():
    result = run_cli(FIXTURES / "goodtree", "--no-baseline", "--format=sarif")
    assert result.returncode == 0
    payload = json.loads(result.stdout)
    assert payload["runs"][0]["results"] == []


def _git(*args: str, cwd: Path) -> None:
    subprocess.run(
        ["git", "-c", "user.name=lint-test", "-c", "user.email=lint@test",
         *args],
        cwd=cwd,
        check=True,
        capture_output=True,
    )


def test_cli_changed_scopes_to_the_git_diff(tmp_path):
    """--changed lints exactly the files git reports as modified or
    untracked; clean-but-violating committed files stay out of the run."""
    repo = tmp_path / "work"
    pkg = repo / "tree" / "repro" / "core"
    pkg.mkdir(parents=True)
    violating = "import time\n\ndef f():\n    return time.time()\n"
    (pkg / "committed_bad.py").write_text(violating)
    (pkg / "touched.py").write_text("def f():\n    return 1\n")
    _git("init", "-q", cwd=repo)
    _git("add", "-A", cwd=repo)
    _git("commit", "-q", "-m", "seed", cwd=repo)

    # Nothing changed: nothing scanned, exit 0 despite committed_bad.py.
    clean = run_cli("tree", "--no-baseline", "--changed", cwd=repo)
    assert clean.returncode == 0, clean.stdout + clean.stderr
    assert "nothing to lint" in clean.stdout

    # Modify one file and drop in one untracked file, both violating.
    (pkg / "touched.py").write_text(violating)
    (pkg / "fresh.py").write_text(violating)
    gated = run_cli("tree", "--no-baseline", "--changed", cwd=repo)
    assert gated.returncode == 2, gated.stdout + gated.stderr
    assert "touched.py" in gated.stdout
    assert "fresh.py" in gated.stdout
    assert "committed_bad.py" not in gated.stdout
    assert "scanned 2 file(s)" in gated.stdout
