"""Model-based churn test: random joins, leaves, and crashes driven
against :class:`repro.core.membership.Group` and
:class:`repro.keytree.modified_tree.ModifiedKeyTree` in lockstep.

The machine mirrors the wire protocol's timing: a leave or crash is
*queued* during the interval (the departing user keeps serving — exactly
how the distributed protocol works) and takes effect at the batch rekey,
when the group applies the removal and repairs its tables.  Invariants:

* group membership and key-tree users agree at every step;
* the key tree's node set equals the ID tree induced by its users
  (Section 2.4's structural-agreement requirement);
* neighbor tables stay K-consistent (Definition 3) through any churn;
* after a batch, a departed user holds no valid key: every key on its
  old path is either pruned or re-versioned, and no rekey encryption is
  readable with the versions it held (forward secrecy).
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.id_assignment import IdAssigner
from repro.core.id_tree import IdTree
from repro.core.ids import IdScheme
from repro.core.membership import Group
from repro.core.neighbor_table import check_k_consistency
from repro.experiments.common import _default_thresholds
from repro.keytree.modified_tree import ModifiedKeyTree
from repro.net.planetlab import MatrixTopology

SCHEME = IdScheme(num_digits=3, base=3)
N_HOSTS = 16  # 15 user hosts + the key server


def small_topology(seed=0):
    rng = np.random.default_rng(seed)
    points = rng.uniform(0, 100, size=(N_HOSTS, 2))
    matrix = np.sqrt(
        ((points[:, None, :] - points[None, :, :]) ** 2).sum(axis=2)
    )
    matrix = (matrix + matrix.T) / 2
    np.fill_diagonal(matrix, 0.0)
    return MatrixTopology(matrix)


class ChurnMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.group = Group(
            SCHEME,
            small_topology(),
            server_host=N_HOSTS - 1,
            assigner=IdAssigner(SCHEME, _default_thresholds(SCHEME)),
            k=2,
            rng=np.random.default_rng(1),
        )
        self.key_tree = ModifiedKeyTree(SCHEME)
        self.free_hosts = set(range(N_HOSTS - 1))
        self.host_of = {}
        self.pending = {}  # departing uid -> "leave" | "fail"

    # ------------------------------------------------------------------
    @rule(data=st.data())
    def join(self, data):
        if not self.free_hosts:
            return
        host = data.draw(st.sampled_from(sorted(self.free_hosts)), label="host")
        uid = self.group.join(host).record.user_id
        self.key_tree.request_join(uid)
        self.host_of[uid] = host
        self.free_hosts.discard(host)

    @rule(data=st.data())
    def leave(self, data):
        self._depart(data, "leave")

    @rule(data=st.data())
    def crash(self, data):
        self._depart(data, "fail")

    def _depart(self, data, kind):
        candidates = sorted(set(self.group.records) - set(self.pending))
        if not candidates:
            return
        uid = data.draw(st.sampled_from(candidates), label=kind)
        self.key_tree.request_leave(uid)
        self.pending[uid] = kind

    @rule()
    def batch(self):
        held = {
            uid: {
                key_id: self.key_tree.node_version(key_id)
                for key_id in self.key_tree.path_key_ids(uid)
            }
            for uid in self.pending
        }
        message = self.key_tree.process_batch()
        for uid, kind in self.pending.items():
            if kind == "leave":
                self.group.leave(uid)
            else:
                self.group.fail(uid)
            self.free_hosts.add(self.host_of.pop(uid))
        self.group.repair_tables()
        # Forward secrecy: nothing a departed user held stays valid.
        for uid, held_keys in held.items():
            assert not self.key_tree.has_node(uid)
            for key_id, version in held_keys.items():
                if self.key_tree.has_node(key_id):
                    assert self.key_tree.node_version(key_id) > version
            for enc in message.encryptions:
                assert enc.encrypting_key_id != uid
                if enc.encrypting_key_id in held_keys:
                    assert enc.encrypting_version > held_keys[enc.encrypting_key_id]
        self.pending = {}

    # ------------------------------------------------------------------
    @invariant()
    def memberships_agree(self):
        assert self.key_tree.user_ids == set(self.group.records)

    @invariant()
    def key_tree_matches_id_tree(self):
        expected = set(IdTree(SCHEME, self.key_tree.user_ids).node_ids())
        assert set(self.key_tree._versions) == expected

    @invariant()
    def tables_stay_k_consistent(self):
        problems = check_k_consistency(
            self.group.tables, self.group.id_tree, self.group.k
        )
        assert problems == []


TestChurnMachine = ChurnMachine.TestCase
TestChurnMachine.settings = settings(
    max_examples=15, stateful_step_count=25, deadline=None
)
