"""Rule-level conformance for ``repro.lint`` (the ``-m lint`` lane).

Two layers of assurance:

* precision — inline snippets assert each rule fires on the pattern it
  documents and stays quiet on the sanctioned idiom next to it;
* corruption canaries — every deliberately-violating fixture under
  ``tests/lint_fixtures/badtree`` must keep producing its family's
  violation.  If a rule silently breaks (returns nothing), the canary
  fails before a real regression can slip through the gate.

The regression half of the determinism family pins the original
motivating bug: the ``time.time()`` pair that lived at
``src/repro/experiments/report.py:63`` before this PR.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import Baseline, LintEngine, check_source

pytestmark = pytest.mark.lint

FIXTURES = Path(__file__).parent / "lint_fixtures"
SRC_ROOT = Path(__file__).parent.parent / "src"


def rules_of(violations):
    return {violation.rule for violation in violations}


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
def test_wall_clock_flagged():
    found = check_source(
        "import time\n"
        "def f():\n"
        "    return time.time()\n"
    )
    assert "determinism-wall-clock" in rules_of(found)


def test_perf_counter_is_sanctioned():
    found = check_source(
        "from time import perf_counter\n"
        "import time\n"
        "def f():\n"
        "    return perf_counter() + time.perf_counter()\n"
    )
    assert not found


def test_datetime_now_flagged():
    found = check_source(
        "import datetime\n"
        "def f():\n"
        "    return datetime.datetime.now()\n"
    )
    assert "determinism-wall-clock" in rules_of(found)


def test_global_random_flagged_seeded_instance_clean():
    bad = check_source(
        "import random\n"
        "def f(xs):\n"
        "    return random.choice(xs)\n"
    )
    assert "determinism-unseeded-rng" in rules_of(bad)
    good = check_source(
        "import random\n"
        "def f(xs, seed):\n"
        "    return random.Random(seed).choice(xs)\n"
    )
    assert not good


def test_unseeded_default_rng_flagged_seeded_clean():
    bad = check_source(
        "import numpy as np\n"
        "def f():\n"
        "    return np.random.default_rng()\n"
    )
    assert "determinism-unseeded-rng" in rules_of(bad)
    good = check_source(
        "import numpy as np\n"
        "def f(seed):\n"
        "    return np.random.default_rng(seed)\n"
    )
    assert not good


def test_module_level_rng_flagged_even_when_seeded():
    bad = check_source(
        "import numpy as np\n"
        "_RNG = np.random.default_rng(42)\n"
    )
    assert "determinism-module-rng" in rules_of(bad)
    bad_class = check_source(
        "import random\n"
        "class Sim:\n"
        "    rng = random.Random(7)\n"
    )
    assert "determinism-module-rng" in rules_of(bad_class)


def test_function_level_seeded_rng_clean():
    good = check_source(
        "import numpy as np\n"
        "def f(seed):\n"
        "    return np.random.default_rng(seed).uniform()\n"
    )
    assert "determinism-module-rng" not in rules_of(good)


def test_urandom_flagged_outside_crypto_only():
    source = "import os\ndef f():\n    return os.urandom(8)\n"
    assert "determinism-urandom" in rules_of(
        check_source(source, relpath="repro/core/nonce.py")
    )
    assert not check_source(source, relpath="repro/crypto/nonce.py")


def test_set_iteration_flagged_in_protocol_package_only():
    source = "def f(xs):\n    return [x for x in set(xs)]\n"
    assert "determinism-set-order" in rules_of(
        check_source(source, relpath="repro/core/order.py")
    )
    # experiments is not a protocol package; and sorted() launders the order.
    assert not check_source(source, relpath="repro/experiments/order.py")
    assert not check_source(
        "def f(xs):\n    return [x for x in sorted(set(xs))]\n",
        relpath="repro/core/order.py",
    )


def test_membership_test_on_set_is_not_iteration():
    found = check_source(
        "def f(joins, leaves):\n"
        "    return [j for j in joins if j not in set(leaves)]\n",
        relpath="repro/distributed/nodes_like.py",
    )
    assert not found


# ----------------------------------------------------------------------
# hooks
# ----------------------------------------------------------------------
GUARDED = (
    "from repro.trace import hooks as _trace_hooks\n"
    "def f(session):\n"
    "    tctx = _trace_hooks.ACTIVE\n"
    "    if tctx is not None:\n"
    "        tctx.observe_session(session, None)\n"
)


def test_guarded_slot_idiom_clean():
    assert not check_source(GUARDED)


def test_direct_active_chain_flagged():
    found = check_source(
        "from repro.trace import hooks as _trace_hooks\n"
        "def f(session):\n"
        "    _trace_hooks.ACTIVE.observe_session(session, None)\n"
    )
    assert "hook-unguarded" in rules_of(found)


def test_unguarded_local_flagged():
    found = check_source(
        "from repro.trace import hooks as _trace_hooks\n"
        "def f(session):\n"
        "    tctx = _trace_hooks.ACTIVE\n"
        "    tctx.observe_session(session, None)\n"
    )
    assert "hook-unguarded" in rules_of(found)


def test_slot_swap_without_attribute_use_clean():
    # The _TracedTask pattern: read, swap, restore — no attribute access.
    found = check_source(
        "from repro.trace import hooks as _trace_hooks\n"
        "def f(child, inner, task):\n"
        "    previous = _trace_hooks.ACTIVE\n"
        "    _trace_hooks.ACTIVE = child\n"
        "    try:\n"
        "        return inner(task)\n"
        "    finally:\n"
        "        _trace_hooks.ACTIVE = previous\n"
    )
    assert not found


def test_eager_name_import_from_hooks_flagged():
    found = check_source(
        "from repro.trace.hooks import TraceContext\n"
    )
    assert "hook-eager-import" in rules_of(found)


def test_eager_checker_import_flagged_lazy_clean():
    eager = check_source("from repro.verify import checkers\n")
    assert "hook-eager-import" in rules_of(eager)
    lazy = check_source(
        "def f():\n"
        "    from repro.verify import checkers\n"
        "    return checkers\n"
    )
    assert "hook-eager-import" not in rules_of(lazy)


def test_plain_module_import_of_hooks_clean():
    assert not check_source("import repro.trace.hooks\n")


# ----------------------------------------------------------------------
# layering
# ----------------------------------------------------------------------
def test_core_importing_experiments_flagged():
    found = check_source("from repro.experiments.config import Scale\n")
    assert "layering-import" in rules_of(found)


def test_type_checking_import_exempt():
    found = check_source(
        "from typing import TYPE_CHECKING\n"
        "if TYPE_CHECKING:\n"
        "    from repro.experiments.config import Scale\n"
    )
    assert "layering-import" not in rules_of(found)


def test_protocol_packages_importing_service_flagged():
    """docs/SERVICE.md layering: the live service sits above every
    protocol package, so the import may never point the other way."""
    for relpath in (
        "repro/core/keys.py",
        "repro/net/scheduling.py",
        "repro/alm/reliable.py",
        "repro/distributed/nodes.py",
        "repro/sim/engine.py",
    ):
        found = check_source(
            "from repro.service import RekeyService\n", relpath=relpath
        )
        assert "layering-import" in rules_of(found), relpath


def test_service_importing_protocol_layers_is_fine():
    found = check_source(
        "from repro.net.scheduling import SchedulingBackend\n"
        "from repro.distributed.harness import DistributedGroup\n"
        "from repro.faults.plan import FaultPlan\n",
        relpath="repro/service/server.py",
    )
    assert "layering-import" not in rules_of(found)


def test_service_importing_experiments_flagged():
    """The two orchestration surfaces stay siblings: the service never
    reaches into the experiment drivers."""
    found = check_source(
        "from repro.experiments.config import Scale\n",
        relpath="repro/service/soak.py",
    )
    assert "layering-import" in rules_of(found)


def test_slot_module_import_exempt_from_layering():
    found = check_source(
        "from repro.trace import hooks as _trace_hooks\n"
        "from repro.verify import hooks as _verify_hooks\n"
    )
    assert not found


def test_experiments_importing_core_is_fine():
    found = check_source(
        "from repro.core.tmesh import run_multicast\n",
        relpath="repro/experiments/driver.py",
    )
    assert not found


# ----------------------------------------------------------------------
# fork safety
# ----------------------------------------------------------------------
def test_lambda_to_pool_map_flagged():
    found = check_source(
        "def f(runner, tasks):\n"
        "    return runner.map(lambda t: t + 1, tasks)\n",
        relpath="repro/experiments/driver.py",
    )
    assert "fork-unpicklable" in rules_of(found)


def test_nested_def_to_pool_map_flagged_module_level_clean():
    bad = check_source(
        "def f(runner, tasks, ctx):\n"
        "    def worker(t):\n"
        "        return ctx(t)\n"
        "    return runner.map(worker, tasks)\n",
        relpath="repro/experiments/driver.py",
    )
    assert "fork-unpicklable" in rules_of(bad)
    good = check_source(
        "def worker(t):\n"
        "    return t + 1\n"
        "def f(runner, tasks):\n"
        "    return runner.map(worker, tasks)\n",
        relpath="repro/experiments/driver.py",
    )
    assert not good


def test_builtin_map_with_lambda_not_flagged():
    found = check_source(
        "def f(xs):\n"
        "    return list(map(lambda x: x + 1, xs))\n",
        relpath="repro/experiments/driver.py",
    )
    assert not found


def test_fork_boundary_class_without_slots_flagged():
    source = "class Carrier:\n    def __init__(self):\n        self.x = 1\n"
    found = check_source(source, relpath="repro/experiments/parallel.py")
    assert "fork-slots" in rules_of(found)
    # Same class elsewhere: not on the boundary, no finding.
    assert not check_source(source, relpath="repro/experiments/driver.py")
    # dataclass(slots=True) and explicit __slots__ both satisfy it.
    assert not check_source(
        "from dataclasses import dataclass\n"
        "@dataclass(frozen=True, slots=True)\n"
        "class Carrier:\n"
        "    x: int\n",
        relpath="repro/experiments/parallel.py",
    )


def test_exception_classes_exempt_from_slots():
    found = check_source(
        "class CarrierError(Exception):\n"
        "    pass\n",
        relpath="repro/verify/report.py",
    )
    assert "fork-slots" not in rules_of(found)


# ----------------------------------------------------------------------
# api hygiene
# ----------------------------------------------------------------------
def test_mutable_default_flagged_none_clean():
    bad = check_source("def f(x, acc=[]):\n    return acc\n")
    assert "api-mutable-default" in rules_of(bad)
    good = check_source(
        "def f(x, acc=None):\n"
        "    acc = [] if acc is None else acc\n"
        "    return acc\n"
    )
    assert not good


def test_bare_except_flagged_typed_clean():
    bad = check_source(
        "def f(x):\n"
        "    try:\n"
        "        return x()\n"
        "    except:\n"
        "        return None\n"
    )
    assert "api-bare-except" in rules_of(bad)
    good = check_source(
        "def f(x):\n"
        "    try:\n"
        "        return x()\n"
        "    except ValueError:\n"
        "        return None\n"
    )
    assert not good


# ----------------------------------------------------------------------
# fixture-tree canaries
# ----------------------------------------------------------------------
#: file (relative to the bad tree) -> the rule it must keep triggering.
BADTREE_EXPECTED = {
    "repro/core/bad_wallclock.py": "determinism-wall-clock",
    "repro/core/bad_unseeded_rng.py": "determinism-unseeded-rng",
    "repro/core/bad_module_rng.py": "determinism-module-rng",
    "repro/core/bad_urandom.py": "determinism-urandom",
    "repro/core/bad_set_order.py": "determinism-set-order",
    "repro/core/bad_hook_eager.py": "hook-eager-import",
    "repro/core/bad_hook_unguarded.py": "hook-unguarded",
    "repro/core/bad_layering.py": "layering-import",
    "repro/distributed/bad_service_import.py": "layering-import",
    "repro/experiments/bad_fork_map.py": "fork-unpicklable",
    "repro/experiments/parallel.py": "fork-slots",
    "repro/core/bad_mutable_default.py": "api-mutable-default",
    "repro/core/bad_bare_except.py": "api-bare-except",
    "repro/core/bad_suppression.py": "lint-suppress",
    "repro/service/bad_await_race.py": "flow-await-race",
    "repro/service/bad_dropped_task.py": "flow-dropped-coroutine",
    "repro/service/bad_resource_leak.py": "flow-resource-leak",
    "repro/core/bad_seed_taint.py": "flow-seed-taint",
}


@pytest.fixture(scope="module")
def badtree_result():
    return LintEngine([FIXTURES / "badtree"]).run(Baseline())


@pytest.mark.parametrize("relpath,rule", sorted(BADTREE_EXPECTED.items()))
def test_bad_fixture_canary(badtree_result, relpath, rule):
    fired = {
        violation.rule
        for violation in badtree_result.new
        if violation.path == relpath
    }
    assert rule in fired, (
        f"corruption canary: {relpath} no longer triggers {rule} "
        f"(got {sorted(fired)})"
    )


def test_every_badtree_file_is_caught(badtree_result):
    flagged = {violation.path for violation in badtree_result.new}
    assert set(BADTREE_EXPECTED) <= flagged


def test_goodtree_is_clean():
    result = LintEngine([FIXTURES / "goodtree"]).run(Baseline())
    assert result.new == []
    # ... and the justified suppressions there are counted, not dropped.
    assert len(result.suppressed) == 2


# ----------------------------------------------------------------------
# the report.py wall-clock regression
# ----------------------------------------------------------------------
def test_pre_pr_report_timer_would_have_been_flagged():
    """A fresh lint run over the pre-PR tree flags the ``time.time()``
    pair (ISSUE 5 satellite: the first determinism-rule regression
    fixture)."""
    result = LintEngine([FIXTURES / "regression"]).run(Baseline())
    wall = [
        violation
        for violation in result.new
        if violation.rule == "determinism-wall-clock"
        and violation.path == "repro/experiments/report_pre_pr.py"
    ]
    assert len(wall) == 2
    assert {violation.source for violation in wall} == {
        "start = time.time()",
        "return result, time.time() - start",
    }


def test_shipped_report_module_is_clean():
    """The fixed ``repro.experiments.report`` no longer trips any
    determinism rule."""
    source = (SRC_ROOT / "repro/experiments/report.py").read_text()
    found = check_source(source, relpath="repro/experiments/report.py")
    assert not [v for v in found if v.discipline == "determinism"]


# ----------------------------------------------------------------------
# the aio.py drain await-race regression
# ----------------------------------------------------------------------
def test_drain_wall_start_race_would_have_been_flagged():
    """The distilled ``AsyncioScheduler.drain`` pacing pattern — the one
    real finding ``flow-await-race`` surfaced on the shipped tree
    (justify-suppressed there under the single-drain invariant) — keeps
    firing on its pre-suppression replica."""
    result = LintEngine([FIXTURES / "regression"]).run(Baseline())
    races = [
        violation
        for violation in result.new
        if violation.rule == "flow-await-race"
        and violation.path == "repro/service/aio_drain_pre_pr.py"
    ]
    assert len(races) == 1
    assert "_wall_start" in races[0].message
    assert races[0].source == (
        "target = self._wall_start + head.when * self.time_scale"
    )


def test_shipped_aio_suppression_is_justified_not_silent():
    """The in-place suppression in ``repro.service.aio`` is counted as a
    justified suppression — never a naked directive, never a finding."""
    source = (SRC_ROOT / "repro/service/aio.py").read_text()
    found = check_source(source, relpath="repro/service/aio.py")
    assert "lint-suppress" not in rules_of(found)
    assert "flow-await-race" not in rules_of(found)
