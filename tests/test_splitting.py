"""Tests for the rekey message splitting scheme: Lemma 3, Theorem 2's
predicate, and Corollary 1 (exact delivery of needed encryptions)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ids import Id, IdScheme
from repro.core.splitting import (
    next_hop_needs,
    run_split_rekey,
    run_unsplit_rekey,
    split_for_next_hop,
)
from repro.core.tmesh import rekey_session
from repro.keytree.keys import Encryption, RekeyMessage
from repro.keytree.modified_tree import ModifiedKeyTree

from .test_tmesh import build_world


def enc(digits):
    """A counting-mode encryption whose ID is the given digit string."""
    return Encryption(Id(digits), 0, Id(digits[:-1]) if digits else Id(()), 1)


class TestLemma3:
    """A user needs an encryption iff its ID is a prefix of the user's."""

    def test_prefix_means_needed(self):
        assert enc([1]).needed_by(Id([1, 2, 3]))
        assert enc([1, 2, 3]).needed_by(Id([1, 2, 3]))
        assert enc([]).needed_by(Id([1, 2, 3]))

    def test_non_prefix_not_needed(self):
        assert not enc([2]).needed_by(Id([1, 2, 3]))
        assert not enc([1, 2, 3, 0]).needed_by(Id([1, 2, 3]))

    def test_rekey_message_needed_by(self):
        message = RekeyMessage(0, (enc([1]), enc([2]), enc([1, 2])))
        needed = message.needed_by(Id([1, 2, 9]))
        assert [e.id for e in needed] == [Id([1]), Id([1, 2])]


class TestTheorem2Predicate:
    def test_encryption_above_hop_prefix(self):
        # e.ID=[1] is a prefix of w.ID[0:1]=[1,2] -> forward
        assert next_hop_needs(Id([1]), Id([1, 2, 3]), send_level=1)

    def test_encryption_below_hop_prefix(self):
        # w.ID[0:0]=[1] is a prefix of e.ID=[1,2,3] -> forward
        assert next_hop_needs(Id([1, 2, 3]), Id([1, 9, 9]), send_level=0)

    def test_disjoint_branches_not_forwarded(self):
        assert not next_hop_needs(Id([2, 0]), Id([1, 2, 3]), send_level=1)

    def test_sibling_subtree_cut_off(self):
        # hop prefix [1,2]; encryption [1,3] diverges at digit 1
        assert not next_hop_needs(Id([1, 3]), Id([1, 2, 3]), send_level=1)

    def test_split_for_next_hop_filters(self):
        pool = [enc([1]), enc([1, 2]), enc([1, 3]), enc([2])]
        kept = split_for_next_hop(pool, Id([1, 2, 0]), send_level=1)
        assert [e.id for e in kept] == [Id([1]), Id([1, 2])]

    @given(
        st.lists(st.integers(0, 3), min_size=3, max_size=3),
        st.lists(st.integers(0, 3), max_size=3),
        st.integers(0, 2),
    )
    def test_predicate_matches_subtree_semantics(self, hop, enc_digits, s):
        """Brute-force check of Theorem 2: the predicate holds iff some
        *possible* user ID under the hop's level-(s+1) subtree needs the
        encryption per Lemma 3."""
        scheme = IdScheme(3, 4)
        hop_id, enc_id = Id(hop), Id(enc_digits)
        prefix = hop_id.prefix(s + 1)
        # enumerate all user IDs in the subtree
        needed_somewhere = False
        digits_left = scheme.num_digits - len(prefix)
        for suffix in np.ndindex(*([scheme.base] * digits_left)):
            uid = Id(prefix.digits + tuple(int(x) for x in suffix))
            if enc_id.is_prefix_of(uid):
                needed_somewhere = True
                break
        assert next_hop_needs(enc_id, hop_id, s) == needed_somewhere


def _random_world(seed, n=30):
    scheme = IdScheme(3, 4)
    rng = np.random.default_rng(seed)
    ids = [
        Id(t)
        for t in sorted(
            {tuple(int(rng.integers(0, 4)) for _ in range(3)) for _ in range(n)}
        )
    ]
    topology, _, tables, server_table = build_world(scheme, ids, seed=seed)
    tree = ModifiedKeyTree(scheme)
    for uid in ids:
        tree.request_join(uid)
    tree.process_batch()
    # churn a little so the message is not the trivial initial one
    leavers = ids[:: max(1, len(ids) // 4)][:3]
    for uid in leavers:
        tree.request_leave(uid)
    message = tree.process_batch()
    remaining = [u for u in ids if u not in leavers]
    # drop departed users from tables for the post-churn session
    for uid in leavers:
        tables.pop(uid)
        for table in tables.values():
            table.remove(uid)
        server_table.remove(uid)
    # refill holes so the tables are 1-consistent again
    from repro.core.neighbor_table import build_consistent_tables, build_server_table
    from repro.core.neighbor_table import UserRecord

    records = [UserRecord(u, h) for h, u in enumerate(ids) if u in set(remaining)]
    tables = build_consistent_tables(scheme, records, topology.rtt, k=1)
    server_table = build_server_table(
        scheme, topology.num_hosts - 1, records, topology.rtt, k=1
    )
    return topology, remaining, tables, server_table, message


class TestCorollary1:
    """With splitting, u receives encryption e exactly once iff e is
    needed by u or by a downstream user of u."""

    @given(st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_received_set_equals_needed_union(self, seed):
        topology, ids, tables, server_table, message = _random_world(seed)
        session = rekey_session(server_table, tables, topology)
        split = run_split_rekey(session, message, track_sets=True)
        for uid in ids:
            got = split.received_sets.get(uid, set())
            want = set(message.needed_by(uid))
            for down in session.downstream_users(uid):
                want |= set(message.needed_by(down))
            assert got == want, f"user {uid}"

    @given(st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_every_user_can_extract_its_needed_encryptions(self, seed):
        topology, ids, tables, server_table, message = _random_world(seed)
        session = rekey_session(server_table, tables, topology)
        split = run_split_rekey(session, message, track_sets=True)
        for uid in ids:
            needed = set(message.needed_by(uid))
            assert needed <= split.received_sets.get(uid, set())


class TestAccounting:
    def test_forwarded_equals_sum_of_edge_loads(self):
        topology, ids, tables, server_table, message = _random_world(7)
        session = rekey_session(server_table, tables, topology)
        split = run_split_rekey(session, message)
        by_src = {}
        for edge, load in split.edge_loads:
            by_src[edge.src] = by_src.get(edge.src, 0) + load
        for member, forwarded in split.forwarded.items():
            assert forwarded == by_src.get(member, 0)

    def test_split_never_exceeds_full_message(self):
        topology, ids, tables, server_table, message = _random_world(11)
        session = rekey_session(server_table, tables, topology)
        split = run_split_rekey(session, message)
        for count in split.received.values():
            assert count <= message.rekey_cost

    def test_unsplit_gives_everyone_full_message(self):
        topology, ids, tables, server_table, message = _random_world(13)
        session = rekey_session(server_table, tables, topology)
        acct = run_unsplit_rekey(session, message.rekey_cost)
        assert set(acct.received) == set(session.receipts)
        assert all(v == message.rekey_cost for v in acct.received.values())
        # forwarded = out-degree * message size
        for member in session.receipts:
            assert acct.forwarded[member] == (
                session.user_stress(member) * message.rekey_cost
            )

    def test_split_total_bandwidth_below_unsplit(self):
        topology, ids, tables, server_table, message = _random_world(17)
        session = rekey_session(server_table, tables, topology)
        split = run_split_rekey(session, message)
        unsplit = run_unsplit_rekey(session, message.rekey_cost)
        assert sum(split.received.values()) <= sum(unsplit.received.values())
        assert sum(split.forwarded.values()) <= sum(unsplit.forwarded.values())
