"""Off-the-shelf toolchain conformance: ruff and mypy over the tree.

The project's own pass (``repro.lint``) enforces the domain rules; ruff
and mypy cover the generic ones.  Their configuration lives in
pyproject.toml so any environment that has them runs the same checks —
but neither is a baked-in dependency of the reproduction image, so these
tests skip (rather than fail) where the binaries are absent.
"""

from __future__ import annotations

import json
import shutil
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

pytestmark = pytest.mark.lint

REPO_ROOT = Path(__file__).parent.parent


def run_tool(*argv: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        argv, cwd=REPO_ROOT, capture_output=True, text=True
    )


@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_clean():
    result = run_tool("ruff", "check", "src", "tools")
    assert result.returncode == 0, result.stdout + result.stderr


@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_mypy_strict_on_lint_package():
    # The lint package is the strict-typed exemplar (see pyproject
    # [tool.mypy] overrides); the rest of the tree is typed best-effort.
    result = run_tool("mypy", "src/repro/lint")
    assert result.returncode == 0, result.stdout + result.stderr


# ----------------------------------------------------------------------
# The project's own gate: an empty baseline is a regression test.  The
# last grandfathered findings (the pre-seam sim imports in alm) were
# fixed by the scheduling-seam refactor, and the baseline must never
# regrow — a new finding is a new finding, not debt.  These two also run
# in the tier-1 conformance lane so every push exercises them.
# ----------------------------------------------------------------------
@pytest.mark.conformance
def test_lint_baseline_is_empty():
    baseline = json.loads((REPO_ROOT / ".lint-baseline.json").read_text())
    assert baseline["entries"] == [], (
        "the lint baseline regrew — fix the finding instead of baselining it"
    )


@pytest.mark.conformance
def test_lint_gate_is_clean():
    result = run_tool(sys.executable, "tools/lint.py")
    assert result.returncode == 0, result.stdout + result.stderr


@pytest.mark.conformance
def test_layering_regression_exits_two(tmp_path):
    """If a protocol layer ever imports the simulator again, the gate
    must exit 2 (new finding), not quietly baseline it."""
    pkg = tmp_path / "repro"
    (pkg / "alm").mkdir(parents=True)
    (pkg / "__init__.py").write_text("")
    (pkg / "alm" / "__init__.py").write_text("")
    (pkg / "alm" / "bad.py").write_text(
        textwrap.dedent(
            """
            from repro.sim.engine import Simulator

            def clock():
                return Simulator().now
            """
        )
    )
    result = run_tool(
        sys.executable,
        "tools/lint.py",
        str(tmp_path),
        "--no-baseline",
        "--rules",
        "layering",
    )
    assert result.returncode == 2, result.stdout + result.stderr
    assert "layering-import" in result.stdout
