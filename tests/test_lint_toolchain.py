"""Off-the-shelf toolchain conformance: ruff and mypy over the tree.

The project's own pass (``repro.lint``) enforces the domain rules; ruff
and mypy cover the generic ones.  Their configuration lives in
pyproject.toml so any environment that has them runs the same checks —
but neither is a baked-in dependency of the reproduction image, so these
tests skip (rather than fail) where the binaries are absent.
"""

from __future__ import annotations

import shutil
import subprocess
from pathlib import Path

import pytest

pytestmark = pytest.mark.lint

REPO_ROOT = Path(__file__).parent.parent


def run_tool(*argv: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        argv, cwd=REPO_ROOT, capture_output=True, text=True
    )


@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_clean():
    result = run_tool("ruff", "check", "src", "tools")
    assert result.returncode == 0, result.stdout + result.stderr


@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_mypy_strict_on_lint_package():
    # The lint package is the strict-typed exemplar (see pyproject
    # [tool.mypy] overrides); the rest of the tree is typed best-effort.
    result = run_tool("mypy", "src/repro/lint")
    assert result.returncode == 0, result.stdout + result.stderr
