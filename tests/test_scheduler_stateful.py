"""Stateful property test: both schedulers vs. a brute-force reference.

A hypothesis :class:`RuleBasedStateMachine` drives three schedulers in
lock-step — the discrete event :class:`~repro.sim.engine.Simulator`, the
standalone :class:`~repro.net.eventloop.EventLoop`, and a deliberately
naive reference model that keeps a flat list and fires the minimum
``(time, seq)`` non-cancelled entry by linear scan.  Every interleaving
of schedule / cancel / step / run(until) / run() the machine explores
must leave all three with the identical firing log and clock.

The reference model is the specification: ~40 lines with no heap, no
tombstones, no cleverness — if either production scheduler ever
disagrees with it, the optimized implementation is wrong.
"""

from __future__ import annotations

import pytest
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.net.eventloop import EventLoop
from repro.sim.engine import Simulator

pytestmark = pytest.mark.conformance


class _RefHandle:
    """Cancellation handle into the reference model's entry list."""

    def __init__(self, entry):
        self._entry = entry

    def cancel(self):
        self._entry[3] = True


class ReferenceScheduler:
    """Executable specification: a flat list scanned for the minimum
    ``(time, seq)`` live entry.  O(n) per event and proud of it."""

    def __init__(self):
        self.now = 0.0
        self._seq = 0
        self._entries = []  # [time, seq, action, cancelled]

    def schedule(self, delay, action):
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        entry = [self.now + delay, self._seq, action, False]
        self._seq += 1
        self._entries.append(entry)
        return _RefHandle(entry)

    def _earliest(self):
        live = [e for e in self._entries if not e[3]]
        return min(live, key=lambda e: (e[0], e[1])) if live else None

    def step(self):
        entry = self._earliest()
        if entry is None:
            return False
        entry[3] = True
        self.now = entry[0]
        entry[2]()
        return True

    def run(self, until=None, max_events=None):
        executed = 0
        while max_events is None or executed < max_events:
            entry = self._earliest()
            if entry is None or (until is not None and entry[0] > until):
                break
            entry[3] = True
            self.now = entry[0]
            entry[2]()
            executed += 1
        if until is not None:
            self.now = max(self.now, until)
        return executed

    @property
    def pending(self):
        return sum(1 for e in self._entries if not e[3])


#: Delays drawn from a small grid of exact binary floats, so ties (the
#: interesting case) are common and float arithmetic is bit-identical
#: across all three implementations.
DELAYS = st.sampled_from([0.0, 0.25, 0.5, 1.0, 1.0, 2.5, 4.0, 8.0, 16.0])


class SchedulerEquivalence(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.scheds = {
            "reference": ReferenceScheduler(),
            "simulator": Simulator(),
            "eventloop": EventLoop(),
        }
        self.logs = {name: [] for name in self.scheds}
        self.handles = {name: [] for name in self.scheds}
        self.label = 0

    def _record(self, name, label):
        sched = self.scheds[name]
        return lambda: self.logs[name].append((label, sched.now))

    @rule(delay=DELAYS)
    def schedule(self, delay):
        label = self.label
        self.label += 1
        for name, sched in self.scheds.items():
            self.handles[name].append(
                sched.schedule(delay, self._record(name, label))
            )

    @rule(delay=DELAYS, chain=DELAYS)
    def schedule_chain(self, delay, chain):
        """A callback that schedules another callback when it fires —
        the heartbeat/NACK shape the reliable transport leans on."""
        label = self.label
        self.label += 1
        for name, sched in self.scheds.items():

            def outer(name=name, sched=sched, label=label):
                self.logs[name].append((label, sched.now))
                sched.schedule(chain, self._record(name, -label - 1))

            self.handles[name].append(sched.schedule(delay, outer))

    @rule(index=st.integers(min_value=0, max_value=10_000))
    def cancel(self, index):
        if not self.handles["reference"]:
            return
        slot = index % len(self.handles["reference"])
        for name in self.scheds:
            self.handles[name][slot].cancel()

    @rule()
    def step(self):
        results = {name: sched.step() for name, sched in self.scheds.items()}
        assert len(set(results.values())) == 1

    @rule(horizon=DELAYS)
    def run_until(self, horizon):
        until = self.scheds["reference"].now + horizon
        counts = {
            name: sched.run(until=until) for name, sched in self.scheds.items()
        }
        assert len(set(counts.values())) == 1

    @rule(cap=st.integers(min_value=1, max_value=5))
    def run_capped(self, cap):
        counts = {
            name: sched.run(max_events=cap)
            for name, sched in self.scheds.items()
        }
        assert len(set(counts.values())) == 1

    @rule()
    def run_all(self):
        counts = {name: sched.run() for name, sched in self.scheds.items()}
        assert len(set(counts.values())) == 1

    @invariant()
    def same_history_and_clock(self):
        reference = self.scheds["reference"]
        for name in ("simulator", "eventloop"):
            assert self.logs[name] == self.logs["reference"], name
            assert self.scheds[name].now == reference.now, name
            assert self.scheds[name].pending == reference.pending, name


TestSchedulerEquivalence = SchedulerEquivalence.TestCase
