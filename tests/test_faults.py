"""Tests for the fault-injection subsystem (:mod:`repro.faults`)."""

import math

import numpy as np
import pytest

from repro.faults import CrashWindow, FaultPlan, FaultStats
from repro.net.planetlab import MatrixTopology
from repro.sim import Network, Node, Simulator


def drain(plan, sends, now=0.0):
    """Feed a fixed send sequence through a plan; return the decisions."""
    return [plan.apply(src, dst, payload, now) for src, dst, payload in sends]


SENDS = [(i % 5, (i + 1) % 5, f"m{i}") for i in range(60)]


class TestFaultPlanDecisions:
    def test_no_rules_is_transparent(self):
        plan = FaultPlan(seed=1)
        assert drain(plan, SENDS) == [[0.0]] * len(SENDS)
        assert plan.stats.messages_seen == len(SENDS)
        assert plan.stats.total_injected() == 0

    def test_drop_rate_extremes(self):
        always = FaultPlan(seed=1).drop(1.0)
        assert drain(always, SENDS) == [[]] * len(SENDS)
        assert always.stats.drops == len(SENDS)
        never = FaultPlan(seed=1).drop(0.0)
        assert drain(never, SENDS) == [[0.0]] * len(SENDS)
        assert never.stats.drops == 0

    def test_same_seed_same_decisions(self):
        a = FaultPlan(seed=7).drop(0.3).delay(0.2, jitter=40.0).duplicate(0.1)
        b = FaultPlan(seed=7).drop(0.3).delay(0.2, jitter=40.0).duplicate(0.1)
        assert drain(a, SENDS) == drain(b, SENDS)
        assert a.stats == b.stats
        assert a.stats.total_injected() > 0  # the plan actually did things

    def test_reset_replays_identically(self):
        plan = FaultPlan(seed=3).drop(0.25).delay(0.25, jitter=10.0)
        first = drain(plan, SENDS)
        first_stats = plan.stats
        plan.reset()
        assert plan.stats == FaultStats()
        assert drain(plan, SENDS) == first
        assert plan.stats == first_stats

    def test_time_window_scoping(self):
        plan = FaultPlan(seed=0).drop(1.0, start=10.0, end=20.0)
        assert plan.apply(0, 1, None, 5.0) == [0.0]
        assert plan.apply(0, 1, None, 10.0) == []  # start inclusive
        assert plan.apply(0, 1, None, 19.9) == []
        assert plan.apply(0, 1, None, 20.0) == [0.0]  # end exclusive

    def test_src_dst_scoping(self):
        plan = FaultPlan(seed=0).drop(1.0, src=3).drop(1.0, dst=8)
        assert plan.apply(3, 1, None, 0.0) == []
        assert plan.apply(1, 8, None, 0.0) == []
        assert plan.apply(1, 2, None, 0.0) == [0.0]

    def test_match_predicate_scoping(self):
        plan = FaultPlan(seed=0).drop(
            1.0, match=lambda s, d, p: isinstance(p, str) and p.startswith("x")
        )
        assert plan.apply(0, 1, "xyz", 0.0) == []
        assert plan.apply(0, 1, "abc", 0.0) == [0.0]
        assert plan.apply(0, 1, 42, 0.0) == [0.0]

    def test_delay_adds_bounded_jitter(self):
        plan = FaultPlan(seed=5).delay(1.0, jitter=40.0)
        for decision in drain(plan, SENDS):
            assert len(decision) == 1
            assert 0.0 <= decision[0] <= 40.0
        assert plan.stats.delays == len(SENDS)

    def test_duplicate_copies(self):
        plan = FaultPlan(seed=5).duplicate(1.0, copies=2)
        for decision in drain(plan, SENDS):
            assert decision == [0.0, 0.0, 0.0]  # original + 2 extras
        assert plan.stats.duplicates == 2 * len(SENDS)

    def test_reorder_holds_messages_back(self):
        plan = FaultPlan(seed=5).reorder(1.0, spread=25.0)
        for decision in drain(plan, SENDS):
            assert len(decision) == 1
            assert 0.0 <= decision[0] <= 25.0
        assert plan.stats.reorders == len(SENDS)

    def test_rules_compose(self):
        # delay + duplicate on the same message: every copy carries the jitter
        plan = FaultPlan(seed=5).delay(1.0, jitter=30.0).duplicate(1.0)
        decision = plan.apply(0, 1, None, 0.0)
        assert len(decision) == 2
        assert decision[0] == decision[1]

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            FaultPlan().drop(1.5)
        with pytest.raises(ValueError):
            FaultPlan().drop(-0.1)
        with pytest.raises(ValueError):
            FaultPlan().delay(0.5, jitter=-1.0)
        with pytest.raises(ValueError):
            FaultPlan().reorder(0.5, spread=-1.0)
        with pytest.raises(ValueError):
            FaultPlan().duplicate(0.5, copies=0)
        with pytest.raises(ValueError):
            FaultPlan().crash(host=1, at=10.0, until=10.0)


class TestCrashWindows:
    def test_window_is_half_open(self):
        window = CrashWindow(host=3, at=10.0, until=20.0)
        assert not window.covers(9.9)
        assert window.covers(10.0)
        assert window.covers(19.9)
        assert not window.covers(20.0)

    def test_is_down_only_inside_window(self):
        plan = FaultPlan().crash(host=3, at=10.0, until=20.0)
        assert not plan.is_down(3, 5.0)
        assert plan.is_down(3, 15.0)
        assert not plan.is_down(3, 25.0)
        assert not plan.is_down(4, 15.0)

    def test_crash_without_until_never_recovers(self):
        plan = FaultPlan().crash(host=3, at=10.0)
        assert plan.is_down(3, 1e9)

    def test_down_sender_loses_messages(self):
        plan = FaultPlan().crash(host=3, at=0.0, until=100.0)
        assert plan.apply(3, 1, None, 50.0) == []
        assert plan.stats.crash_drops == 1
        assert plan.apply(3, 1, None, 150.0) == [0.0]  # recovered


# ----------------------------------------------------------------------
# Through the live network
# ----------------------------------------------------------------------
class Collector(Node):
    def __init__(self, network, host):
        super().__init__(network, host)
        self.inbox = []

    def on_message(self, src, payload):
        self.inbox.append((src, payload, self.network.simulator.now))


def two_hosts(plan=None):
    sim = Simulator()
    net = Network(sim, MatrixTopology(np.array([[0.0, 10.0], [10.0, 0.0]])))
    net.install_faults(plan)
    return sim, net, Collector(net, 0), Collector(net, 1)


class TestNetworkIntegration:
    def test_drops_count_against_network_stats(self):
        plan = FaultPlan(seed=1).drop(1.0)
        sim, net, a, b = two_hosts(plan)
        for i in range(5):
            a.send(1, i)
        sim.run()
        assert b.inbox == []
        assert net.stats.dropped == 5
        assert plan.stats.drops == 5

    def test_duplicates_deliver_extra_copies(self):
        plan = FaultPlan(seed=1).duplicate(1.0)
        sim, net, a, b = two_hosts(plan)
        a.send(1, "hello")
        sim.run()
        assert [p for _, p, _ in b.inbox] == ["hello", "hello"]
        assert net.stats.delivered == 2

    def test_reordering_lets_later_sends_overtake(self):
        # Only "slow" is held back, so "fast" (sent later) arrives first.
        plan = FaultPlan(seed=1).reorder(
            1.0, spread=50.0, match=lambda s, d, p: p == "slow"
        )
        sim, net, a, b = two_hosts(plan)
        a.send(1, "slow")
        a.send(1, "fast")
        sim.run()
        assert [p for _, p, _ in b.inbox] == ["fast", "slow"]

    def test_receiver_down_at_delivery_time(self):
        # The one-way delay is 5; host 1 crashes at t=2 and recovers at
        # t=100.  A message sent at t=0 is in flight at the crash and is
        # lost on arrival; one sent after recovery gets through.
        plan = FaultPlan().crash(host=1, at=2.0, until=100.0)
        sim, net, a, b = two_hosts(plan)
        a.send(1, "in-flight")
        sim.run()
        assert b.inbox == []
        assert plan.stats.crash_drops == 1
        assert net.stats.dropped == 1
        sim.schedule_at(200.0, lambda: a.send(1, "after"))
        sim.run()
        assert [p for _, p, _ in b.inbox] == ["after"]

    def test_down_sender_cannot_send(self):
        plan = FaultPlan().crash(host=0, at=0.0, until=50.0)
        sim, net, a, b = two_hosts(plan)
        a.send(1, "lost")
        sim.schedule_at(60.0, lambda: a.send(1, "ok"))
        sim.run()
        assert [p for _, p, _ in b.inbox] == ["ok"]

    def test_install_faults_none_removes_plan(self):
        plan = FaultPlan(seed=1).drop(1.0)
        sim, net, a, b = two_hosts(plan)
        net.install_faults(None)
        a.send(1, "through")
        sim.run()
        assert [p for _, p, _ in b.inbox] == ["through"]
