"""Tests for the metrics layer: stats helpers, latency and bandwidth
accounting, and the file exporters' edge cases (empty row sets, missing
parent directories, non-ASCII values)."""

import csv

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics.export import (
    write_prometheus,
    write_repair_report,
    write_table,
    write_trace_jsonl,
    write_violation_reports,
)
from repro.metrics.stats import inverse_cdf, ranked_across_runs, summarize


class TestInverseCdf:
    def test_basic(self):
        cdf = inverse_cdf([3.0, 1.0, 2.0])
        assert list(cdf.values) == [1.0, 2.0, 3.0]
        assert list(cdf.fractions) == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_value_at_fraction(self):
        cdf = inverse_cdf(range(1, 11))
        assert cdf.value_at_fraction(0.5) == 5
        assert cdf.value_at_fraction(1.0) == 10
        assert cdf.value_at_fraction(0.05) == 1

    def test_fraction_below(self):
        cdf = inverse_cdf([1, 2, 3, 4])
        assert cdf.fraction_below(2) == 0.5
        assert cdf.fraction_below(0) == 0.0
        assert cdf.fraction_below(99) == 1.0

    def test_empty(self):
        cdf = inverse_cdf([])
        assert len(cdf.values) == 0

    def test_fraction_bounds(self):
        cdf = inverse_cdf([1.0])
        with pytest.raises(ValueError):
            cdf.value_at_fraction(0.0)
        with pytest.raises(ValueError):
            cdf.value_at_fraction(1.5)

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=50))
    @settings(max_examples=30)
    def test_monotone(self, values):
        cdf = inverse_cdf(values)
        assert all(np.diff(cdf.values) >= 0)
        assert all(np.diff(cdf.fractions) > 0)


class TestRankedRuns:
    def test_per_rank_mean(self):
        runs = [[1.0, 3.0], [3.0, 5.0]]
        ranked = ranked_across_runs(runs)
        assert list(ranked.mean) == [2.0, 4.0]
        assert list(ranked.fractions) == [0.5, 1.0]

    def test_runs_sorted_before_ranking(self):
        # ranks are by sorted order within each run, not input order
        ranked = ranked_across_runs([[5.0, 1.0]])
        assert list(ranked.mean) == [1.0, 5.0]

    def test_p95_bounds_mean(self):
        rng = np.random.default_rng(0)
        runs = [list(rng.uniform(0, 10, size=20)) for _ in range(10)]
        ranked = ranked_across_runs(runs)
        assert all(ranked.p95 >= ranked.mean - 1e-9)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            ranked_across_runs([[1.0], [1.0, 2.0]])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ranked_across_runs([])


class TestSummarize:
    def test_fields(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s["count"] == 4
        assert s["min"] == 1.0
        assert s["max"] == 4.0
        assert s["median"] == 2.5

    def test_empty(self):
        assert summarize([]) == {"count": 0}


class TestLatencyAccounting:
    def test_tmesh_latency_covers_all_receivers(self, gtitm, gtitm_group):
        from repro.core.tmesh import rekey_session
        from repro.metrics.latency import tmesh_latency

        session = rekey_session(gtitm_group.server_table, gtitm_group.tables, gtitm)
        sample = tmesh_latency(session, gtitm)
        n = len(session.receipts)
        assert len(sample.stress) == len(sample.app_delay) == len(sample.rdp) == n
        assert (sample.app_delay > 0).all()
        assert (sample.rdp >= 1.0 - 1e-9).all()

    def test_total_stress_equals_edges_minus_server(self, gtitm, gtitm_group):
        from repro.core.ids import NULL_ID
        from repro.core.tmesh import rekey_session
        from repro.metrics.latency import tmesh_latency

        session = rekey_session(gtitm_group.server_table, gtitm_group.tables, gtitm)
        sample = tmesh_latency(session, gtitm)
        server_edges = sum(1 for e in session.edges if e.src == NULL_ID)
        assert sample.stress.sum() == len(session.edges) - server_edges


class TestBandwidthAccounting:
    def test_alm_split_conserves_needs(self, planetlab):
        """Every host's received set must cover what it needs."""
        from repro.alm.nice import NiceHierarchy, nice_multicast
        from repro.metrics.bandwidth import alm_split_bandwidth

        h = NiceHierarchy(planetlab)
        for host in range(20):
            h.join(host)
        session = nice_multicast(h, planetlab, server_host=48)
        needed = {host: {host % 7, 7 + host % 3} for host in range(20)}
        sample = alm_split_bandwidth(session, needed, total_encryptions=10)
        hosts = sorted(session.arrival)
        for i, host in enumerate(hosts):
            assert sample.received[i] >= len(needed[host])

    def test_alm_unsplit_uniform(self, planetlab):
        from repro.alm.nice import NiceHierarchy, nice_multicast
        from repro.metrics.bandwidth import alm_unsplit_bandwidth

        h = NiceHierarchy(planetlab)
        for host in range(15):
            h.join(host)
        session = nice_multicast(h, planetlab, server_host=48)
        sample = alm_unsplit_bandwidth(session, message_size=50)
        assert (sample.received == 50).all()
        assert sample.forwarded.sum() == 50 * len(session.edges) - 50  # server edge


class TestExportEdgeCases:
    """The writers must survive what real sweeps hand them: zero rows,
    export paths in directories that do not exist yet, and values beyond
    ASCII."""

    def test_write_table_empty_rows(self, tmp_path):
        path = tmp_path / "empty.csv"
        write_table(str(path), ["a", "b"], [])
        with open(path, newline="", encoding="utf-8") as handle:
            assert list(csv.reader(handle)) == [["a", "b"]]

    def test_write_repair_report_empty_rows(self, tmp_path):
        """A zero-row sweep is a valid result, not an error."""
        path = tmp_path / "repairs.csv"
        write_repair_report(str(path), [])
        assert path.read_text(encoding="utf-8") == ""

    def test_write_repair_report_empty_rows_with_header(self, tmp_path):
        path = tmp_path / "repairs.csv"
        write_repair_report(
            str(path), [], header=["loss", "delivery_ratio"]
        )
        with open(path, newline="", encoding="utf-8") as handle:
            assert list(csv.reader(handle)) == [["loss", "delivery_ratio"]]

    def test_write_violation_reports_empty(self, tmp_path):
        path = tmp_path / "violations.csv"
        write_violation_reports(str(path), [])
        with open(path, newline="", encoding="utf-8") as handle:
            rows = list(csv.reader(handle))
        assert len(rows) == 1  # header only
        assert rows[0][0] == "checker"

    def test_writers_create_missing_parent_dirs(self, tmp_path):
        nested = tmp_path / "out" / "run3" / "table.csv"
        write_table(str(nested), ["x"], [[1]])
        assert nested.exists()
        deeper = tmp_path / "a" / "b" / "repairs.csv"
        write_repair_report(str(deeper), [{"loss": 0.1}])
        assert deeper.exists()

    def test_non_ascii_values_round_trip(self, tmp_path):
        path = tmp_path / "unicode.csv"
        write_table(str(path), ["member", "détail"], [["nœud-3", "héhé ✓"]])
        with open(path, newline="", encoding="utf-8") as handle:
            rows = list(csv.reader(handle))
        assert rows == [["member", "détail"], ["nœud-3", "héhé ✓"]]

    def test_violation_report_non_ascii_detail(self, tmp_path):
        from repro.verify.report import ViolationReport

        path = tmp_path / "reports" / "v.csv"
        write_violation_reports(
            str(path),
            [
                ViolationReport(
                    checker="exactly-once",
                    citation="Théorème 1",
                    detail="membre [0,1,2] reçu 2 copies — défaillance",
                    offending_ids=("[0,1,2]",),
                    seed=7,
                )
            ],
        )
        with open(path, newline="", encoding="utf-8") as handle:
            rows = list(csv.reader(handle))
        assert rows[1][1] == "Théorème 1"
        assert "défaillance" in rows[1][2]

    def test_write_trace_jsonl_and_prometheus(self, tmp_path):
        from repro.trace import TraceContext

        context = TraceContext(seed=3, label="unité-✓")
        with context.span("outer", who="nœud"):
            context.count("events", 2)
        trace_path = tmp_path / "traces" / "t.jsonl"
        write_trace_jsonl(str(trace_path), context)
        text = trace_path.read_text(encoding="utf-8")
        assert text == context.render()
        assert text.endswith("\n")

        prom_path = tmp_path / "prom" / "metrics.prom"
        write_prometheus(str(prom_path), context.registry)
        assert "events 2" in prom_path.read_text(encoding="utf-8")

    def test_repair_report_inconsistent_columns_still_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        with pytest.raises(ValueError):
            write_repair_report(
                str(path), [{"loss": 0.1}, {"delivery": 1.0}]
            )
