"""Tests for the metrics layer: stats helpers, latency and bandwidth
accounting."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics.stats import inverse_cdf, ranked_across_runs, summarize


class TestInverseCdf:
    def test_basic(self):
        cdf = inverse_cdf([3.0, 1.0, 2.0])
        assert list(cdf.values) == [1.0, 2.0, 3.0]
        assert list(cdf.fractions) == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_value_at_fraction(self):
        cdf = inverse_cdf(range(1, 11))
        assert cdf.value_at_fraction(0.5) == 5
        assert cdf.value_at_fraction(1.0) == 10
        assert cdf.value_at_fraction(0.05) == 1

    def test_fraction_below(self):
        cdf = inverse_cdf([1, 2, 3, 4])
        assert cdf.fraction_below(2) == 0.5
        assert cdf.fraction_below(0) == 0.0
        assert cdf.fraction_below(99) == 1.0

    def test_empty(self):
        cdf = inverse_cdf([])
        assert len(cdf.values) == 0

    def test_fraction_bounds(self):
        cdf = inverse_cdf([1.0])
        with pytest.raises(ValueError):
            cdf.value_at_fraction(0.0)
        with pytest.raises(ValueError):
            cdf.value_at_fraction(1.5)

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=50))
    @settings(max_examples=30)
    def test_monotone(self, values):
        cdf = inverse_cdf(values)
        assert all(np.diff(cdf.values) >= 0)
        assert all(np.diff(cdf.fractions) > 0)


class TestRankedRuns:
    def test_per_rank_mean(self):
        runs = [[1.0, 3.0], [3.0, 5.0]]
        ranked = ranked_across_runs(runs)
        assert list(ranked.mean) == [2.0, 4.0]
        assert list(ranked.fractions) == [0.5, 1.0]

    def test_runs_sorted_before_ranking(self):
        # ranks are by sorted order within each run, not input order
        ranked = ranked_across_runs([[5.0, 1.0]])
        assert list(ranked.mean) == [1.0, 5.0]

    def test_p95_bounds_mean(self):
        rng = np.random.default_rng(0)
        runs = [list(rng.uniform(0, 10, size=20)) for _ in range(10)]
        ranked = ranked_across_runs(runs)
        assert all(ranked.p95 >= ranked.mean - 1e-9)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            ranked_across_runs([[1.0], [1.0, 2.0]])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ranked_across_runs([])


class TestSummarize:
    def test_fields(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s["count"] == 4
        assert s["min"] == 1.0
        assert s["max"] == 4.0
        assert s["median"] == 2.5

    def test_empty(self):
        assert summarize([]) == {"count": 0}


class TestLatencyAccounting:
    def test_tmesh_latency_covers_all_receivers(self, gtitm, gtitm_group):
        from repro.core.tmesh import rekey_session
        from repro.metrics.latency import tmesh_latency

        session = rekey_session(gtitm_group.server_table, gtitm_group.tables, gtitm)
        sample = tmesh_latency(session, gtitm)
        n = len(session.receipts)
        assert len(sample.stress) == len(sample.app_delay) == len(sample.rdp) == n
        assert (sample.app_delay > 0).all()
        assert (sample.rdp >= 1.0 - 1e-9).all()

    def test_total_stress_equals_edges_minus_server(self, gtitm, gtitm_group):
        from repro.core.ids import NULL_ID
        from repro.core.tmesh import rekey_session
        from repro.metrics.latency import tmesh_latency

        session = rekey_session(gtitm_group.server_table, gtitm_group.tables, gtitm)
        sample = tmesh_latency(session, gtitm)
        server_edges = sum(1 for e in session.edges if e.src == NULL_ID)
        assert sample.stress.sum() == len(session.edges) - server_edges


class TestBandwidthAccounting:
    def test_alm_split_conserves_needs(self, planetlab):
        """Every host's received set must cover what it needs."""
        from repro.alm.nice import NiceHierarchy, nice_multicast
        from repro.metrics.bandwidth import alm_split_bandwidth

        h = NiceHierarchy(planetlab)
        for host in range(20):
            h.join(host)
        session = nice_multicast(h, planetlab, server_host=48)
        needed = {host: {host % 7, 7 + host % 3} for host in range(20)}
        sample = alm_split_bandwidth(session, needed, total_encryptions=10)
        hosts = sorted(session.arrival)
        for i, host in enumerate(hosts):
            assert sample.received[i] >= len(needed[host])

    def test_alm_unsplit_uniform(self, planetlab):
        from repro.alm.nice import NiceHierarchy, nice_multicast
        from repro.metrics.bandwidth import alm_unsplit_bandwidth

        h = NiceHierarchy(planetlab)
        for host in range(15):
            h.join(host)
        session = nice_multicast(h, planetlab, server_host=48)
        sample = alm_unsplit_bandwidth(session, message_size=50)
        assert (sample.received == 50).all()
        assert sample.forwarded.sum() == 50 * len(session.edges) - 50  # server edge
