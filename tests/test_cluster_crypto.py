"""Crypto-mode tests of the Appendix-B heuristic: only leaders can
decrypt the rekey message; members get the group key via their leader's
pairwise unicast."""

import numpy as np
import pytest

from repro.core.ids import Id, IdScheme, NULL_ID
from repro.crypto import cipher
from repro.crypto.keystore import KeyStore
from repro.keytree.cluster import ClusterRekeyingTree
from repro.keytree.modified_tree import apply_rekey_message

SCHEME = IdScheme(num_digits=3, base=4)


@pytest.fixture
def crypto_cluster():
    tree = ClusterRekeyingTree(
        SCHEME, crypto=True, rng=np.random.default_rng(3)
    )
    users = [Id([0, 0, 0]), Id([0, 0, 1]), Id([0, 0, 2]), Id([2, 1, 0])]
    for uid in users:
        tree.request_join(uid)
    tree.process_batch()
    return tree, users


class TestLeaderKeys:
    def test_leader_holds_full_path(self, crypto_cluster):
        tree, users = crypto_cluster
        leader = users[0]  # earliest join of cluster [0,0]
        assert tree.is_leader(leader)
        store = tree.key_tree.user_keystore(leader)
        for key_id in tree.key_tree.path_key_ids(leader):
            assert store.has(key_id)

    def test_leader_decrypts_rekey_message(self, crypto_cluster):
        tree, users = crypto_cluster
        leader = users[0]
        store = tree.key_tree.user_keystore(leader)
        # the other cluster's leader leaves -> group rekeys
        tree.request_leave(users[3])
        result = tree.process_batch()
        assert result.rekey_cost > 0
        used = apply_rekey_message(store, result.message)
        assert used  # the leader recovered new keys
        assert store.has(NULL_ID, tree.key_tree.group_key_version())

    def test_nonleader_cannot_decrypt_rekey_message(self, crypto_cluster):
        """A non-leader holds only {group key, individual key, pairwise
        key} — none of which encrypts anything in the rekey message."""
        tree, users = crypto_cluster
        nonleader_store = KeyStore()
        nonleader_store.put(
            NULL_ID,
            tree.key_tree.group_key_version(),
            tree.key_tree.node_secret(NULL_ID),
        )
        tree.request_leave(users[3])
        result = tree.process_batch()
        used = apply_rekey_message(nonleader_store, result.message)
        assert used == []
        assert not nonleader_store.has(
            NULL_ID, tree.key_tree.group_key_version()
        )

    def test_pairwise_unicast_closes_the_loop(self, crypto_cluster):
        """End-to-end Appendix B: leader decrypts the new group key and
        re-wraps it for a member under their pairwise key."""
        tree, users = crypto_cluster
        leader, member = users[0], users[1]
        pairwise = cipher.generate_key(np.random.default_rng(9))
        leader_store = tree.key_tree.user_keystore(leader)

        tree.request_leave(users[3])
        result = tree.process_batch()
        apply_rekey_message(leader_store, result.message)
        version = tree.key_tree.group_key_version()
        group_key = leader_store.get(NULL_ID, version)

        # the unicast fan-out names this member
        fanout = {u.leader: u.members for u in result.unicasts}
        assert member in fanout[leader]

        wrapped = cipher.encrypt(pairwise, group_key)
        recovered = cipher.decrypt(pairwise, wrapped)
        assert recovered == tree.key_tree.node_secret(NULL_ID)

    def test_leader_handoff_transfers_decryption_ability(self, crypto_cluster):
        tree, users = crypto_cluster
        old_leader, new_leader = users[0], users[1]
        tree.request_leave(old_leader)
        result = tree.process_batch()
        # Appendix B: the departing leader hands its path keys to the
        # successor, whose u-node replaced it in the key tree; afterwards
        # the successor holds the full current path.
        store = tree.key_tree.user_keystore(new_leader)
        for key_id in tree.key_tree.path_key_ids(new_leader):
            assert store.get(key_id) == tree.key_tree.node_secret(key_id)
        assert tree.is_leader(new_leader)
