"""Smoke tests: every example script must run clean end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout  # every example narrates what it does


@pytest.mark.trace
def test_quickstart_trace_flag(tmp_path):
    """The quickstart's --trace demo: summary on bare --trace, a JSONL
    trace file when given a path."""
    script = pathlib.Path(__file__).parent.parent / "examples" / "quickstart.py"
    out = tmp_path / "quickstart.jsonl"
    result = subprocess.run(
        [sys.executable, str(script), f"--trace={out}"],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert "== trace ==" in result.stdout
    assert "traced" in result.stdout
    lines = out.read_text(encoding="utf-8").splitlines()
    assert lines  # header + spans + metrics
    import json

    header = json.loads(lines[0])
    assert header["kind"] == "header"
    assert header["label"] == "quickstart"

    summary_only = subprocess.run(
        [sys.executable, str(script), "--trace"],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert summary_only.returncode == 0, summary_only.stderr[-2000:]
    assert "session(s)" in summary_only.stdout


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "secure_conferencing",
        "rekey_vs_data_transport",
        "failure_recovery",
        "distributed_protocol",
        "lossy_wan",
        "fault_injection",
        "service_quickstart",
    } <= names
