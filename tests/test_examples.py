"""Smoke tests: every example script must run clean end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout  # every example narrates what it does


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "secure_conferencing",
        "rekey_vs_data_transport",
        "failure_recovery",
        "distributed_protocol",
        "lossy_wan",
        "fault_injection",
    } <= names
