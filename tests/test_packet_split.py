"""Tests for packet-level splitting (the Section-2.5 alternative)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.splitting import (
    run_packet_split_rekey,
    run_split_rekey,
    run_unsplit_rekey,
)
from repro.core.tmesh import rekey_session

from .test_splitting import _random_world


class TestPacketSplit:
    def test_packet_size_one_equals_encryption_level(self):
        topology, ids, tables, server_table, message = _random_world(3)
        session = rekey_session(server_table, tables, topology)
        per_enc = run_split_rekey(session, message)
        per_packet = run_packet_split_rekey(session, message, packet_size=1)
        assert per_packet.received == per_enc.received
        assert per_packet.forwarded == per_enc.forwarded

    def test_everyone_still_gets_needed_encryptions(self):
        topology, ids, tables, server_table, message = _random_world(5)
        session = rekey_session(server_table, tables, topology)
        result = run_packet_split_rekey(session, message, packet_size=4)
        per_enc = run_split_rekey(session, message)
        # packet granularity can only add encryptions, never drop them
        for uid in session.receipts:
            assert result.received.get(uid, 0) >= per_enc.received.get(uid, 0)

    def test_bounded_by_full_message(self):
        topology, ids, tables, server_table, message = _random_world(7)
        session = rekey_session(server_table, tables, topology)
        result = run_packet_split_rekey(session, message, packet_size=8)
        unsplit = run_unsplit_rekey(session, message.rekey_cost)
        for uid in session.receipts:
            assert result.received.get(uid, 0) <= unsplit.received[uid]

    def test_invalid_packet_size(self):
        topology, ids, tables, server_table, message = _random_world(9)
        session = rekey_session(server_table, tables, topology)
        with pytest.raises(ValueError):
            run_packet_split_rekey(session, message, packet_size=0)

    @given(st.integers(0, 200), st.integers(1, 10))
    @settings(max_examples=15, deadline=None)
    def test_monotone_between_granularities(self, seed, packet_size):
        """encryption-level <= packet-level <= flooded, per user."""
        topology, ids, tables, server_table, message = _random_world(seed)
        session = rekey_session(server_table, tables, topology)
        per_enc = run_split_rekey(session, message)
        per_packet = run_packet_split_rekey(session, message, packet_size)
        for uid in session.receipts:
            low = per_enc.received.get(uid, 0)
            mid = per_packet.received.get(uid, 0)
            assert low <= mid <= message.rekey_cost
