"""Tests for the ID tree (Definitions 1 and 2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.id_tree import IdTree
from repro.core.ids import Id, IdScheme, NULL_ID

SCHEME = IdScheme(num_digits=2, base=3)

# The example group of Fig. 1: D=2 with users [0,0] [0,1] [2,0] [2,1] [2,2].
FIG1_SCHEME = IdScheme(num_digits=2, base=3)
FIG1_USERS = [Id([0, 0]), Id([0, 1]), Id([2, 0]), Id([2, 1]), Id([2, 2])]


@pytest.fixture
def fig1_tree():
    return IdTree(FIG1_SCHEME, FIG1_USERS)


class TestFig1Example:
    """The paper's running example (Fig. 1)."""

    def test_root_contains_everyone(self, fig1_tree):
        assert fig1_tree.users_in_subtree(NULL_ID) == set(FIG1_USERS)

    def test_level1_nodes(self, fig1_tree):
        assert sorted(fig1_tree.nodes_at_level(1)) == [Id([0]), Id([2])]

    def test_u3_u4_u5_in_u1s_02_subtree(self, fig1_tree):
        # "users u3, u4, and u5 belong to u1's (0,2)-ID subtree"
        u1 = Id([0, 0])
        assert fig1_tree.ij_subtree_users(u1, 0, 2) == {
            Id([2, 0]),
            Id([2, 1]),
            Id([2, 2]),
        }

    def test_u2_in_u1s_11_subtree(self, fig1_tree):
        # "u2 belongs to u1's (1,1)-ID subtree"
        assert fig1_tree.ij_subtree_users(Id([0, 0]), 1, 1) == {Id([0, 1])}

    def test_empty_subtree(self, fig1_tree):
        assert fig1_tree.ij_subtree_users(Id([0, 0]), 0, 1) == set()

    def test_children_of_root(self, fig1_tree):
        assert fig1_tree.children(NULL_ID) == [Id([0]), Id([2])]

    def test_bottom_clusters_are_level_dminus1(self, fig1_tree):
        clusters = fig1_tree.bottom_clusters()
        assert set(clusters) == {Id([0]), Id([2])}
        assert clusters[Id([2])] == {Id([2, 0]), Id([2, 1]), Id([2, 2])}


class TestMutation:
    def test_add_creates_path_nodes(self):
        tree = IdTree(SCHEME)
        tree.add_user(Id([1, 2]))
        assert tree.has_node(NULL_ID)
        assert tree.has_node(Id([1]))
        assert tree.has_node(Id([1, 2]))
        assert not tree.has_node(Id([2]))

    def test_duplicate_add_rejected(self):
        tree = IdTree(SCHEME, [Id([1, 2])])
        with pytest.raises(ValueError):
            tree.add_user(Id([1, 2]))

    def test_remove_prunes_empty_branches(self):
        tree = IdTree(SCHEME, [Id([1, 2]), Id([1, 0])])
        tree.remove_user(Id([1, 2]))
        assert not tree.has_node(Id([1, 2]))
        assert tree.has_node(Id([1]))  # still holds [1,0]
        tree.remove_user(Id([1, 0]))
        assert not tree.has_node(Id([1]))
        assert not tree.has_node(NULL_ID)  # tree fully empty

    def test_remove_unknown_raises(self):
        tree = IdTree(SCHEME)
        with pytest.raises(KeyError):
            tree.remove_user(Id([0, 0]))

    def test_len_counts_users(self):
        tree = IdTree(SCHEME, [Id([0, 0]), Id([2, 1])])
        assert len(tree) == 2

    def test_invalid_user_id_rejected(self):
        tree = IdTree(SCHEME)
        with pytest.raises(ValueError):
            tree.add_user(Id([0]))  # not full length


class TestSubtreeQueries:
    def test_ij_subtree_root_definition(self):
        # Definition 2: root is the level-i ancestor extended by j.
        tree = IdTree(IdScheme(4, 5))
        uid = Id([1, 2, 3, 4])
        assert tree.ij_subtree_root(uid, 0, 2) == Id([2])
        assert tree.ij_subtree_root(uid, 2, 0) == Id([1, 2, 0])

    def test_ij_subtree_bounds(self):
        tree = IdTree(SCHEME)
        with pytest.raises(ValueError):
            tree.ij_subtree_root(Id([0, 0]), 2, 0)  # i > D-1
        with pytest.raises(ValueError):
            tree.ij_subtree_root(Id([0, 0]), 0, 3)  # j >= B

    def test_subtree_members_share_prefix_and_digit(self):
        # Definition 2's consequence spelled out under the figure:
        # members share the first i digits with u and have ID[i] == j.
        tree = IdTree(
            IdScheme(3, 3),
            [Id([0, 1, 2]), Id([0, 1, 1]), Id([0, 2, 0]), Id([1, 0, 0])],
        )
        u = Id([0, 1, 2])
        for w in tree.ij_subtree_users(u, 1, 2):
            assert w.shares_prefix(u, 1)
            assert w[1] == 2


@st.composite
def user_id_sets(draw):
    scheme = IdScheme(3, 3)
    ids = draw(
        st.sets(
            st.tuples(*[st.integers(0, 2)] * 3),
            min_size=1,
            max_size=15,
        )
    )
    return scheme, [Id(t) for t in ids]


class TestProperties:
    @given(user_id_sets())
    @settings(max_examples=50)
    def test_every_node_population_is_consistent(self, case):
        scheme, ids = case
        tree = IdTree(scheme, ids)
        for node in tree.node_ids():
            members = tree.users_in_subtree(node)
            expected = {u for u in ids if node.is_prefix_of(u)}
            assert members == expected
            assert tree.subtree_size(node) == len(expected)

    @given(user_id_sets())
    @settings(max_examples=50)
    def test_add_then_remove_everything_empties_tree(self, case):
        scheme, ids = case
        tree = IdTree(scheme)
        for uid in ids:
            tree.add_user(uid)
        for uid in ids:
            tree.remove_user(uid)
        assert len(tree) == 0
        assert tree.node_ids() == []

    @given(user_id_sets())
    @settings(max_examples=50)
    def test_children_partition_subtree(self, case):
        scheme, ids = case
        tree = IdTree(scheme, ids)
        for node in tree.node_ids():
            if len(node) == scheme.num_digits:
                continue
            union = set()
            for child in tree.children(node):
                members = tree.users_in_subtree(child)
                assert not (union & members)
                union |= members
            assert union == tree.users_in_subtree(node)
