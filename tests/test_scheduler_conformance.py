"""Cross-backend conformance for the scheduling seam.

One parameterized suite run against all three :mod:`repro.net.scheduling`
backends — the discrete event simulator adapter (``"simulator"``), the
standalone virtual-clock event loop (``"eventloop"``), and the live
service's asyncio scheduler (``"asyncio"``, deterministic drive mode) —
asserting identical delivery order, cancel/reschedule semantics, and
deterministic same-time tie-breaking.  The scripted scenarios reuse the
fixed seeds of ``tools/check_invariants.py`` (base seed 7), so a
divergence here points at the same repro key as the oracle suite.

The asyncio backend's *realtime* mode paces against the wall clock and
advertises ``clock == "wall"`` (:func:`repro.net.scheduling.clock_of`);
:class:`TestWallClockCapability` re-exercises the key scenarios there
with exact-time assertions relaxed to lower bounds — relaxed, never
skipped.

The suite also pins the seam's layering guarantees: the event-loop
backend must never import ``repro.sim``, and the layering lint gate
must exit 2 the moment such an import reappears anywhere in ``alm`` or
``net``.
"""

from __future__ import annotations

import numpy as np
import pytest

from tests.conftest import make_static_world
from repro.alm.reliable import ReliabilityConfig, ReliableSession
from repro.core.ids import Id, IdScheme
from repro.faults import FaultPlan
from repro.net.planetlab import MatrixTopology
from repro.net.scheduling import (
    Scheduler,
    SchedulingBackend,
    TransportNode,
    available_backends,
    clock_of,
    create_backend,
)

pytestmark = pytest.mark.conformance

#: All three scheduling backends; every test in this file runs against each.
BACKENDS = ("simulator", "eventloop", "asyncio")

#: The oracle suite's base seed (tools/check_invariants.py --seed default).
ORACLE_SEED = 7

SCHEME = IdScheme(3, 4)


def tiny_topology(hosts: int = 3, seed: int = ORACLE_SEED) -> MatrixTopology:
    rng = np.random.default_rng(seed)
    points = rng.uniform(0, 100, size=(hosts, 2))
    matrix = np.sqrt(((points[:, None, :] - points[None, :, :]) ** 2).sum(axis=2))
    matrix = (matrix + matrix.T) / 2
    np.fill_diagonal(matrix, 0.0)
    return MatrixTopology(matrix)


def make_scheduler(backend: str) -> Scheduler:
    return create_backend(backend, tiny_topology()).scheduler


def oracle_ids(n: int, seed: int = ORACLE_SEED, scheme: IdScheme = SCHEME):
    rng = np.random.default_rng(seed)
    seen = set()
    while len(seen) < n:
        seen.add(
            tuple(int(rng.integers(0, scheme.base)) for _ in range(scheme.num_digits))
        )
    return [Id(t) for t in sorted(seen)]


class EchoNode(TransportNode):
    def __init__(self, transport, host):
        super().__init__(transport, host)
        self.inbox = []

    def on_message(self, src, payload):
        self.inbox.append((src, payload, self.scheduler.now))
        if payload == "ping":
            self.send(src, "pong")


# ----------------------------------------------------------------------
# Scheduler semantics, per backend
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
class TestSchedulerSemantics:
    def test_events_run_in_time_order(self, backend):
        sched = make_scheduler(backend)
        log = []
        sched.schedule(5.0, lambda: log.append("b"))
        sched.schedule(1.0, lambda: log.append("a"))
        sched.schedule(9.0, lambda: log.append("c"))
        assert sched.run() == 3
        assert log == ["a", "b", "c"]
        assert sched.now == 9.0

    def test_simultaneous_events_fifo(self, backend):
        sched = make_scheduler(backend)
        log = []
        for i in range(5):
            sched.schedule(1.0, lambda i=i: log.append(i))
        sched.run()
        assert log == [0, 1, 2, 3, 4]

    def test_cancel_tombstones_a_pending_event(self, backend):
        sched = make_scheduler(backend)
        log = []
        event = sched.schedule(1.0, lambda: log.append("x"))
        event.cancel()
        assert sched.run() == 0
        assert log == []
        assert sched.pending == 0

    def test_cancel_then_reschedule(self, backend):
        """The repair protocol's NACK pattern: cancel a pending round,
        schedule a later one — only the reschedule fires."""
        sched = make_scheduler(backend)
        log = []
        first = sched.schedule(10.0, lambda: log.append("first"))
        first.cancel()
        sched.schedule(20.0, lambda: log.append("second"))
        sched.run()
        assert log == ["second"]
        assert sched.now == 20.0

    def test_cancel_from_a_simultaneous_earlier_event(self, backend):
        sched = make_scheduler(backend)
        log = []
        later = {}
        sched.schedule(1.0, lambda: (log.append("a"), later["b"].cancel()))
        later["b"] = sched.schedule(1.0, lambda: log.append("b"))
        sched.run()
        assert log == ["a"]

    def test_run_until_advances_the_clock(self, backend):
        sched = make_scheduler(backend)
        log = []
        sched.schedule(1.0, lambda: log.append(1))
        sched.schedule(10.0, lambda: log.append(10))
        sched.run(until=5.0)
        assert log == [1]
        assert sched.now == 5.0
        sched.run()
        assert log == [1, 10]

    def test_max_events_bounds_a_zero_delay_loop(self, backend):
        sched = make_scheduler(backend)

        def forever():
            sched.schedule(0.0, forever)

        sched.schedule(1.0, forever)
        assert sched.run(max_events=50) == 50
        assert sched.now == 1.0

    def test_past_scheduling_rejected(self, backend):
        sched = make_scheduler(backend)
        with pytest.raises(ValueError):
            sched.schedule(-1.0, lambda: None)
        sched.schedule(5.0, lambda: None)
        sched.run()
        with pytest.raises(ValueError):
            sched.schedule_at(4.0, lambda: None)

    def test_zero_delay_self_rescheduling_is_fifo(self, backend):
        sched = make_scheduler(backend)
        log = []
        count = [0]

        def tick():
            log.append(("tick", count[0]))
            count[0] += 1
            if count[0] < 3:
                sched.schedule(0.0, tick)

        sched.schedule(1.0, tick)
        sched.schedule(1.0, lambda: log.append(("other", 0)))
        sched.run()
        assert log == [("tick", 0), ("other", 0), ("tick", 1), ("tick", 2)]

    def test_nested_scheduling_relative_to_fire_time(self, backend):
        sched = make_scheduler(backend)
        log = []

        def first():
            log.append(("first", sched.now))
            sched.schedule(2.0, lambda: log.append(("second", sched.now)))

        sched.schedule(1.0, first)
        sched.run()
        assert log == [("first", 1.0), ("second", 3.0)]

    def test_schedule_at_current_instant_from_callback_is_fifo(self, backend):
        """``schedule_at(now)`` from inside a callback — a time exactly
        equal to the current virtual clock — is legal (not "the past")
        and fires in the same instant, after everything already queued
        for that instant (FIFO), on every backend."""
        sched = make_scheduler(backend)
        log = []

        def first():
            log.append(("first", sched.now))
            sched.schedule_at(sched.now, lambda: log.append(("same", sched.now)))

        sched.schedule(2.0, first)
        sched.schedule(2.0, lambda: log.append(("queued", sched.now)))
        sched.schedule(3.0, lambda: log.append(("later", sched.now)))
        sched.run()
        assert log == [
            ("first", 2.0),
            ("queued", 2.0),
            ("same", 2.0),
            ("later", 3.0),
        ]

    def test_schedule_at_current_time_before_run_is_legal(self, backend):
        """``schedule_at(now)`` outside any callback is equally legal —
        the boundary is strict: only strictly-past times raise."""
        sched = make_scheduler(backend)
        log = []
        sched.schedule(1.0, lambda: None)
        sched.run()
        assert sched.now == 1.0
        sched.schedule_at(sched.now, lambda: log.append(sched.now))
        sched.run()
        assert log == [1.0]

    def test_cancel_during_callback_is_inert_on_fired_handle(self, backend):
        """Cancelling the *currently firing* handle from inside its own
        callback must be a no-op on every backend: the event already
        fired, the cancel neither raises nor un-runs it, and the
        tombstone does not corrupt the queue for later events."""
        sched = make_scheduler(backend)
        log = []
        handle = {}

        def self_cancelling():
            log.append(("fired", sched.now))
            handle["h"].cancel()  # already fired: inert

        handle["h"] = sched.schedule(1.0, self_cancelling)
        sched.schedule(2.0, lambda: log.append(("after", sched.now)))
        assert sched.run() == 2
        assert log == [("fired", 1.0), ("after", 2.0)]
        assert sched.pending == 0

    def test_cancel_during_callback_of_simultaneous_later_event(self, backend):
        """Cancelling a not-yet-fired handle scheduled for the *same*
        instant, from a callback firing at that instant, suppresses it
        identically across backends (the FIFO successor is reaped as a
        tombstone, never run)."""
        sched = make_scheduler(backend)
        log = []
        handles = {}

        def canceller():
            log.append("canceller")
            handles["victim"].cancel()
            handles["victim"].cancel()  # double-cancel: still inert

        sched.schedule(1.0, canceller)
        handles["victim"] = sched.schedule(1.0, lambda: log.append("victim"))
        sched.schedule(1.0, lambda: log.append("survivor"))
        assert sched.run() == 2
        assert log == ["canceller", "survivor"]


# ----------------------------------------------------------------------
# Cross-backend identity: both schedulers drive the same script to the
# same (label, time) firing sequence
# ----------------------------------------------------------------------
def scripted_firings(sched: Scheduler, seed: int):
    """A seeded tangle of schedules, cancels, and nested reschedules;
    returns the exact (label, time) firing order."""
    rng = np.random.default_rng(seed)
    log = []
    handles = []
    for i in range(40):
        delay = float(rng.uniform(0.0, 50.0))
        handles.append(
            sched.schedule(delay, lambda i=i: log.append((i, sched.now)))
        )
    for victim in rng.choice(40, size=10, replace=False):
        handles[int(victim)].cancel()

    def respawn(tag, depth):
        log.append((f"respawn-{tag}-{depth}", sched.now))
        if depth:
            sched.schedule(
                float(rng.uniform(0.0, 5.0)), lambda: respawn(tag, depth - 1)
            )

    for tag in range(3):
        sched.schedule(float(rng.uniform(0.0, 30.0)), lambda t=tag: respawn(t, 4))
    sched.run(until=60.0)
    sched.run()
    return log


class TestCrossBackendIdentity:
    def test_backends_are_listed(self):
        assert set(BACKENDS) <= set(available_backends())

    def test_create_backend_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="unknown scheduling backend"):
            create_backend("carrier-pigeon", tiny_topology())

    def test_backend_objects_are_assembled(self):
        for name in BACKENDS:
            backend = create_backend(name, tiny_topology())
            assert isinstance(backend, SchedulingBackend)
            assert backend.name == name
            assert backend.transport.scheduler is backend.scheduler

    @pytest.mark.parametrize("seed", [ORACLE_SEED, ORACLE_SEED + 1])
    def test_identical_firing_order(self, seed):
        runs = [scripted_firings(make_scheduler(b), seed) for b in BACKENDS]
        assert runs[0], "the script must actually fire something"
        for other in runs[1:]:
            assert other == runs[0]

    def test_identical_message_delivery(self):
        """The transport fabric delivers the same messages at the same
        instants under both schedulers (per-link latency included)."""
        inboxes = []
        for name in BACKENDS:
            backend = create_backend(name, tiny_topology())
            a = EchoNode(backend.transport, 0)
            b = EchoNode(backend.transport, 1)
            EchoNode(backend.transport, 2).detach()
            a.send(1, "ping")
            a.send(2, "lost")  # detached host: dropped, not delivered
            b.send(0, "hello")
            backend.scheduler.run()
            inboxes.append(
                (a.inbox, b.inbox, backend.transport.stats.dropped)
            )
        for other in inboxes[1:]:
            assert other == inboxes[0]
        assert inboxes[0][2] == 1

    def test_identical_fault_plan_decisions(self):
        """Fault injection lives at the transport seam, so an identically
        seeded plan makes identical drop decisions on both backends."""
        results = []
        for name in BACKENDS:
            backend = create_backend(name, tiny_topology())
            plan = FaultPlan(seed=ORACLE_SEED).drop(0.5).duplicate(0.2)
            backend.transport.install_faults(plan)
            a = EchoNode(backend.transport, 0)
            b = EchoNode(backend.transport, 1)
            for i in range(50):
                a.send(1, f"m{i}")
            backend.scheduler.run()
            results.append(
                (b.inbox, plan.stats.drops, plan.stats.duplicates)
            )
        for other in results[1:]:
            assert other == results[0]
        assert results[0][1] > 0  # the plan really injected loss

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_reliable_session_clean_network(self, backend):
        ids = oracle_ids(20)
        topology, _, tables, server_table = make_static_world(
            SCHEME, ids, seed=ORACLE_SEED, k=1
        )
        session = ReliableSession(
            tables, server_table, topology, backend=backend
        )
        outcome = session.multicast([f"rekey-{i}" for i in range(6)])
        assert outcome.delivery_ratio == 1.0
        assert outcome.duplicates_surfaced == 0
        assert session.backend.name == backend

    def test_reliable_outcomes_byte_equal_across_backends(self):
        """The whole repair protocol — NACKs, retransmits, heartbeat
        rounds — produces a byte-identical :class:`ReliableOutcome` on
        every virtual-clock backend (the service acceptance bar)."""
        import pickle

        blobs = []
        for backend in BACKENDS:
            ids = oracle_ids(20)
            topology, _, tables, server_table = make_static_world(
                SCHEME, ids, seed=ORACLE_SEED, k=1
            )
            session = ReliableSession(
                tables, server_table, topology, backend=backend
            )
            outcome = session.multicast([f"rekey-{i}" for i in range(6)])
            blobs.append(pickle.dumps(outcome, protocol=4))
        for other in blobs[1:]:
            assert other == blobs[0]

    def test_reliable_session_accepts_a_prebuilt_backend(self):
        ids = oracle_ids(12)
        topology, _, tables, server_table = make_static_world(
            SCHEME, ids, seed=ORACLE_SEED, k=1
        )
        backend = create_backend("eventloop", topology)
        session = ReliableSession(
            tables, server_table, topology, backend=backend
        )
        assert session.scheduler is backend.scheduler
        outcome = session.multicast(["a", "b"])
        assert outcome.delivery_ratio == 1.0


# ----------------------------------------------------------------------
# Wall-clock capability: realtime mode re-runs the key scenarios with
# exact-time assertions relaxed to lower bounds — relaxed, never skipped
# ----------------------------------------------------------------------
class TestWallClockCapability:
    """The asyncio backend's realtime mode advertises ``clock == "wall"``
    and may report fire times *later* than scheduled (honest late-fire
    timestamps), never earlier.  Order and cancel semantics must still
    match the virtual backends exactly."""

    TIME_SCALE = 1e-7  # effectively unpaced; keeps the lane fast

    def make_wall_scheduler(self):
        from repro.service.aio import AsyncioScheduler

        sched = AsyncioScheduler(realtime=True, time_scale=self.TIME_SCALE)
        assert clock_of(sched) == "wall"
        return sched

    def test_registry_backends_advertise_virtual_clocks(self):
        for name in BACKENDS:
            sched = make_scheduler(name)
            assert clock_of(sched) == "virtual"

    def test_firing_order_exact_times_relaxed(self):
        sched = self.make_wall_scheduler()
        log = []
        sched.schedule(5.0, lambda: log.append(("b", sched.now)))
        sched.schedule(1.0, lambda: log.append(("a", sched.now)))
        sched.schedule(9.0, lambda: log.append(("c", sched.now)))
        assert sched.run() == 3
        assert [label for label, _ in log] == ["a", "b", "c"]
        # Wall clock: fire times are lower-bounded by the schedule, not
        # pinned to it.
        for (_, at), want in zip(log, (1.0, 5.0, 9.0)):
            assert at >= want
        assert sched.now >= 9.0
        sched.close()

    def test_simultaneous_fifo_and_cancel_semantics_hold_on_wall_clock(self):
        sched = self.make_wall_scheduler()
        log = []
        handles = {}

        def canceller():
            log.append("canceller")
            handles["victim"].cancel()
            handles["own"].cancel()  # fired handle: inert

        handles["own"] = sched.schedule(1.0, canceller)
        handles["victim"] = sched.schedule(1.0, lambda: log.append("victim"))
        sched.schedule(1.0, lambda: log.append("survivor"))
        assert sched.run() == 2
        assert log == ["canceller", "survivor"]
        assert sched.pending == 0
        sched.close()

    def test_call_at_current_instant_on_wall_clock(self):
        sched = self.make_wall_scheduler()
        log = []

        def first():
            log.append("first")
            sched.call_at(sched.now, lambda: log.append("same"))

        sched.schedule(2.0, first)
        sched.schedule(2.0, lambda: log.append("queued"))
        sched.run()
        assert log == ["first", "queued", "same"]
        assert sched.now >= 2.0
        sched.close()

    def test_nested_scheduling_lower_bounds(self):
        sched = self.make_wall_scheduler()
        log = []

        def first():
            log.append(("first", sched.now))
            sched.schedule(2.0, lambda: log.append(("second", sched.now)))

        sched.schedule(1.0, first)
        sched.run()
        assert [label for label, _ in log] == ["first", "second"]
        first_at = log[0][1]
        assert first_at >= 1.0
        assert log[1][1] >= first_at + 2.0
        sched.close()


# ----------------------------------------------------------------------
# Layering: the seam is what keeps alm/net free of repro.sim
# ----------------------------------------------------------------------
class TestLayeringSeam:
    SEAM_SOURCES = ("net/scheduling.py", "net/eventloop.py", "alm/reliable.py")

    def test_seam_modules_never_import_repro_sim(self):
        """The event-loop backend (and the reliable transport it serves)
        must stay importable without the simulator: no ``import`` of
        ``repro.sim`` / relative ``..sim`` anywhere in their AST —
        module level or lazy."""
        import ast
        import pathlib

        import repro

        package_root = pathlib.Path(repro.__file__).parent
        for rel in self.SEAM_SOURCES:
            path = package_root / rel
            tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
            for node in ast.walk(tree):
                if isinstance(node, ast.Import):
                    names = [alias.name for alias in node.names]
                elif isinstance(node, ast.ImportFrom):
                    if node.level >= 2:  # "from ..sim..." relative crossing
                        assert (node.module or "").split(".")[0] != "sim", (
                            f"{rel}:{node.lineno} imports ..sim"
                        )
                    names = [node.module or ""]
                else:
                    continue
                for name in names:
                    assert not (
                        name == "repro.sim" or name.startswith("repro.sim.")
                    ), f"{rel}:{node.lineno} imports {name}"

    def test_reliability_config_knobs_are_backend_neutral(self):
        """The config carries no scheduler/transport handle — sessions
        can rebuild on any backend from the same knobs."""
        config = ReliabilityConfig()
        assert not any(
            "sim" in name or "network" in name
            for name in type(config).__dataclass_fields__
        )
