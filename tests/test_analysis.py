"""Tests for the networkx analysis utilities and CSV export."""

import csv
import os

import networkx as nx
import numpy as np
import pytest

from repro.core.tmesh import rekey_session
from repro.metrics.export import (
    write_inverse_cdf,
    write_latency_comparison,
    write_ranked_runs,
    write_table,
)
from repro.metrics.stats import inverse_cdf, ranked_across_runs
from repro.net.analysis import (
    alm_tree_to_networkx,
    export_dot,
    router_graph_to_networkx,
    tmesh_tree_to_networkx,
    transit_stub_stats,
    tree_stats,
)


class TestTopologyAnalysis:
    def test_router_graph_roundtrip(self, gtitm):
        g = router_graph_to_networkx(gtitm.graph)
        assert g.number_of_nodes() == gtitm.num_routers
        assert g.number_of_edges() == gtitm.num_links
        # every edge delay matches the RouterGraph record
        for u, v, data in list(g.edges(data=True))[:50]:
            link = gtitm.graph.link_id(u, v)
            assert data["two_way_delay"] == gtitm.graph.link_two_way_delay(link)

    def test_transit_stub_stats(self, gtitm):
        stats = transit_stub_stats(gtitm)
        assert stats.connected
        assert stats.num_routers == gtitm.num_routers
        assert stats.num_links == gtitm.num_links
        # the four paper link classes, and nothing unclassified
        assert set(stats.link_class_counts) <= {
            "stub",
            "stub-transit",
            "transit",
            "inter-domain",
        }
        assert sum(stats.link_class_counts.values()) == stats.num_links
        assert "link classes" in stats.render()


class TestTreeAnalysis:
    def test_tmesh_tree_is_arborescence(self, gtitm, gtitm_group):
        session = rekey_session(gtitm_group.server_table, gtitm_group.tables, gtitm)
        g = tmesh_tree_to_networkx(session)
        stats = tree_stats(g)
        assert stats.is_tree
        assert stats.receivers == len(session.receipts)
        assert stats.depth >= 1
        assert "depth" in stats.render()

    def test_edge_delays_are_hop_delays(self, gtitm, gtitm_group):
        session = rekey_session(gtitm_group.server_table, gtitm_group.tables, gtitm)
        g = tmesh_tree_to_networkx(session)
        for _, _, data in g.edges(data=True):
            assert data["delay"] > 0

    def test_alm_tree(self, planetlab):
        from repro.alm.nice import NiceHierarchy, nice_multicast

        h = NiceHierarchy(planetlab)
        for host in range(20):
            h.join(host)
        session = nice_multicast(h, planetlab, server_host=48)
        g = alm_tree_to_networkx(session)
        stats = tree_stats(g)
        assert stats.is_tree
        assert stats.receivers == 20

    def test_tree_stats_rejects_forest(self):
        g = nx.DiGraph()
        g.add_edge(1, 2)
        g.add_edge(3, 4)
        with pytest.raises(ValueError):
            tree_stats(g)

    def test_export_dot(self, gtitm, gtitm_group, tmp_path):
        session = rekey_session(gtitm_group.server_table, gtitm_group.tables, gtitm)
        g = tmesh_tree_to_networkx(session)
        path = tmp_path / "tree.dot"
        export_dot(g, str(path))
        text = path.read_text()
        assert text.startswith("digraph multicast")
        assert "doublecircle" in text  # the root
        assert "->" in text


class TestCsvExport:
    def test_inverse_cdf(self, tmp_path):
        path = tmp_path / "cdf.csv"
        write_inverse_cdf(str(path), inverse_cdf([3.0, 1.0, 2.0]), "rdp")
        rows = list(csv.reader(path.open()))
        assert rows[0] == ["fraction_of_users", "rdp"]
        assert len(rows) == 4
        assert float(rows[1][1]) == 1.0

    def test_ranked_runs(self, tmp_path):
        path = tmp_path / "ranked.csv"
        ranked = ranked_across_runs([[1.0, 2.0], [3.0, 4.0]])
        write_ranked_runs(str(path), ranked, "delay")
        rows = list(csv.reader(path.open()))
        assert rows[0] == ["fraction_of_users", "delay_mean", "delay_p95"]
        assert len(rows) == 3

    def test_table(self, tmp_path):
        path = tmp_path / "table.csv"
        write_table(str(path), ["j", "l", "cost"], [(0, 0, 0.0), (1, 2, 3.5)])
        rows = list(csv.reader(path.open()))
        assert rows == [["j", "l", "cost"], ["0", "0", "0.0"], ["1", "2", "3.5"]]

    def test_latency_comparison_export(self, tmp_path):
        from repro.experiments.latency_experiments import run_latency_experiment

        cmp = run_latency_experiment(
            "t", "planetlab", 24, mode="rekey", runs=1, seed=1
        )
        paths = write_latency_comparison(str(tmp_path / "fig6"), cmp)
        assert len(paths) == 6
        for path in paths.values():
            assert os.path.exists(path)
