"""Tests for rekey delivery reliability: FEC and unicast recovery."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.group import SecureGroup
from repro.core.ids import Id
from repro.keytree.keys import Encryption
from repro.keytree.recovery import FecDecoder, FecEncoder, FecPacket
from repro.net import TransitStubParams, TransitStubTopology


def encs(n):
    """n distinct counting-mode encryptions."""
    return [
        Encryption(Id([i % 7, i]), 0, Id([i % 7]), 1) for i in range(n)
    ]


class TestFecCodec:
    def test_roundtrip_no_loss(self):
        encoder, decoder = FecEncoder(packet_size=3, block_packets=2), FecDecoder()
        original = encs(11)
        result = decoder.decode(encoder.encode(original))
        assert list(result.encryptions) == original
        assert result.complete
        assert result.repaired_blocks == 0

    def test_single_loss_per_block_repaired(self):
        encoder, decoder = FecEncoder(packet_size=2, block_packets=3), FecDecoder()
        original = encs(12)
        packets = encoder.encode(original)
        # drop one data packet from every block
        dropped = []
        seen_blocks = set()
        for p in packets:
            if not p.is_parity and p.block not in seen_blocks:
                seen_blocks.add(p.block)
                continue  # drop the first data packet of each block
            dropped.append(p)
        result = decoder.decode(dropped)
        assert list(result.encryptions) == original
        assert result.complete
        assert result.repaired_blocks == len(seen_blocks)

    def test_double_loss_in_block_unrecoverable(self):
        encoder, decoder = FecEncoder(packet_size=1, block_packets=4), FecDecoder()
        original = encs(4)  # one block of 4 data packets
        packets = encoder.encode(original)
        survivors = packets[2:]  # lose two data packets
        result = decoder.decode(survivors)
        assert not result.complete
        assert result.lost_blocks == 1
        assert len(result.encryptions) < len(original)

    def test_parity_loss_is_harmless(self):
        encoder, decoder = FecEncoder(packet_size=2, block_packets=2), FecDecoder()
        original = encs(8)
        packets = [p for p in encoder.encode(original) if not p.is_parity]
        result = decoder.decode(packets)
        assert list(result.encryptions) == original
        assert result.complete

    def test_overhead_ratio(self):
        assert FecEncoder(block_packets=4).overhead_ratio() == 0.25
        assert FecEncoder(block_packets=1).overhead_ratio() == 1.0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            FecEncoder(packet_size=0)
        with pytest.raises(ValueError):
            FecEncoder(block_packets=0)
        packet = FecPacket(0, -1, b"", 1, is_parity=True)
        with pytest.raises(ValueError):
            packet.decode_payload()

    @given(
        st.integers(1, 40),
        st.integers(1, 5),
        st.integers(1, 5),
        st.integers(0, 10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_any_single_loss_per_block_recovers(self, n, psize, bpkts, seed):
        encoder, decoder = FecEncoder(psize, bpkts), FecDecoder()
        original = encs(n)
        packets = encoder.encode(original)
        rng = np.random.default_rng(seed)
        survivors = []
        dropped_per_block = {}
        for p in packets:
            if (
                dropped_per_block.get(p.block, 0) == 0
                and rng.random() < 0.3
            ):
                dropped_per_block[p.block] = 1
                continue
            survivors.append(p)
        result = decoder.decode(survivors)
        assert list(result.encryptions) == original
        assert result.complete


PARAMS = TransitStubParams(
    transit_domains=3, transit_per_domain=3, stubs_per_transit=2, stub_size=6
)


@pytest.fixture(scope="module")
def lossy_group():
    topology = TransitStubTopology(num_hosts=33, params=PARAMS, seed=25)
    group = SecureGroup(topology, server_host=32, seed=25)
    members = [group.join(h) for h in range(20)]
    group.end_interval()
    return topology, group, members


class TestLossyRekey:
    def test_losses_leave_members_incomplete(self, lossy_group):
        topology, group, members = lossy_group
        group.leave(members[0].user_id)
        report = group.end_interval(
            loss_rate=0.4, loss_rng=np.random.default_rng(1)
        )
        assert report.incomplete  # heavy loss, no FEC: someone missed keys

    def test_unicast_recovery_restores_members(self, lossy_group):
        topology, group, members = lossy_group
        group.leave(members[1].user_id)
        report = group.end_interval(
            loss_rate=0.4, loss_rng=np.random.default_rng(2)
        )
        for user_id in report.incomplete:
            grant = group.recover_member(user_id)
            assert grant.user_id == user_id
        assert group.verify_member_keys() == []

    def test_fec_masks_light_loss(self):
        topology = TransitStubTopology(num_hosts=33, params=PARAMS, seed=26)
        group = SecureGroup(topology, server_host=32, seed=26)
        members = [group.join(h) for h in range(20)]
        group.end_interval()
        group.leave(members[0].user_id)
        from repro.keytree.recovery import FecEncoder

        report = group.end_interval(
            loss_rate=0.05,
            fec=FecEncoder(packet_size=2, block_packets=2),
            loss_rng=np.random.default_rng(3),
        )
        # light loss with parity: nearly everyone repaired locally
        assert len(report.incomplete) <= 2
        assert report.fec_repaired_blocks >= 0

    def test_loss_rate_validation(self, lossy_group):
        _, group, _ = lossy_group
        with pytest.raises(ValueError):
            group.end_interval(loss_rate=1.0)
        with pytest.raises(ValueError):
            group.end_interval(loss_rate=-0.1)
