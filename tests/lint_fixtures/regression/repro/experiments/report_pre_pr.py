"""The pre-PR ``repro.experiments.report`` timing helper, verbatim.

This is the wall-clock leak named in ISSUE 5 (``time.time()`` pair at
``src/repro/experiments/report.py:63``) before it was routed through an
injectable ``time.perf_counter`` clock.  The regression test asserts the
``determinism-wall-clock`` rule would have caught it — i.e. a fresh lint
run over the pre-PR tree flags exactly these lines.
"""

import time
from typing import Callable, Tuple


def _timed(fn: Callable, *args, **kwargs) -> Tuple[object, float]:
    start = time.time()
    result = fn(*args, **kwargs)
    return result, time.time() - start
