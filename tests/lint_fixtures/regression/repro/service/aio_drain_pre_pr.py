"""The ``AsyncioScheduler.drain`` realtime-pacing pattern, distilled.

This is the one true finding the await-interleaving race detector
surfaced on the shipped tree (``src/repro/service/aio.py``): the drain
writes ``self._wall_start`` once before its loop, then reads it after
pacing awaits without re-validating.  In the real scheduler the
``_draining`` re-entry guard makes the coroutine the sole writer, so the
finding is justify-suppressed in place — but the *shape* is exactly the
bug class the rule exists for: drop the guard (or add a second drain)
and the rebased ``_wall_start`` silently skews every subsequent timer.

The regression test asserts a fresh lint run over this pre-suppression
replica flags the stale read — i.e. the detector would have caught the
pattern had the invariant not held.
"""

import asyncio
from typing import Optional


class DrainPacer:
    def __init__(self, time_scale: float):
        self.now = 0.0
        self.time_scale = time_scale
        self._wall_start: Optional[float] = None

    async def drain(self, loop, heap) -> int:
        self._wall_start = loop.time() - self.now * self.time_scale
        executed = 0
        while heap:
            head = heap[0]
            target = self._wall_start + head.when * self.time_scale
            delay = target - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
                continue
            heap.pop(0)
            executed += 1
        return executed
