"""Fork-boundary module done right: slotted classes, module-level worker."""


class Task:
    __slots__ = ("seed",)

    def __init__(self, seed):
        self.seed = seed


class ParallelRunner:
    __slots__ = ("processes",)

    def __init__(self, processes=None):
        self.processes = processes


def run_one(task):
    return task.seed


def run_all(runner, tasks):
    return runner.map(run_one, tasks)
