"""Near-misses for the flow family: the sanctioned idioms one edit away
from the badtree patterns — none of these may fire."""

import asyncio


class Pacer:
    def __init__(self, scale: float):
        self._origin = 0.0
        self._scale = scale

    async def pace(self, when: float) -> float:
        self._origin = when * self._scale
        await asyncio.sleep(0)
        # Re-validated after the suspension: the test read re-observes
        # _origin before the dependent read, so nothing is stale.
        if self._origin:
            return self._origin + when
        return when


class Hub:
    async def _notify(self, member) -> None:
        pass

    def on_join(self, member) -> None:
        # Handed to a task sink: the coroutine runs.
        asyncio.ensure_future(self._notify(member))

    async def broadcast(self, members) -> None:
        pending = [self._notify(member) for member in members]
        await asyncio.gather(*pending)


async def probe(host: str, port: int) -> bytes:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        return await reader.read(64)
    finally:
        # Closed on every exit path, including the return above.
        writer.close()


async def serve(handler, port: int) -> None:
    server = await asyncio.start_server(handler, port=port)
    async with server:
        await server.serve_forever()
