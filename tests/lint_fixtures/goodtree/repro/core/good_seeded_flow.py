"""Near-miss for flow-seed-taint: seeds that flow from parameters or
constants through copy chains are sanctioned."""

import numpy as np


def make_stream(seed: int, shard: int):
    base = seed
    stream_seed = base + shard
    return np.random.default_rng(stream_seed)


def fixed_stream():
    replay_seed = 0x5EED
    return np.random.default_rng(replay_seed)
