"""A protocol module that follows every discipline — must lint clean."""

import random

import numpy as np

from repro.trace import hooks as _trace_hooks
from repro.verify import hooks as _verify_hooks


def pick_upstream(candidates, seed):
    rng = random.Random(seed)
    return rng.choice(candidates)


def jitter_matrix(n, seed):
    rng = np.random.default_rng(seed)
    return rng.uniform(size=(n, n))


def forward_order(members, leavers):
    order = []
    for member in sorted(set(members) - set(leavers)):
        order.append(member)
    return order


def run_session(session, topology):
    tctx = _trace_hooks.ACTIVE
    if tctx is not None:
        tctx.observe_session(session, topology)
    ctx = _verify_hooks.ACTIVE
    if ctx is not None:
        ctx.observe_session(session, None, {}, topology)
    return session
