"""A justified suppression: silences the finding, and only that one."""

import time


def profile_once(fn):
    # lint: disable=determinism-wall-clock -- ad-hoc profiling helper; output never feeds a trace or oracle
    start = time.time()
    fn()
    return time.time() - start  # lint: disable=determinism-wall-clock -- same profiling pair as above
