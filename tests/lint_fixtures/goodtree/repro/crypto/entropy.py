"""OS entropy inside repro.crypto is the sanctioned exception."""

import os


def fresh_key_bytes(length=32):
    return os.urandom(length)
