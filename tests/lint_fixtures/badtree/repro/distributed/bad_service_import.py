"""Canary: protocol layer importing the live service (layering-import).

``repro.service`` sits *above* the protocol packages; the lazy-import
registry string in ``repro.net.scheduling`` is the one sanctioned
crossing.
"""

from repro.service import RekeyService


def serve(topology):
    return RekeyService(topology, server_host=0)
