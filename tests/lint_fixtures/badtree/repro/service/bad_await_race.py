"""Canary: self state read across an await with no re-validation
(flow-await-race)."""

import asyncio


class Pacer:
    def __init__(self, scale: float):
        self._origin = 0.0
        self._scale = scale

    async def pace(self, when: float) -> float:
        self._origin = when * self._scale
        await asyncio.sleep(0)
        # Stale: another task may have rebased _origin during the sleep.
        return self._origin + when
