"""Canary: coroutine created but never awaited (flow-dropped-coroutine)."""


async def flush(queue) -> None:
    while queue:
        queue.pop()


class Hub:
    async def _notify(self, member) -> None:
        pass

    def on_join(self, member, queue) -> None:
        # Both bodies silently never run: the calls return coroutine
        # objects that nothing awaits or schedules.
        self._notify(member)
        pending = flush(queue)
        del pending
