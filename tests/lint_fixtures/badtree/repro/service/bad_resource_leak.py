"""Canary: stream acquired with a close-free exit path
(flow-resource-leak)."""

import asyncio


async def probe(host: str, port: int) -> bytes | None:
    reader, writer = await asyncio.open_connection(host, port)
    banner = await reader.read(64)
    if not banner:
        # Leak: this early return drops the writer without close().
        return None
    writer.close()
    await writer.wait_closed()
    return banner
