"""Canary: fork-boundary class without __slots__ (fork-slots).

The path matters: this fixture shadows ``repro/experiments/parallel.py``
so the rule's module scoping is exercised.
"""


class ParallelRunner:
    def __init__(self, processes=None):
        self.processes = processes
