"""Canary: unpicklable payloads at the fork boundary (fork-unpicklable)."""


def run_replications(runner, tasks, topology):
    def worker(task):
        return task.run(topology)

    first = runner.map(worker, tasks)
    second = runner.map(lambda task: task.run(topology), tasks)
    return first, second
