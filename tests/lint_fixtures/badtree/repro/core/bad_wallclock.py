"""Canary: wall-clock reads in protocol code (determinism-wall-clock)."""

import time
from datetime import datetime


def stamp_session(session):
    session.started_at = time.time()
    session.deadline = time.monotonic() + 5.0
    session.label = datetime.now().isoformat()
    return session
