"""Canary: protocol layer importing orchestration layers (layering-import)."""

from repro.experiments.config import Scale
from repro.sim.engine import Simulator

from ..distributed import harness


def run(scale: Scale) -> Simulator:
    return harness.DistributedGroup(scale)
