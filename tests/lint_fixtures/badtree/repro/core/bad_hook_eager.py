"""Canary: eager hook-layer imports from a hot path (hook-eager-import)."""

from repro.trace.hooks import TraceContext
from repro.verify import checkers


def build(plan):
    return TraceContext(), checkers
