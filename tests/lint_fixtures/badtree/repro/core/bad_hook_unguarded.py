"""Canary: hook-slot use without a None guard (hook-unguarded)."""

from repro.trace import hooks as _trace_hooks


def run_session(session, topology):
    _trace_hooks.ACTIVE.observe_session(session, topology)
    tctx = _trace_hooks.ACTIVE
    tctx.count("tmesh.sessions")
    return session
