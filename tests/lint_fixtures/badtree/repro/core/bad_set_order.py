"""Canary: set iteration on a protocol path (determinism-set-order)."""


def forward_order(members, leavers):
    order = []
    for member in set(members):
        order.append(member)
    extras = [m for m in {"a", "b", "c"}]
    pending = [m for m in set(members) - set(leavers)]
    return order, extras, pending
