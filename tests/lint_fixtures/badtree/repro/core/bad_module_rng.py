"""Canary: module-level RNG instance (determinism-module-rng)."""

import random

import numpy as np

#: Seeded, but still one stream shared by every scenario in the process.
_RNG = np.random.default_rng(42)
_FALLBACK = random.Random(7)


def jitter(n):
    return _RNG.uniform(size=n) + _FALLBACK.random()
