"""Canary: RNG seed that def-use resolves to None (flow-seed-taint)."""

import numpy as np


def make_stream(shards: int):
    seed = None
    stream_seed = seed
    # The statement rules cannot see through the copy chain; the flow
    # rule resolves stream_seed -> seed -> None.
    rng = np.random.default_rng(stream_seed)
    return [rng.integers(0, 1 << 32) for _ in range(shards)]
