"""Canary: global / unseeded RNGs (determinism-unseeded-rng)."""

import random

import numpy as np


def pick_upstream(candidates):
    random.shuffle(candidates)
    return random.choice(candidates)


def jitter_matrix(n):
    rng = np.random.default_rng()
    other = random.Random()
    np.random.seed(42)
    return rng.uniform(size=(n, n)), other.random()
