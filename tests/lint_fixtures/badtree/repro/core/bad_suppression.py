"""Canary: suppression directive without justification (lint-suppress).

The naked directive below must (a) not silence the wall-clock finding
and (b) itself be reported.
"""

import time


def stamp():
    return time.time()  # lint: disable=determinism-wall-clock
