"""Canary: mutable default arguments (api-mutable-default)."""


def collect(member, acc=[]):
    acc.append(member)
    return acc


def tally(member, counts={}, seen=set()):
    counts[member] = counts.get(member, 0) + 1
    seen.add(member)
    return counts
