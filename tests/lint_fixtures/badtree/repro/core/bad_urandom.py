"""Canary: OS entropy outside repro.crypto (determinism-urandom)."""

import os


def session_nonce():
    return os.urandom(16)
