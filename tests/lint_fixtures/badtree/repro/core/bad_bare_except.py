"""Canary: bare except (api-bare-except)."""


def deliver(node, message):
    try:
        node.receive(message)
    except:
        return None
