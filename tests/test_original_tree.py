"""Tests for the original Wong–Gouda–Lam key tree with batch rekeying."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.keytree.original_tree import OriginalKeyTree


def balanced_tree(n=64, degree=4):
    tree = OriginalKeyTree(degree=degree)
    tree.initialize_balanced(list(range(n)))
    return tree


class TestConstruction:
    def test_balanced_1024_has_height_5(self):
        tree = balanced_tree(1024)
        assert tree.height() == 5  # 4^5 = 1024, the paper's Fig. 12 start
        assert tree.num_users == 1024
        assert tree.check_invariants() == []

    def test_partial_tree_still_valid(self):
        tree = balanced_tree(37)
        assert tree.num_users == 37
        assert tree.check_invariants() == []

    def test_single_user_tree(self):
        tree = balanced_tree(1)
        assert tree.height() == 0
        assert tree.path_nodes(0) == [tree._user_leaf[0]]

    def test_degree_validation(self):
        with pytest.raises(ValueError):
            OriginalKeyTree(degree=1)

    def test_double_initialize_rejected(self):
        tree = balanced_tree(4)
        with pytest.raises(RuntimeError):
            tree.initialize_balanced([99])

    def test_empty_initialize_rejected(self):
        with pytest.raises(ValueError):
            OriginalKeyTree().initialize_balanced([])

    def test_path_nodes_end_at_root(self):
        tree = balanced_tree(64)
        paths = [tree.path_nodes(u) for u in (0, 13, 63)]
        roots = {p[-1] for p in paths}
        assert len(roots) == 1  # common root
        for p in paths:
            assert len(p) == 4  # leaf + 3 k-node levels for 64 = 4^3


class TestSingleOperations:
    def test_single_leave_cost(self):
        # Balanced 1024, degree 4: leave marks 5 ancestors; the leaf's
        # parent now has 3 children: 3 + 4*4 = 19 encryptions.
        tree = balanced_tree(1024)
        tree.request_leave(500)
        result = tree.process_batch(np.random.default_rng(0))
        assert result.rekey_cost == 19

    def test_join_replacing_leave_cost(self):
        # One join replaces the departed slot: 5 marked nodes, all with 4
        # children: 20 encryptions.
        tree = balanced_tree(1024)
        tree.request_leave(500)
        tree.request_join("new")
        result = tree.process_batch(np.random.default_rng(0))
        assert result.rekey_cost == 20
        assert "new" in tree.users and 500 not in tree.users

    def test_pure_join_attaches_or_splits(self):
        tree = balanced_tree(16)  # full 4^2 tree
        tree.request_join("j1")
        result = tree.process_batch(np.random.default_rng(0))
        assert "j1" in tree.users
        assert tree.check_invariants() == []
        assert result.rekey_cost > 0

    def test_join_fills_open_slot_first(self):
        tree = balanced_tree(14)  # last k-node has only 2 children
        before = tree.height()
        tree.request_join("j1")
        tree.process_batch(np.random.default_rng(0))
        assert tree.height() == before  # no split needed

    def test_invalid_requests(self):
        tree = balanced_tree(8)
        with pytest.raises(ValueError):
            tree.request_leave("ghost")
        tree.request_leave(3)
        with pytest.raises(ValueError):
            tree.request_leave(3)
        with pytest.raises(ValueError):
            tree.request_join(5)  # already a member


class TestBatchSemantics:
    def test_equal_joins_and_leaves_preserve_structure(self):
        """The point of ToN'03 batching: with J == L every join takes a
        departed u-node's position, so the tree's shape is unchanged."""
        rng = np.random.default_rng(1)
        tree = balanced_tree(256)
        nodes_before = set(tree._nodes)
        height_before = tree.height()
        for victim in range(8):
            tree.request_leave(victim)
        for j in range(8):
            tree.request_join(f"new{j}")
        tree.process_batch(rng)
        assert set(tree._nodes) == nodes_before
        assert tree.height() == height_before
        assert tree.check_invariants() == []

    def test_leave_all_empties_tree(self):
        tree = balanced_tree(16)
        for u in range(16):
            tree.request_leave(u)
        result = tree.process_batch(np.random.default_rng(0))
        assert result.rekey_cost == 0
        assert tree.num_users == 0

    def test_encryption_nodes_exist(self):
        tree = balanced_tree(64)
        for victim in range(6):
            tree.request_leave(victim)
        for j in range(3):
            tree.request_join(f"n{j}")
        result = tree.process_batch(np.random.default_rng(2))
        for enc in result.encryptions:
            assert enc.new_key_node in tree._nodes
            assert enc.encrypting_node in tree._nodes


class TestChurnProperty:
    @given(
        st.integers(4, 64),
        st.integers(0, 20),
        st.integers(0, 20),
        st.integers(0, 10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_invariants_after_random_batch(self, n, joins, leaves, seed):
        rng = np.random.default_rng(seed)
        tree = balanced_tree(n)
        leaves = min(leaves, n)
        victims = rng.choice(n, size=leaves, replace=False)
        for v in victims:
            tree.request_leave(int(v))
        for j in range(joins):
            tree.request_join(f"j{j}")
        tree.process_batch(rng)
        assert tree.num_users == n - leaves + joins
        assert tree.check_invariants() == []
        # every user's path still reaches the root
        if tree.num_users:
            roots = {tree.path_nodes(u)[-1] for u in tree.users}
            assert len(roots) == 1

    @given(st.integers(2, 50), st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_repeated_batches_keep_tree_sound(self, n, seed):
        rng = np.random.default_rng(seed)
        tree = balanced_tree(n)
        next_id = 0
        for _ in range(5):
            users = sorted(tree.users, key=str)
            n_leave = int(rng.integers(0, max(1, len(users) // 2)))
            picks = rng.choice(len(users), size=n_leave, replace=False)
            for i in picks:
                tree.request_leave(users[int(i)])
            for _ in range(int(rng.integers(0, 5))):
                tree.request_join(f"g{next_id}")
                next_id += 1
            tree.process_batch(rng)
            assert tree.check_invariants() == []
