"""Property-based conformance tests for the verification subsystem.

Random membership churn at varying branching factor ``B``, depth ``D``,
and redundancy ``K`` must keep every invariant checker green: Theorem 1's
exactly-once delivery, Lemmas 1-2's prefix relations, Definition 3's
K-consistency, Section 2.4's key-tree agreement and key-ID resolution,
and the differential oracle's brute-force replay.  A fault-marked class
additionally pins the NACK layer's contract under seeded loss: recovery
must restore *exactly-once* (no duplicates surfaced, no holes left), not
merely eventual delivery.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, precondition, rule

from tests.conftest import make_static_world
from repro.alm.reliable import ReliabilityConfig, ReliableSession
from repro.core.id_assignment import IdAssigner
from repro.core.ids import Id, IdScheme
from repro.core.membership import Group
from repro.core.tmesh import data_session, plan_session, rekey_session, run_multicast
from repro.experiments.common import _default_thresholds
from repro.faults import FaultPlan
from repro.keytree.modified_tree import ModifiedKeyTree
from repro.net.planetlab import MatrixTopology
from repro.verify import verification

pytestmark = pytest.mark.verify

#: The (D, B) grid the properties sweep: shallow/wide, deep/narrow, and
#: the small square the rest of the suite uses.
SCHEMES = [IdScheme(2, 5), IdScheme(3, 3), IdScheme(3, 4), IdScheme(4, 2)]


def random_ids(n, seed, scheme):
    rng = np.random.default_rng(seed)
    seen = set()
    while len(seen) < n:
        seen.add(
            tuple(int(rng.integers(0, scheme.base)) for _ in range(scheme.num_digits))
        )
    return [Id(t) for t in sorted(seen)]


class TestSessionConformance:
    @given(
        scheme=st.sampled_from(SCHEMES),
        k=st.integers(min_value=1, max_value=3),
        n=st.integers(min_value=2, max_value=28),
        seed=st.integers(min_value=0, max_value=2**20),
    )
    @settings(max_examples=25, deadline=None)
    def test_rekey_and_data_sessions_pass_all_checkers(self, scheme, k, n, seed):
        n = min(n, scheme.base**scheme.num_digits - 1)
        ids = random_ids(n, seed, scheme)
        topology, _, tables, server_table = make_static_world(
            scheme, ids, seed=seed, k=k
        )
        with verification(seed=seed) as ctx:
            rekey_session(server_table, tables, topology, processing_delay=0.001)
            data_session(ids[seed % len(ids)], tables, topology)
            plan = plan_session(server_table, tables)
            plan.run(topology, 0.001)
        assert ctx.sessions_checked == 3
        assert ctx.reports == []

    @given(
        k=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=2**20),
    )
    @settings(max_examples=10, deadline=None)
    def test_lossy_transport_keeps_lemma1_and_skips_theorem1(self, k, seed):
        """Under injected loss only Lemma 1 is checkable — the hook must
        neither raise on legitimate loss nor skip the session."""
        scheme = IdScheme(3, 4)
        ids = random_ids(24, seed, scheme)
        topology, _, tables, server_table = make_static_world(
            scheme, ids, seed=seed, k=k
        )
        plan = FaultPlan(seed=seed).drop(0.3)
        with verification(seed=seed) as ctx:
            run_multicast(
                server_table, tables, topology, fault_plan=plan
            )
        assert ctx.sessions_checked == 1
        assert ctx.reports == []


class TestKeyTreeConformance:
    @given(
        scheme=st.sampled_from(SCHEMES),
        seed=st.integers(min_value=0, max_value=2**20),
        churn=st.lists(
            st.tuples(st.booleans(), st.integers(min_value=0, max_value=10**6)),
            min_size=1,
            max_size=30,
        ),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_churn_keeps_key_tree_checkers_green(self, scheme, seed, churn):
        rng = np.random.default_rng(seed)
        tree = ModifiedKeyTree(scheme)
        members = []
        with verification(seed=seed) as ctx:
            for join, pick in churn:
                if join or not members:
                    uid = Id(
                        tuple(
                            int(rng.integers(0, scheme.base))
                            for _ in range(scheme.num_digits)
                        )
                    )
                    if uid in tree.user_ids:
                        continue
                    tree.request_join(uid)
                    members.append(uid)
                else:
                    tree.request_leave(members.pop(pick % len(members)))
                message = tree.process_batch()
                ctx.observe_key_tree(tree)
                if members:
                    ctx.observe_rekey(message, tree.user_ids, scheme)
        assert ctx.reports == []


class VerifiedChurnMachine(RuleBasedStateMachine):
    """Protocol-maintained tables under joins/leaves/crashes: after every
    batch the full checker suite (including the differential oracle) runs
    against a rekey multicast over the *live* tables."""

    SCHEME = IdScheme(num_digits=3, base=3)
    N_HOSTS = 14

    def __init__(self):
        super().__init__()
        rng = np.random.default_rng(3)
        points = rng.uniform(0, 100, size=(self.N_HOSTS, 2))
        matrix = np.sqrt(
            ((points[:, None, :] - points[None, :, :]) ** 2).sum(axis=2)
        )
        matrix = (matrix + matrix.T) / 2
        np.fill_diagonal(matrix, 0.0)
        self.topology = MatrixTopology(matrix)
        self.group = Group(
            self.SCHEME,
            self.topology,
            server_host=self.N_HOSTS - 1,
            assigner=IdAssigner(self.SCHEME, _default_thresholds(self.SCHEME)),
            k=2,
            rng=np.random.default_rng(1),
        )
        self.free_hosts = set(range(self.N_HOSTS - 1))
        self.host_of = {}

    @rule(data=st.data())
    def join(self, data):
        if not self.free_hosts:
            return
        host = data.draw(st.sampled_from(sorted(self.free_hosts)), label="host")
        uid = self.group.join(host).record.user_id
        self.host_of[uid] = host
        self.free_hosts.discard(host)

    @rule(data=st.data())
    def leave(self, data):
        members = sorted(self.group.records)
        if not members:
            return
        uid = data.draw(st.sampled_from(members), label="leaver")
        self.group.leave(uid)
        self.free_hosts.add(self.host_of.pop(uid))

    @precondition(lambda self: len(self.group.records) >= 2)
    @rule()
    def multicast_under_full_verification(self):
        with verification(seed=0) as ctx:
            rekey_session(
                self.group.server_table, self.group.tables, self.topology
            )
            ctx.observe_group(self.group)
        assert ctx.reports == []


TestVerifiedChurnMachine = VerifiedChurnMachine.TestCase
TestVerifiedChurnMachine.settings = settings(
    max_examples=15, stateful_step_count=20, deadline=None
)


@pytest.mark.faults
class TestNackRecoveryRestoresExactlyOnce:
    """The reliability layer's contract under the verification lens:
    unless the transport *explicitly* gives a hole up after exhausting
    its bounded NACK budget, repair must restore Theorem 1's
    exactly-once delivery — full payload coverage with zero surfaced
    duplicates, not merely 'delivery'.  Holes are never silent: a
    member short of payloads implies ``gave_up`` ticked."""

    PAYLOADS = [f"rekey-{i}" for i in range(6)]
    #: A deep repair budget so full restoration is the overwhelmingly
    #: common branch; the give-up escape hatch stays legal (pinned by
    #: test_reliable_tmesh.py::test_gave_up_counter_and_termination).
    CONFIG = ReliabilityConfig(max_source_nacks=16, heartbeat_rounds=24)

    @given(
        drop=st.floats(min_value=0.05, max_value=0.3),
        seed=st.integers(min_value=0, max_value=2**16),
        k=st.integers(min_value=1, max_value=2),
    )
    @settings(max_examples=10, deadline=None)
    def test_seeded_loss_fully_repaired_without_duplicates(self, drop, seed, k):
        scheme = IdScheme(3, 4)
        ids = random_ids(24, seed, scheme)
        topology, _, tables, server_table = make_static_world(
            scheme, ids, seed=seed, k=k
        )
        plan = FaultPlan(seed=seed).drop(drop)
        session = ReliableSession(
            tables, server_table, topology, plan=plan, config=self.CONFIG
        )
        outcome = session.multicast(self.PAYLOADS)
        # Duplicates must never surface, repaired or not (Theorem 1's
        # "at most once" half is unconditional).
        assert outcome.duplicates_surfaced == 0
        if outcome.stats.gave_up == 0:
            # Exactly-once restored: every member has every payload,
            # exactly one surfaced copy of each, and no holes remain.
            assert outcome.delivery_ratio == 1.0
            assert outcome.members_short() == []
            assert all(not holes for holes in outcome.missing.values())
            for got in outcome.delivered.values():
                assert got == self.PAYLOADS
        else:
            # A hole may only exist where the transport audited it:
            # every remaining hole corresponds to an explicit give-up.
            # (A give-up can still be healed by a later heartbeat round,
            # so the reverse implication does not hold.)
            holes = sum(len(h) for h in outcome.missing.values())
            assert holes <= outcome.stats.gave_up
