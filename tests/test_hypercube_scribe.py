"""Tests for hypercube prefix routing and the Scribe-style baseline."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.alm.scribe import build_scribe_group, scribe_multicast
from repro.core.hypercube import Route, rendezvous_member, route_toward
from repro.core.ids import Id, IdScheme

from .conftest import make_group
from .test_tmesh import build_world


class TestPrefixRouting:
    def test_route_to_existing_member(self, gtitm, gtitm_group):
        ids = sorted(gtitm_group.user_ids)
        for src in ids[:6]:
            for dst in ids[:6]:
                route = route_toward(
                    gtitm_group.records[src], dst, gtitm_group.tables
                )
                assert route.terminal.user_id == dst
                assert route.num_hops <= gtitm_group.scheme.num_digits

    def test_route_to_self_is_trivial(self, gtitm_group):
        uid = next(iter(gtitm_group.user_ids))
        route = route_toward(gtitm_group.records[uid], uid, gtitm_group.tables)
        assert route.num_hops == 0
        assert route.terminal.user_id == uid

    def test_prefix_progress_every_hop(self, gtitm_group):
        ids = sorted(gtitm_group.user_ids)
        route = route_toward(
            gtitm_group.records[ids[0]], ids[-1], gtitm_group.tables
        )
        shares = [
            hop.user_id.common_prefix_len(ids[-1]) for hop in route.hops
        ]
        assert all(b > a for a, b in zip(shares, shares[1:]))

    def test_rendezvous_is_member_independent(self, gtitm_group):
        group_id = Id([9, 9, 9, 9, 9])
        terminals = {
            route_toward(
                gtitm_group.records[uid], group_id, gtitm_group.tables
            ).terminal.user_id
            for uid in gtitm_group.user_ids
        }
        assert len(terminals) == 1
        assert terminals == {rendezvous_member(group_id, gtitm_group.tables)}

    def test_route_delay_accumulates(self, gtitm, gtitm_group):
        ids = sorted(gtitm_group.user_ids)
        route = route_toward(
            gtitm_group.records[ids[0]], ids[-1], gtitm_group.tables
        )
        if route.num_hops:
            assert route.total_delay(gtitm) > 0

    @given(st.integers(0, 2000))
    @settings(max_examples=15, deadline=None)
    def test_routing_on_random_worlds(self, seed):
        scheme = IdScheme(3, 4)
        rng = np.random.default_rng(seed)
        ids = [
            Id(t)
            for t in sorted(
                {tuple(int(rng.integers(0, 4)) for _ in range(3)) for _ in range(20)}
            )
        ]
        topology, records, tables, _ = build_world(scheme, ids, seed=seed)
        by_id = {r.user_id: r for r in records}
        src = ids[int(rng.integers(0, len(ids)))]
        dst = ids[int(rng.integers(0, len(ids)))]
        route = route_toward(by_id[src], dst, tables)
        assert route.terminal.user_id == dst
        # rendezvous convergence for an arbitrary (possibly absent) ID
        target = Id(tuple(int(rng.integers(0, 4)) for _ in range(3)))
        terminals = {
            route_toward(by_id[uid], target, tables).terminal.user_id
            for uid in ids
        }
        assert len(terminals) == 1


class TestScribe:
    @pytest.fixture(scope="class")
    def scribe_world(self, gtitm, gtitm_group):
        group_id = Id([3, 1, 4, 1, 5])
        return gtitm, gtitm_group, build_scribe_group(group_id, gtitm_group.tables)

    def test_tree_covers_all_members(self, scribe_world):
        _, group, tree = scribe_world
        assert set(tree.parent) == set(group.user_ids)
        roots = [uid for uid, p in tree.parent.items() if p is None]
        assert roots == [tree.root]

    def test_parent_chains_reach_root(self, scribe_world):
        _, group, tree = scribe_world
        for uid in group.user_ids:
            node, steps = uid, 0
            while tree.parent[node] is not None:
                node = tree.parent[node]
                steps += 1
                assert steps <= group.scheme.num_digits + 1
            assert node == tree.root

    def test_rekey_multicast_exactly_once(self, scribe_world):
        topology, group, tree = scribe_world
        session = scribe_multicast(tree, topology, server_host=48)
        hosts = {group.records[uid].host for uid in group.user_ids}
        assert set(session.arrival) == hosts
        assert session.duplicate_copies == {}

    def test_data_multicast_exactly_once(self, scribe_world):
        topology, group, tree = scribe_world
        sender = sorted(group.user_ids)[7]
        session = scribe_multicast(
            tree, topology, source_host=group.records[sender].host
        )
        hosts = {group.records[uid].host for uid in group.user_ids}
        assert set(session.arrival) == hosts - {group.records[sender].host}
        assert session.duplicate_copies == {}

    def test_mode_validation(self, scribe_world):
        topology, group, tree = scribe_world
        with pytest.raises(ValueError):
            scribe_multicast(tree, topology)
        with pytest.raises(ValueError):
            scribe_multicast(tree, topology, source_host=1, server_host=48)
        with pytest.raises(ValueError):
            scribe_multicast(tree, topology, source_host=99999)

    def test_root_concentrates_stress(self, scribe_world):
        """The lookup-oriented tree funnels everything through the
        rendezvous — the structural property Section 2.6 warns about."""
        topology, group, tree = scribe_world
        session = scribe_multicast(tree, topology, server_host=48)
        root_host = tree.host_of[tree.root]
        stresses = {h: session.user_stress(h) for h in session.arrival}
        assert stresses[root_host] == max(stresses.values())
