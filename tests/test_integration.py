"""Cross-module integration tests: the distributed wire-level protocol
must agree with the offline session machinery, and the full pipeline must
hold its invariants when everything is composed."""

import numpy as np
import pytest

from repro.core.neighbor_table import check_k_consistency
from repro.core.tmesh import rekey_session
from repro.distributed import DistributedGroup
from repro.net import TransitStubParams, TransitStubTopology

PARAMS = TransitStubParams(
    transit_domains=3, transit_per_domain=3, stubs_per_transit=2, stub_size=6
)


@pytest.fixture(scope="module")
def converged_world():
    topology = TransitStubTopology(num_hosts=41, params=PARAMS, seed=51)
    world = DistributedGroup(topology, server_host=40, seed=51)
    for i in range(14):
        world.schedule_join(i, at=1.0 + i * 250.0)
    world.end_interval(at=6000.0)
    # a second interval so the multicast rides fully-populated tables
    world.end_interval(at=7000.0)
    world.run()
    return topology, world


class TestWireVsOffline:
    """The wire-level interval multicast and the offline session runner
    must produce the same delivery outcome from the same tables."""

    def test_same_receivers(self, converged_world):
        topology, world = converged_world
        tables = {u.user_id: u.table for u in world.active_users()}
        server_table = world.server._build_server_table(
            world.server._announced
        )
        offline = rekey_session(server_table, tables, topology)
        wire = world.delivery_report(1)
        assert set(offline.receipts) == wire["received"]
        assert wire["duplicates"] == {}
        assert offline.duplicate_copies == {}

    def test_wire_tables_satisfy_theorem1_precondition(self, converged_world):
        topology, world = converged_world
        # the emergent tables, checked against full Definition-3
        # 1-consistency via the offline checker
        from repro.core.id_tree import IdTree

        active = world.active_users()
        tables = {u.user_id: u.table for u in active}
        tree = IdTree(world.scheme, list(tables))
        problems = check_k_consistency(tables, tree, 1)
        # Full K-consistency need not hold (a joiner only collected P
        # records per subtree, and K=4 entries legitimately hold more
        # than one neighbor); Theorem 1 needs non-emptiness, so only
        # entries with zero neighbors for a populated subtree count.
        empties = [p for p in problems if "has 0 neighbors" in p]
        assert empties == []


class TestFullPipeline:
    def test_offline_group_feeds_every_consumer(self, gtitm, gtitm_group):
        """One membership state drives T-mesh, Scribe, NICE comparison,
        key trees, and splitting without any glue mismatches."""
        from repro.alm.scribe import build_scribe_group, scribe_multicast
        from repro.core.ids import Id
        from repro.core.splitting import run_split_rekey
        from repro.keytree.cluster import ClusterRekeyingTree
        from repro.keytree.modified_tree import ModifiedKeyTree

        tree = ModifiedKeyTree(gtitm_group.scheme)
        cluster = ClusterRekeyingTree(gtitm_group.scheme)
        for uid in gtitm_group.user_ids:
            tree.request_join(uid)
            cluster.request_join(uid)
        tree.process_batch()
        cluster.process_batch()

        import copy

        victims = sorted(gtitm_group.user_ids)[::5][:6]
        working = gtitm_group
        # gtitm_group is session-scoped: deep-copy the tables before
        # mutating them for this scenario
        tables = {
            uid: copy.deepcopy(t)
            for uid, t in working.tables.items()
            if uid not in victims
        }
        for uid in victims:
            tree.request_leave(uid)
            cluster.request_leave(uid)
        for table in tables.values():
            for uid in victims:
                table.remove(uid)
        message = tree.process_batch()
        cluster_result = cluster.process_batch()
        assert message.rekey_cost > 0

        # splitting on a post-churn session still satisfies Lemma 3
        session = rekey_session(working.server_table, tables, gtitm)
        split = run_split_rekey(session, message, track_sets=True)
        for uid in tables:
            if uid in session.receipts:
                needed = set(message.needed_by(uid))
                assert needed <= split.received_sets.get(uid, set())

        # a scribe tree over the reduced tables still covers everyone
        scribe = build_scribe_group(Id([1, 2, 3, 4, 5]), tables)
        s_session = scribe_multicast(scribe, gtitm, server_host=48)
        hosts = {tables[uid].owner.host for uid in tables}
        assert set(s_session.arrival) == hosts

    def test_cluster_message_splits_toward_leaders(self, gtitm, gtitm_group):
        """P4 semantics: the cluster-tree message's encryptions route
        toward leaders; non-leaders receive only the shared prefix part."""
        from repro.core.splitting import run_split_rekey
        from repro.keytree.cluster import ClusterRekeyingTree

        cluster = ClusterRekeyingTree(gtitm_group.scheme)
        order = sorted(
            gtitm_group.user_ids,
            key=lambda u: gtitm_group.records[u].join_time,
        )
        for uid in order:
            cluster.request_join(uid)
        cluster.process_batch()
        # force a leader change: remove one leader
        leader = next(uid for uid in order if cluster.is_leader(uid))
        cluster.request_leave(leader)
        result = cluster.process_batch()
        if result.rekey_cost == 0:
            pytest.skip("no rekeying needed in this population")
        import copy

        tables = {
            uid: copy.deepcopy(t)
            for uid, t in gtitm_group.tables.items()
            if uid != leader
        }
        for table in tables.values():
            table.remove(leader)
        session = rekey_session(gtitm_group.server_table, tables, gtitm)
        split = run_split_rekey(session, result.message)
        # no member receives more than the message; leaders of changed
        # paths receive the most
        assert max(split.received.values()) <= result.rekey_cost
