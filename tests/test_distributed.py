"""Tests for the message-level protocol layer (Section 3 on the wire)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ids import NULL_ID
from repro.distributed import DistributedGroup
from repro.net import TransitStubParams, TransitStubTopology

PARAMS = TransitStubParams(
    transit_domains=3, transit_per_domain=3, stubs_per_transit=2, stub_size=6
)


def make_world(num_hosts=41, seed=5):
    topology = TransitStubTopology(num_hosts=num_hosts, params=PARAMS, seed=seed)
    return DistributedGroup(topology, server_host=num_hosts - 1, seed=seed)


class TestJoins:
    def test_first_join_gets_zero_id(self):
        world = make_world()
        node = world.schedule_join(0, at=1.0)
        world.run()
        assert node.joined
        assert node.user_id == world.scheme.first_user_id()

    def test_sequential_joins_converge(self):
        world = make_world()
        for i in range(10):
            world.schedule_join(i, at=1.0 + i * 300.0)
        world.end_interval(at=5000.0)
        world.run()
        assert len(world.active_users()) == 10
        assert world.check_one_consistency() == []

    def test_concurrent_joins_converge(self):
        """Joins landing within milliseconds of each other still yield
        1-consistent tables after the interval announcement."""
        world = make_world()
        for i in range(14):
            world.schedule_join(i, at=1.0 + i * 2.0)
        world.end_interval(at=5000.0)
        world.run()
        assert len(world.active_users()) == 14
        assert world.check_one_consistency() == []

    def test_unique_ids(self):
        world = make_world()
        for i in range(16):
            world.schedule_join(i, at=1.0 + i * 5.0)
        world.end_interval(at=5000.0)
        world.run()
        ids = [u.user_id for u in world.active_users()]
        assert len(set(ids)) == len(ids)

    def test_join_message_cost_is_modest(self):
        """The paper analyzes the joiner's cost as O(P * D * N^(1/D));
        for these sizes that is well under a hundred queries."""
        world = make_world()
        for i in range(12):
            world.schedule_join(i, at=1.0 + i * 300.0)
        world.end_interval(at=5000.0)
        world.run()
        for user in world.active_users():
            assert user.stats.queries_sent < 100
            assert user.stats.pings_sent < 200


class TestMulticastOnTheWire:
    def test_update_reaches_everyone_exactly_once(self):
        world = make_world()
        for i in range(12):
            world.schedule_join(i, at=1.0 + i * 200.0)
        world.end_interval(at=4000.0)
        # second interval: multicast flows over the now-populated tables
        for i in range(12, 18):
            world.schedule_join(i, at=4100.0 + i)
        world.end_interval(at=6000.0)
        world.run()
        report = world.delivery_report(1)
        active_ids = {u.user_id for u in world.active_users()}
        assert report["received"] >= active_ids
        assert report["duplicates"] == {}

    def test_splitting_on_the_wire(self):
        """Encryption counts received over the real protocol match
        Lemma 3: each member gets at least what it needs and far less
        than the full message."""
        world = make_world()
        for i in range(14):
            world.schedule_join(i, at=1.0 + i * 100.0)
        world.end_interval(at=3000.0)
        for host in (1, 4, 7):
            world.schedule_leave_of_host(host, at=3500.0)
        world.end_interval(at=5000.0)
        world.run()
        total = len(world.intervals[1].update.encryptions)
        assert total > 0
        report = world.delivery_report(1)
        loads = [
            count
            for uid, count in report["encryptions"].items()
            if uid in {u.user_id for u in world.active_users()}
        ]
        assert max(loads) <= total
        assert min(loads) >= 1  # everyone needs at least the group key

    def test_leavers_detach_after_final_forwarding(self):
        world = make_world()
        for i in range(10):
            world.schedule_join(i, at=1.0 + i * 200.0)
        world.end_interval(at=3000.0)
        world.schedule_leave_of_host(2, at=3200.0)
        world.end_interval(at=5000.0)
        world.run()
        leaver = world.users[2]
        assert world.network.node_at(2) is not leaver  # detached
        assert leaver not in world.active_users()
        # and nobody's table still carries it
        assert world.check_one_consistency() == []


class TestChurn:
    @given(st.integers(0, 10_000))
    @settings(max_examples=6, deadline=None)
    def test_random_churn_stays_consistent(self, seed):
        world = make_world(seed=7)
        rng = np.random.default_rng(seed)
        t = 1.0
        joined_hosts = []
        next_host = 0
        for interval in range(3):
            for _ in range(int(rng.integers(2, 7))):
                world.schedule_join(next_host, at=t)
                joined_hosts.append(next_host)
                next_host += 1
                t += float(rng.uniform(1.0, 300.0))
            if interval > 0 and joined_hosts:
                n_leave = int(rng.integers(0, min(3, len(joined_hosts))))
                for _ in range(n_leave):
                    host = joined_hosts.pop(int(rng.integers(0, len(joined_hosts))))
                    world.schedule_leave_of_host(host, at=t)
                    t += 10.0
            t += 1500.0
            world.end_interval(at=t)
            t += 500.0
        world.run()
        assert world.check_one_consistency() == []
        assert {u.host for u in world.active_users()} == set(joined_hosts)

    def test_emptied_entries_refilled_after_leaves(self):
        """With K=1 tables, a leave empties entries; refill queries must
        restore 1-consistency."""
        topology = TransitStubTopology(num_hosts=41, params=PARAMS, seed=9)
        world = DistributedGroup(topology, server_host=40, seed=9, k=1)
        for i in range(12):
            world.schedule_join(i, at=1.0 + i * 300.0)
        world.end_interval(at=5000.0)
        world.run()
        # leave a couple of users; with K=1 their entries go empty
        world.schedule_leave_of_host(3, at=5100.0)
        world.schedule_leave_of_host(6, at=5150.0)
        world.end_interval(at=7000.0)
        world.run()
        assert world.check_one_consistency() == []


class TestServerBehaviour:
    def test_server_tracks_id_tree(self):
        world = make_world()
        for i in range(8):
            world.schedule_join(i, at=1.0 + i * 150.0)
        world.end_interval(at=3000.0)
        world.run()
        assert len(world.server.id_tree) == 8
        assert set(world.server.records) == {
            u.user_id for u in world.active_users()
        }

    def test_rekey_message_matches_key_tree_batch(self):
        world = make_world()
        for i in range(8):
            world.schedule_join(i, at=1.0 + i * 150.0)
        world.end_interval(at=3000.0)
        world.run()
        update = world.intervals[0].update
        assert len(update.joins) == 8
        assert update.leaves == ()
        assert len(update.encryptions) > 0

    def test_interval_numbers_increase(self):
        world = make_world()
        world.schedule_join(0, at=1.0)
        world.end_interval(at=100.0)
        world.end_interval(at=200.0)
        world.run()
        assert [log.update.interval for log in world.intervals] == [0, 1]


class TestFailureDetection:
    """Section 3.2: failed neighbors are detected by consecutive missed
    pings, reported to the key server, and purged everywhere."""

    def _converged_world(self, seed=11, users=12):
        world = make_world(seed=seed)
        for i in range(users):
            world.schedule_join(i, at=1.0 + i * 250.0)
        world.end_interval(at=users * 250.0 + 2000.0)
        world.run()
        return world

    def test_crash_detected_and_purged(self):
        world = self._converged_world()
        t = world.simulator.now
        world.schedule_crash(3, at=t + 100.0)
        # two probe rounds (failure_threshold = 2), spaced past timeouts
        world.schedule_probe_round(at=t + 200.0)
        world.schedule_probe_round(at=t + 12_000.0)
        world.end_interval(at=t + 30_000.0)
        world.run()
        crashed = world.users[3]
        assert crashed not in world.active_users()
        # the failure was announced: nobody's table holds the dead user
        assert world.check_one_consistency() == []
        assert crashed.user_id not in world.server.records

    def test_single_missed_round_is_not_a_failure(self):
        world = self._converged_world(seed=13)
        t = world.simulator.now
        world.schedule_probe_round(at=t + 100.0)
        world.end_interval(at=t + 20_000.0)
        world.run()
        # nobody crashed, nobody was reported
        assert all(
            u.stats.failures_detected == 0 for u in world.active_users()
        )
        assert world.check_one_consistency() == []

    def test_detectors_notify_server(self):
        world = self._converged_world(seed=17)
        t = world.simulator.now
        world.schedule_crash(5, at=t + 50.0)
        world.schedule_probe_round(at=t + 100.0)
        world.schedule_probe_round(at=t + 12_000.0)
        world.run()
        detectors = sum(
            1 for u in world.active_users() if u.stats.failures_detected > 0
        )
        assert detectors >= 1

    def test_multicast_complete_after_detection(self):
        world = self._converged_world(seed=19)
        t = world.simulator.now
        world.schedule_crash(2, at=t + 50.0)
        world.schedule_crash(7, at=t + 60.0)
        world.schedule_probe_round(at=t + 100.0)
        world.schedule_probe_round(at=t + 12_000.0)
        world.end_interval(at=t + 30_000.0)
        # a second interval multicast flows over the repaired tables
        world.end_interval(at=t + 40_000.0)
        world.run()
        interval = world.intervals[-1].update.interval
        report = world.delivery_report(interval)
        active_ids = {u.user_id for u in world.active_users()}
        assert report["received"] >= active_ids
        assert not (set(report["duplicates"]) & active_ids)


@pytest.mark.faults
class TestLossRecovery:
    """Reference-[31] unicast recovery: a member whose interval
    announcement copies were dropped resyncs from the server's history."""

    def _world_dropping_multicast_to(self, victim_host, start=0.0):
        from repro.distributed import messages as m
        from repro.faults import FaultPlan

        plan = FaultPlan(seed=1).drop(
            1.0,
            dst=victim_host,
            start=start,
            match=lambda s, d, p: isinstance(p, m.MulticastMsg),
        )
        topology = TransitStubTopology(num_hosts=41, params=PARAMS, seed=5)
        return DistributedGroup(
            topology, server_host=40, seed=5, fault_plan=plan
        )

    def test_missed_announcements_recovered_by_unicast(self):
        # Host 0 never receives a multicast copy: it misses interval 0's
        # joins and interval 1's leave, then resyncs both by unicast.
        world = self._world_dropping_multicast_to(0)
        for i in range(8):
            world.schedule_join(i, at=1.0 + 300.0 * i)
        world.end_interval(at=5000.0)
        world.schedule_leave_of_host(3, at=6000.0)
        world.end_interval(at=7000.0)
        world.run(until=7900.0)
        victim = world.users[0]
        assert victim.copies_received == []
        problems = world.check_one_consistency()
        assert any(str(victim.user_id) in p for p in problems)

        world.schedule_recovery_round(at=8000.0)
        world.run()
        assert victim.stats.recovered_updates == 2
        assert sorted(victim.copies_received) == [0, 1]
        assert world.check_one_consistency() == []

    def test_recovery_applies_a_missed_departure(self):
        # Interval 0 reaches host 1 normally (it learns the leaver's
        # record); only interval 1's announcement is dropped.
        world = self._world_dropping_multicast_to(1, start=6500.0)
        for i in range(6):
            world.schedule_join(i, at=1.0 + 300.0 * i)
        world.end_interval(at=5000.0)
        leaver = world.users[4]
        world.schedule_leave_of_host(4, at=6000.0)
        world.end_interval(at=7000.0)
        world.run(until=7900.0)
        victim = world.users[1]
        stale = {r.user_id for r in victim.table.all_records()}
        assert leaver.user_id in stale  # the departure never reached it

        world.schedule_recovery_round(at=8000.0)
        world.run()
        fresh = {r.user_id for r in victim.table.all_records()}
        assert leaver.user_id not in fresh
        assert world.check_one_consistency() == []

    def test_late_joiner_requests_the_full_history(self):
        # A member that joined at interval 1 holds copies {1} only; its
        # recovery request must still pull interval 0 (contiguity from
        # zero), and re-applying known records is harmless.
        world = make_world()
        for i in range(4):
            world.schedule_join(i, at=1.0 + 300.0 * i)
        world.end_interval(at=5000.0)
        world.schedule_join(4, at=6000.0)
        world.schedule_join(5, at=6300.0)
        world.end_interval(at=9000.0)
        world.run()
        late = world.users[5]
        assert sorted(set(late.copies_received)) == [1]

        world.schedule_recovery_round(at=10_000.0)
        world.run()
        assert sorted(set(late.copies_received)) == [0, 1]
        assert late.stats.recovered_updates == 1
        assert world.check_one_consistency() == []

    def test_recovery_round_is_a_no_op_when_synced(self):
        world = make_world()
        for i in range(6):
            world.schedule_join(i, at=1.0 + 300.0 * i)
        world.end_interval(at=5000.0)
        world.run()
        assert world.check_one_consistency() == []
        world.schedule_recovery_round(at=6000.0)
        world.run()
        assert all(
            u.stats.recovered_updates == 0 for u in world.users.values()
        )
        assert world.check_one_consistency() == []

    def test_refill_sweep_is_safe_on_consistent_tables(self):
        world = make_world()
        for i in range(6):
            world.schedule_join(i, at=1.0 + 300.0 * i)
        world.end_interval(at=5000.0)
        world.run()
        assert world.check_one_consistency() == []
        world.schedule_refill_sweep(at=6000.0)
        world.run()
        # legitimately-empty entries draw empty responses; nothing changes
        assert world.check_one_consistency() == []
