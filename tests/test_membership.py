"""Tests for group membership: joins, leaves, failures, table repair."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import check_k_consistency
from repro.core.ids import Id, IdScheme
from repro.core.tmesh import rekey_session

from .conftest import SMALL_SCHEME, make_group


class TestJoins:
    def test_first_join_gets_all_zero_id(self, gtitm):
        group = make_group(gtitm, 1, seed=0)
        assert list(group.user_ids) == [Id([0] * 5)]

    def test_join_returns_outcome_for_non_first(self, gtitm):
        group = make_group(gtitm, 1, seed=0)
        result = group.join(5)
        assert result.outcome is not None
        assert result.record.user_id in group.user_ids

    def test_tables_k_consistent_after_joins(self, gtitm_group):
        problems = check_k_consistency(
            gtitm_group.tables, gtitm_group.id_tree, gtitm_group.k
        )
        assert problems == []

    def test_server_table_tracks_level1_subtrees(self, gtitm_group):
        digits_present = {uid[0] for uid in gtitm_group.user_ids}
        table_digits = {
            j for j in range(256) if gtitm_group.server_table.primary(0, j)
        }
        assert table_digits == digits_present

    def test_records_carry_access_rtt(self, gtitm, gtitm_group):
        for uid, rec in gtitm_group.records.items():
            assert rec.access_rtt == pytest.approx(gtitm.access_rtt(rec.host))

    def test_join_times_strictly_increase(self, gtitm_group):
        times = sorted(r.join_time for r in gtitm_group.records.values())
        assert len(set(times)) == len(times)


class TestLeaves:
    def test_leave_removes_user_everywhere(self, gtitm):
        group = make_group(gtitm, 20, seed=3)
        victim = list(group.user_ids)[5]
        group.leave(victim)
        assert victim not in group.user_ids
        for table in group.tables.values():
            assert not table.contains(victim)
        assert not group.server_table.contains(victim)

    def test_tables_repaired_after_leaves(self, gtitm):
        group = make_group(gtitm, 24, seed=4)
        rng = np.random.default_rng(0)
        for _ in range(10):
            victim = list(group.user_ids)[int(rng.integers(0, group.num_users))]
            group.leave(victim)
        problems = check_k_consistency(group.tables, group.id_tree, group.k)
        assert problems == []

    def test_leave_unknown_raises(self, gtitm):
        group = make_group(gtitm, 4, seed=5)
        with pytest.raises(KeyError):
            group.leave(Id([9, 9, 9, 9, 9]))

    def test_multicast_still_exactly_once_after_churn(self, gtitm):
        group = make_group(gtitm, 24, seed=6)
        rng = np.random.default_rng(1)
        for _ in range(8):
            victim = list(group.user_ids)[int(rng.integers(0, group.num_users))]
            group.leave(victim)
        for host in range(24, 30):
            group.join(host)
        session = rekey_session(group.server_table, group.tables, gtitm)
        assert set(session.receipts) == set(group.user_ids)
        assert session.duplicate_copies == {}


class TestFailures:
    def test_fail_leaves_stale_records(self, gtitm):
        group = make_group(gtitm, 16, seed=7)
        victim = list(group.user_ids)[3]
        group.fail(victim)
        stale = sum(
            1 for t in group.tables.values() if t.contains(victim)
        )
        assert stale > 0  # silent failure: others still remember it

    def test_repair_tables_removes_stale_and_refills(self, gtitm):
        group = make_group(gtitm, 20, seed=8)
        victims = list(group.user_ids)[:4]
        for v in victims:
            group.fail(v)
        removed = group.repair_tables()
        assert removed > 0
        problems = check_k_consistency(group.tables, group.id_tree, group.k)
        assert problems == []

    def test_k_greater_one_masks_single_failure(self, gtitm):
        """With K=4 a failed primary still leaves backups in the entry, so
        the entry is non-empty before any repair."""
        group = make_group(gtitm, 24, seed=9, k=4)
        # find an entry with >= 2 neighbors and fail its primary
        for table in group.tables.values():
            for i in range(5):
                for j, primary in table.row_primaries(i):
                    if len(table.entry(i, j)) >= 2:
                        victim = primary.user_id
                        if victim in group.user_ids:
                            group.fail(victim)
                            table.remove(victim)
                            assert table.entry(i, j) != []
                            return
        pytest.skip("no multi-neighbor entry in this population")


class TestRandomIdAblation:
    def test_random_ids_ignore_topology(self, gtitm):
        group = make_group(gtitm, 1, seed=10)
        for host in range(1, 24):
            group.random_id_join(host)
        assert group.num_users == 24
        problems = check_k_consistency(group.tables, group.id_tree, group.k)
        assert problems == []


class TestChurnProperty:
    @given(st.integers(0, 1000))
    @settings(max_examples=8, deadline=None)
    def test_consistency_through_random_churn(self, seed):
        from repro.net import TransitStubTopology, TransitStubParams

        topology = TransitStubTopology(
            num_hosts=33,
            params=TransitStubParams(
                transit_domains=2,
                transit_per_domain=3,
                stubs_per_transit=2,
                stub_size=5,
            ),
            seed=1,
        )
        group = make_group(topology, 12, seed=seed)
        rng = np.random.default_rng(seed)
        next_host = 12
        for _ in range(15):
            if group.num_users > 2 and rng.random() < 0.5:
                ids = list(group.user_ids)
                group.leave(ids[int(rng.integers(0, len(ids)))])
            elif next_host < 32:
                group.join(next_host)
                next_host += 1
        problems = check_k_consistency(group.tables, group.id_tree, group.k)
        assert problems == []
        session = rekey_session(group.server_table, group.tables, topology)
        assert set(session.receipts) == set(group.user_ids)
        assert session.duplicate_copies == {}
