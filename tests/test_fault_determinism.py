"""Seeded-determinism regression: the same fault-plan seed must produce
bit-identical runs, down to the exported CSV bytes."""

import numpy as np
import pytest

from tests.conftest import make_static_world
from repro.alm.reliable import ReliableSession
from repro.core.ids import Id, IdScheme
from repro.faults import FaultPlan
from repro.metrics.export import write_repair_report

SCHEME = IdScheme(3, 4)
LOSS_RATES = (0.0, 0.1, 0.2)


def sweep_rows(seed=7):
    """One mini reliability sweep: fresh world + fresh plan per rate."""
    rng = np.random.default_rng(3)
    ids = [
        Id(t)
        for t in sorted(
            {tuple(int(rng.integers(0, 4)) for _ in range(3)) for _ in range(25)}
        )
    ]
    rows = []
    for loss in LOSS_RATES:
        topology, _, tables, server_table = make_static_world(SCHEME, ids)
        plan = FaultPlan(seed=seed).drop(loss)
        session = ReliableSession(tables, server_table, topology, plan=plan)
        outcome = session.multicast([f"key-{i}" for i in range(6)])
        rows.append(
            {
                "loss_rate": loss,
                "delivery_ratio": outcome.delivery_ratio,
                **outcome.stats.as_row(),
            }
        )
    return rows


class TestSeededDeterminism:
    def test_two_sweeps_export_byte_identical_files(self, tmp_path):
        first, second = tmp_path / "a.csv", tmp_path / "b.csv"
        write_repair_report(str(first), sweep_rows())
        write_repair_report(str(second), sweep_rows())
        assert first.read_bytes() == second.read_bytes()

    def test_different_seed_changes_the_run(self, tmp_path):
        first, second = tmp_path / "a.csv", tmp_path / "b.csv"
        write_repair_report(str(first), sweep_rows(seed=7))
        write_repair_report(str(second), sweep_rows(seed=8))
        assert first.read_bytes() != second.read_bytes()

    def test_plan_reset_reproduces_an_outcome(self):
        rng = np.random.default_rng(1)
        ids = [
            Id(t)
            for t in sorted(
                {tuple(int(rng.integers(0, 4)) for _ in range(3)) for _ in range(20)}
            )
        ]
        plan = FaultPlan(seed=11).drop(0.2).delay(0.1, jitter=20.0)
        results = []
        for _ in range(2):
            topology, _, tables, server_table = make_static_world(SCHEME, ids)
            session = ReliableSession(
                tables, server_table, topology, plan=plan.reset()
            )
            outcome = session.multicast(["a", "b", "c"])
            results.append((outcome.stats.as_row(), dict(outcome.delivered)))
        assert results[0] == results[1]


class TestRepairReportWriter:
    def test_header_and_float_formatting(self, tmp_path):
        path = tmp_path / "r.csv"
        write_repair_report(
            str(path), [{"loss_rate": 0.1, "delivery_ratio": 1.0, "nacks": 3}]
        )
        lines = path.read_text().splitlines()
        assert lines[0] == "loss_rate,delivery_ratio,nacks"
        assert lines[1] == "0.100000,1.000000,3"

    def test_rejects_inconsistent_columns(self, tmp_path):
        with pytest.raises(ValueError):
            write_repair_report(
                str(tmp_path / "bad.csv"), [{"a": 1}, {"b": 2}]
            )

    def test_empty_report_writes_empty_file(self, tmp_path):
        """A zero-row sweep exports cleanly (header-only with an explicit
        header, empty otherwise) — see tests/test_metrics.py for the full
        edge-case coverage."""
        path = tmp_path / "empty.csv"
        write_repair_report(str(path), [])
        assert path.read_text() == ""
