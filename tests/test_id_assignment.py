"""Tests for the Section-3.1 user ID assignment protocol."""

import numpy as np
import pytest

from repro.core.id_assignment import (
    IdAssigner,
    PAPER_THRESHOLDS,
    complete_user_id,
)
from repro.core.id_tree import IdTree
from repro.core.ids import Id, IdScheme, NULL_ID
from repro.core.neighbor_table import UserRecord
from repro.net.planetlab import MatrixTopology

SCHEME = IdScheme(num_digits=3, base=4)


def cluster_topology(num_clusters=3, per_cluster=6, gap=200.0, lan=2.0):
    """Hosts in well-separated latency clusters: intra-cluster RTT ~ lan,
    inter-cluster ~ gap.  Perfect for testing the percentile rule."""
    n = num_clusters * per_cluster
    matrix = np.full((n, n), gap)
    for c in range(num_clusters):
        lo, hi = c * per_cluster, (c + 1) * per_cluster
        matrix[lo:hi, lo:hi] = lan
    np.fill_diagonal(matrix, 0.0)
    return MatrixTopology(matrix, access_rtts=[0.5] * n), per_cluster


class TestConstruction:
    def test_threshold_count_must_match_d(self):
        with pytest.raises(ValueError):
            IdAssigner(SCHEME, (100.0,))  # needs D-1 = 2
        IdAssigner(SCHEME, (100.0, 10.0))

    def test_thresholds_positive(self):
        with pytest.raises(ValueError):
            IdAssigner(SCHEME, (100.0, 0.0))

    def test_percentile_bounds(self):
        with pytest.raises(ValueError):
            IdAssigner(SCHEME, (100.0, 10.0), percentile=0)
        with pytest.raises(ValueError):
            IdAssigner(SCHEME, (100.0, 10.0), percentile=101)

    def test_collect_target_positive(self):
        with pytest.raises(ValueError):
            IdAssigner(SCHEME, (100.0, 10.0), collect_target=0)

    def test_paper_defaults(self):
        assert PAPER_THRESHOLDS == (150.0, 30.0, 9.0, 3.0)


class _OracleQuery:
    """Query service answering from global knowledge of the population."""

    def __init__(self, records):
        self.records = records
        self.queries = 0

    def __call__(self, responder, prefix):
        self.queries += 1
        return [
            r
            for r in self.records
            if prefix.is_prefix_of(r.user_id) and r.user_id != responder.user_id
        ]


class TestDigitDetermination:
    def test_joiner_lands_near_its_cluster(self):
        topology, per = cluster_topology()
        # Population: cluster 0 users share prefix [0], cluster 1 share [1].
        records = []
        for c in range(2):
            for i in range(per - 1):
                uid = Id([c, i % SCHEME.base, 0])
                records.append(UserRecord(uid, c * per + i, access_rtt=0.5))
        assigner = IdAssigner(SCHEME, (50.0, 10.0))
        query = _OracleQuery(records)
        # A joiner from cluster 1 (host per+5) should pick digit 1.
        outcome = assigner.determine_prefix(
            per + per - 1, 0.5, topology, query, records[0]
        )
        assert len(outcome.determined_prefix) >= 1
        assert outcome.determined_prefix[0] == 1

    def test_far_joiner_stops_and_defers_to_server(self):
        topology, per = cluster_topology(num_clusters=3)
        records = [
            UserRecord(Id([0, i, 0]), i, access_rtt=0.5) for i in range(per)
        ]
        assigner = IdAssigner(SCHEME, (50.0, 10.0))
        query = _OracleQuery(records)
        # Joiner in cluster 2: RTT ~200ms to everyone known -> above R1.
        outcome = assigner.determine_prefix(
            2 * per, 0.5, topology, query, records[0]
        )
        assert outcome.determined_prefix == NULL_ID
        assert outcome.decisions[0].chosen is None

    def test_percentile_rule_tolerates_outliers(self):
        # One far-away user inside an otherwise close subtree must not
        # veto the digit when F < 100 (the reason the paper avoids the
        # 100-percentile).
        n = 12
        matrix = np.full((n, n), 5.0)
        matrix[0, 1:] = matrix[1:, 0] = 500.0  # host 0 is an outlier
        np.fill_diagonal(matrix, 0.0)
        topology = MatrixTopology(matrix, access_rtts=[0.5] * n)
        records = [
            UserRecord(Id([0, i % 4, 0]), host, access_rtt=0.5)
            for i, host in enumerate(range(n - 1))
        ]
        assigner = IdAssigner(SCHEME, (50.0, 10.0), percentile=90.0)
        query = _OracleQuery(records)
        outcome = assigner.determine_prefix(
            n - 1, 0.5, topology, query, records[1]
        )
        assert outcome.determined_prefix[0] == 0

    def test_queries_are_counted(self):
        topology, per = cluster_topology()
        records = [
            UserRecord(Id([0, i % 4, 0]), i, access_rtt=0.5)
            for i in range(per)
        ]
        assigner = IdAssigner(SCHEME, (50.0, 10.0))
        query = _OracleQuery(records)
        outcome = assigner.determine_prefix(1, 0.5, topology, query, records[0])
        assert outcome.total_queries >= 1
        assert query.queries == outcome.total_queries


class TestServerCompletion:
    def test_fresh_subtree_digit(self):
        tree = IdTree(SCHEME, [Id([0, 0, 0]), Id([1, 0, 0])])
        rng = np.random.default_rng(0)
        uid = complete_user_id(tree, NULL_ID, rng)
        SCHEME.validate_user_id(uid)
        # the new user must start a fresh level-1 subtree
        assert uid[0] not in (0, 1)

    def test_full_prefix_gets_unique_last_digit(self):
        tree = IdTree(SCHEME, [Id([2, 2, 0]), Id([2, 2, 1])])
        uid = complete_user_id(tree, Id([2, 2]), np.random.default_rng(0))
        assert uid.prefix(2) == Id([2, 2])
        assert uid not in tree.user_ids

    def test_footnote3_fallback_one_level(self):
        # Every digit at position 1 under [3] taken -> modify position 0.
        users = [Id([3, j, 0]) for j in range(SCHEME.base)]
        tree = IdTree(SCHEME, users)
        uid = complete_user_id(tree, Id([3]), np.random.default_rng(1))
        assert uid not in tree.user_ids
        # fell back to a fresh level-1 subtree
        assert not tree.has_node(uid.prefix(1))

    def test_unique_when_space_nearly_full(self):
        scheme = IdScheme(2, 2)  # only 4 possible IDs
        tree = IdTree(scheme, [Id([0, 0]), Id([0, 1]), Id([1, 0])])
        uid = complete_user_id(tree, Id([1]), np.random.default_rng(2))
        assert uid == Id([1, 1])

    def test_exhausted_space_raises(self):
        scheme = IdScheme(1, 2)
        tree = IdTree(scheme, [Id([0]), Id([1])])
        with pytest.raises(RuntimeError):
            complete_user_id(tree, NULL_ID, np.random.default_rng(3))


class TestFootnote3Regression:
    """Pin every branch of footnote 3's server-side fallback.

    The paper's footnote: when every digit at the preferred position is
    taken, the server re-assigns earlier digits (deepest first) to carve
    out a fresh subtree, and as a last resort picks any globally unique
    ID.  These tests freeze the observable contract of each branch so a
    refactor of ``complete_user_id`` cannot silently change which subtree
    a colliding joiner lands in.
    """

    def test_server_assigns_final_digit_when_preferred_digit_taken(self):
        # Determined prefix has length D-1: the only position left is the
        # final digit, and the preferred-digit collision is resolved by
        # the server assigning a free final digit in the same subtree.
        tree = IdTree(SCHEME, [Id([2, 2, 0]), Id([2, 2, 1])])
        for seed in range(8):
            uid = complete_user_id(tree, Id([2, 2]), np.random.default_rng(seed))
            assert uid.prefix(2) == Id([2, 2])  # stays in the subtree
            assert uid[2] in (2, 3)             # one of the free digits
            assert uid not in tree.user_ids

    def test_fallback_modifies_deepest_digit_first(self):
        # All final digits under [3,2] taken; level 1 under [3] still has
        # room.  Footnote 3 modifies u.ID[l-1] first: the result must stay
        # under [3] rather than jump to a fresh level-1 subtree.
        users = [Id([3, 2, j]) for j in range(SCHEME.base)]
        tree = IdTree(SCHEME, users)
        uid = complete_user_id(tree, Id([3, 2]), np.random.default_rng(0))
        assert uid[0] == 3                      # deepest level modified first
        assert uid[1] != 2                      # fresh level-2 subtree
        assert not tree.has_node(uid.prefix(2))
        assert uid[2] == 0                      # zero-filled below the stem

    def test_fallback_backtracks_through_saturated_levels(self):
        # Levels l and l-1 both saturated: every level-2 subtree under [3]
        # is populated, so the fallback must reach back to position 0.
        users = [Id([3, j, 0]) for j in range(SCHEME.base)]
        tree = IdTree(SCHEME, users)
        uid = complete_user_id(tree, Id([3]), np.random.default_rng(1))
        assert uid[0] != 3                      # left the saturated subtree
        assert not tree.has_node(uid.prefix(1))  # sole occupant, level 1
        assert uid.digits[1:] == (0, 0)

    def test_last_resort_unique_random_id(self):
        # Every level along the prefix is saturated (all level-0 digits
        # and all level-1 digits under [3] taken): only the global-unique
        # branch remains.  The seeded draw makes the pick deterministic.
        users = [Id([3, j, 0]) for j in range(SCHEME.base)]
        users += [Id([j, 0, 0]) for j in range(SCHEME.base) if j != 3]
        tree = IdTree(SCHEME, users)
        uid = complete_user_id(tree, Id([3]), np.random.default_rng(2))
        SCHEME.validate_user_id(uid)
        assert uid not in tree.user_ids
        # An existing subtree was reused: no fresh digit existed anywhere
        # along the prefix, so the ID shares some populated level-1 node.
        assert tree.has_node(uid.prefix(1))

    def test_fallback_is_deterministic_in_the_rng(self):
        users = [Id([3, 2, j]) for j in range(SCHEME.base)]
        tree = IdTree(SCHEME, users)
        picks = {
            complete_user_id(tree, Id([3, 2]), np.random.default_rng(7))
            for _ in range(5)
        }
        assert len(picks) == 1  # same tree + same seed -> same ID


class TestEndToEndAssignment:
    def test_ids_unique_across_many_joins(self, gtitm):
        from .conftest import make_group

        group = make_group(gtitm, 40, seed=11)
        assert len(set(group.user_ids)) == 40

    def test_same_stub_domain_users_share_prefixes(self, gtitm, gtitm_group):
        """Topology-awareness: users behind the same stub domain should
        share clearly more ID digits than random pairs would."""
        from collections import defaultdict

        by_domain = defaultdict(list)
        for uid, rec in gtitm_group.records.items():
            by_domain[gtitm.stub_domain_of_host(rec.host)].append(uid)
        same, diff = [], []
        ids = list(gtitm_group.user_ids)
        for i, a in enumerate(ids):
            for b in ids[i + 1 :]:
                da = gtitm.stub_domain_of_host(gtitm_group.records[a].host)
                db = gtitm.stub_domain_of_host(gtitm_group.records[b].host)
                (same if da == db else diff).append(a.common_prefix_len(b))
        if same:  # population may have singleton domains
            assert np.mean(same) > np.mean(diff) + 0.5

    def test_same_continent_users_share_first_digit(self, planetlab, planetlab_group):
        agree = 0
        total = 0
        ids = list(planetlab_group.user_ids)
        for i, a in enumerate(ids):
            for b in ids[i + 1 :]:
                ca = planetlab.host_continent(planetlab_group.records[a].host)
                cb = planetlab.host_continent(planetlab_group.records[b].host)
                if ca == cb and ca in ("asia", "australia"):
                    total += 1
                    agree += a[0] == b[0]
        if total >= 5:
            assert agree / total > 0.5
