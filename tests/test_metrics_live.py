"""Metrics export under live-service concurrency (docs/OBSERVABILITY.md).

The batch exporters are already pinned by the trace lane; this file pins
the *live* half the soak harness depends on: scraping the active
registry mid-session — while the service still has timers queued and
frames on the wire — must yield well-formed Prometheus text and JSONL
with counters monotonic from scrape to scrape, and the service's
``GET /metrics`` endpoint must serve the same exposition over HTTP.
"""

from __future__ import annotations

import json
import socket

import pytest

from repro.net import TransitStubParams, TransitStubTopology
from repro.service import RekeyService, ScrapeLoop
from repro.trace import tracing

pytestmark = pytest.mark.trace

SEED = 7
HOSTS = 17
PARAMS = TransitStubParams(
    transit_domains=3, transit_per_domain=3, stubs_per_transit=2, stub_size=3
)


@pytest.fixture()
def live_scrapes(tmp_path):
    """The soak harness's scrape loop, driven mid-session: one scrape
    after every workload step, the service still holding queued timers
    at scrape time for every non-final scrape."""
    loop = ScrapeLoop(out_dir=str(tmp_path))
    with tracing(seed=SEED):
        topology = TransitStubTopology(
            num_hosts=HOSTS, params=PARAMS, seed=SEED
        )
        service = RekeyService(
            topology, server_host=0, seed=SEED, use_sockets=False
        )
        service.start()
        pending_at_scrape = []
        try:
            for i, host in enumerate((1, 2, 3, 4)):
                service.join(host, delay=1.0 + 5000.0 * i)
                service.end_interval(delay=5000.0 * (i + 1))
            for i in range(4):
                # Drain to the middle of interval i: this step's events
                # have run, later intervals are still queued.
                service.drain(until=2500.0 + 5000.0 * i)
                pending_at_scrape.append(service.scheduler.pending)
                loop.scrape()
            service.drain()
            loop.scrape()
        finally:
            service.stop()
    return loop, pending_at_scrape, tmp_path


def parse_samples(text: str) -> dict:
    """name{labels} -> float value, skipping comment lines."""
    samples = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        key, value = line.rsplit(" ", 1)
        samples[key] = float(value)
    return samples


class TestPrometheusMidSession:
    def test_scrapes_happened_mid_session(self, live_scrapes):
        loop, pending_at_scrape, _ = live_scrapes
        assert len(loop.prometheus_snapshots) == 5
        assert all(n > 0 for n in pending_at_scrape)

    def test_text_is_well_formed(self, live_scrapes):
        loop, _, _ = live_scrapes
        for text in loop.prometheus_snapshots:
            assert text.endswith("\n")
            seen_types = {}
            for line in text.splitlines():
                if line.startswith("# TYPE "):
                    _, _, family, kind = line.split(" ")
                    assert kind in ("counter", "gauge", "histogram")
                    # One TYPE declaration per family.
                    assert family not in seen_types
                    seen_types[family] = kind
                elif line and not line.startswith("#"):
                    name, value = line.rsplit(" ", 1)
                    float(value)  # parses
                    family = name.split("{")[0]
                    base = (
                        family.rsplit("_", 1)[0]
                        if family.endswith(("_bucket", "_sum", "_count"))
                        else family
                    )
                    assert base in seen_types or family in seen_types

    def test_counters_are_monotonic_across_scrapes(self, live_scrapes):
        loop, _, _ = live_scrapes
        snapshots = [parse_samples(t) for t in loop.prometheus_snapshots]
        moved = False
        for earlier, later in zip(snapshots, snapshots[1:]):
            for key, value in earlier.items():
                assert later.get(key, 0.0) >= value, key
            if any(later[k] > earlier.get(k, 0.0) for k in later):
                moved = True
        assert moved  # the session was actually producing events

    def test_export_file_matches_the_last_scrape(self, live_scrapes):
        loop, _, tmp_path = live_scrapes
        written = (tmp_path / "metrics.prom").read_text()
        assert written == loop.prometheus_snapshots[-1]


class TestJsonlMidSession:
    def test_every_line_parses_and_is_typed(self, live_scrapes):
        loop, _, _ = live_scrapes
        assert len(loop.jsonl_snapshots) == 5
        for snapshot in loop.jsonl_snapshots:
            assert snapshot
            for line in snapshot:
                record = json.loads(line)
                assert record["kind"] in ("counter", "gauge", "histogram")
                assert isinstance(record["name"], str)
                assert isinstance(record["labels"], dict)

    def test_jsonl_counters_match_prometheus_monotonicity(self, live_scrapes):
        loop, _, _ = live_scrapes
        histories = []
        for snapshot in loop.jsonl_snapshots:
            counters = {
                (r["name"], tuple(sorted(r["labels"].items()))): r["value"]
                for r in map(json.loads, snapshot)
                if r["kind"] == "counter"
            }
            histories.append(counters)
        for earlier, later in zip(histories, histories[1:]):
            for key, value in earlier.items():
                assert later.get(key, 0) >= value, key


class TestLiveHttpEndpoint:
    def test_get_metrics_serves_the_registry(self):
        with tracing(seed=SEED):
            topology = TransitStubTopology(
                num_hosts=HOSTS, params=PARAMS, seed=SEED
            )
            service = RekeyService(topology, server_host=0, seed=SEED)
            service.start()
            try:
                port = service.start_metrics_http()
                if port is None:
                    pytest.skip("sandbox without loopback sockets")
                service.join(1, delay=1.0)
                service.end_interval(delay=5000.0)
                service.drain()

                async def fetch():
                    import asyncio

                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", port
                    )
                    writer.write(
                        b"GET /metrics HTTP/1.1\r\n"
                        b"Host: 127.0.0.1\r\n\r\n"
                    )
                    await writer.drain()
                    data = await reader.read()
                    writer.close()
                    return data

                response = service.scheduler.run_coro(fetch())
                head, _, body = response.partition(b"\r\n\r\n")
                assert b"200 OK" in head.splitlines()[0]
                text = body.decode("utf-8")
                assert text == service.scrape_prometheus()
                assert parse_samples(text)  # non-empty, parseable
            finally:
                service.stop()

    def test_scrape_without_trace_context_degrades_gracefully(self):
        loop = ScrapeLoop()
        assert loop.scrape() == ""
        assert loop.prometheus_snapshots == []
