"""Unit tests for the batch-interval sweep driver."""

import pytest

from repro.experiments.interval_sweep import IntervalPoint, run_interval_sweep


class TestIntervalSweep:
    @pytest.fixture(scope="class")
    def sweep(self, gtitm):
        return run_interval_sweep(
            num_users=40,
            intervals=(16.0, 128.0),
            rate_per_s=0.3,
            horizon_s=512.0,
            seed=2,
            topology=gtitm,
        )

    def test_points_cover_requested_intervals(self, sweep):
        assert [p.interval_s for p in sweep.points] == [16.0, 128.0]

    def test_longer_intervals_batch_more_requests(self, sweep):
        short, long = sweep.points
        assert long.mean_requests_per_interval > short.mean_requests_per_interval

    def test_amortization(self, sweep):
        short, long = sweep.points
        assert long.cost_per_request <= short.cost_per_request

    def test_render(self, sweep):
        text = sweep.render()
        assert "Interval sweep" in text
        assert "cost/request" in text

    def test_costs_nonnegative(self, sweep):
        for p in sweep.points:
            assert p.mean_cost_per_interval >= 0
            assert p.cost_per_request >= 0
