"""Tests for the modified key tree and its batch rekeying (Section 2.4)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ids import Id, IdScheme, NULL_ID
from repro.crypto import AuthenticationError
from repro.keytree.keys import RekeyMessage
from repro.keytree.modified_tree import ModifiedKeyTree, apply_rekey_message

FIG4_SCHEME = IdScheme(num_digits=2, base=3)
FIG4_USERS = [Id([0, 0]), Id([0, 1]), Id([2, 0]), Id([2, 1]), Id([2, 2])]


def settled_fig4_tree(crypto=False):
    tree = ModifiedKeyTree(
        FIG4_SCHEME, crypto=crypto, rng=np.random.default_rng(0)
    )
    for uid in FIG4_USERS:
        tree.request_join(uid)
    tree.process_batch()
    return tree


class TestFig4Example:
    """The paper's running example: u5 = [2,2] leaves; the server changes
    k1-5 -> k1-4 and k345 -> k34 and generates exactly four encryptions:
    {k1-4}_k12, {k1-4}_k34, {k34}_k3, {k34}_k4."""

    def test_four_encryptions_on_u5_leave(self):
        tree = settled_fig4_tree()
        tree.request_leave(Id([2, 2]))
        message = tree.process_batch()
        assert message.rekey_cost == 4

    def test_encryption_ids_match_paper(self):
        tree = settled_fig4_tree()
        tree.request_leave(Id([2, 2]))
        message = tree.process_batch()
        ids = sorted((e.new_key_id, e.encrypting_key_id) for e in message.encryptions)
        assert ids == [
            (NULL_ID, Id([0])),      # {k1-4}_k12
            (NULL_ID, Id([2])),      # {k1-4}_k34
            (Id([2]), Id([2, 0])),   # {k34}_k3
            (Id([2]), Id([2, 1])),   # {k34}_k4
        ]

    def test_updated_keys_get_new_versions(self):
        tree = settled_fig4_tree()
        v_root = tree.node_version(NULL_ID)
        v_2 = tree.node_version(Id([2]))
        v_0 = tree.node_version(Id([0]))
        tree.request_leave(Id([2, 2]))
        tree.process_batch()
        assert tree.node_version(NULL_ID) == v_root + 1
        assert tree.node_version(Id([2])) == v_2 + 1
        assert tree.node_version(Id([0])) == v_0  # untouched branch

    def test_user_holds_keys_on_its_path(self):
        # "user u5 is given the three keys on the path from its u-node to
        # the root: k5, k345, and k1-5"
        tree = settled_fig4_tree()
        path = tree.path_key_ids(Id([2, 2]))
        assert path == [Id([2, 2]), Id([2]), NULL_ID]


class TestStructure:
    def test_structure_matches_id_tree(self):
        tree = settled_fig4_tree()
        assert tree.has_node(NULL_ID)
        assert tree.has_node(Id([0]))
        assert tree.has_node(Id([2]))
        assert not tree.has_node(Id([1]))
        for uid in FIG4_USERS:
            assert tree.has_node(uid)

    def test_leave_prunes_childless_knodes(self):
        tree = settled_fig4_tree()
        tree.request_leave(Id([0, 0]))
        tree.request_leave(Id([0, 1]))
        tree.process_batch()
        assert not tree.has_node(Id([0]))

    def test_join_creates_missing_knodes(self):
        tree = settled_fig4_tree()
        tree.request_join(Id([1, 0]))
        tree.process_batch()
        assert tree.has_node(Id([1]))

    def test_duplicate_join_rejected(self):
        tree = settled_fig4_tree()
        with pytest.raises(ValueError):
            tree.request_join(Id([0, 0]))

    def test_leave_of_unknown_rejected(self):
        tree = settled_fig4_tree()
        with pytest.raises(ValueError):
            tree.request_leave(Id([1, 1]))

    def test_double_leave_rejected(self):
        tree = settled_fig4_tree()
        tree.request_leave(Id([0, 0]))
        with pytest.raises(ValueError):
            tree.request_leave(Id([0, 0]))

    def test_empty_batch_is_free(self):
        tree = settled_fig4_tree()
        message = tree.process_batch()
        assert message.rekey_cost == 0


class TestBatchSemantics:
    def test_join_rekeys_whole_path(self):
        tree = settled_fig4_tree()
        tree.request_join(Id([0, 2]))  # a new user under subtree [0]
        message = tree.process_batch()
        # updated nodes: root (2 children) + [0] (now 3 children) = 5 encs
        assert message.rekey_cost == 2 + 3

    def test_batch_join_and_leave_together(self):
        tree = settled_fig4_tree()
        tree.request_join(Id([1, 0]))
        tree.request_leave(Id([2, 2]))
        message = tree.process_batch()
        # updated: root (3 children now), [1] (1 child), [2] (2 children)
        assert message.rekey_cost == 3 + 1 + 2

    def test_encryptions_use_new_child_keys(self):
        """When both a k-node and its child update, the encryption uses
        the child's NEW version."""
        tree = settled_fig4_tree()
        tree.request_leave(Id([2, 2]))
        message = tree.process_batch()
        for enc in message.encryptions:
            assert enc.encrypting_version == tree.node_version(
                enc.encrypting_key_id
            )

    def test_batch_of_everything_leaves_empty_tree(self):
        tree = settled_fig4_tree()
        for uid in FIG4_USERS:
            tree.request_leave(uid)
        message = tree.process_batch()
        assert message.rekey_cost == 0
        assert tree.num_users == 0
        assert not tree.has_node(NULL_ID)


@st.composite
def churn_scenarios(draw):
    scheme = IdScheme(3, 3)
    all_ids = [Id((a, b, c)) for a in range(3) for b in range(3) for c in range(3)]
    initial = draw(st.sets(st.sampled_from(all_ids), min_size=2, max_size=15))
    joins = draw(
        st.sets(
            st.sampled_from([u for u in all_ids if u not in initial]),
            max_size=6,
        )
    )
    leaves = draw(st.sets(st.sampled_from(sorted(initial)), max_size=6))
    return scheme, sorted(initial), sorted(joins), sorted(leaves)


class TestCryptoModeProperties:
    @given(churn_scenarios())
    @settings(max_examples=25, deadline=None)
    def test_remaining_users_recover_all_path_keys(self, scenario):
        scheme, initial, joins, leaves = scenario
        tree = ModifiedKeyTree(scheme, crypto=True, rng=np.random.default_rng(1))
        for uid in initial:
            tree.request_join(uid)
        tree.process_batch()
        stores = {uid: tree.user_keystore(uid) for uid in initial}
        for uid in joins:
            tree.request_join(uid)
            stores[uid] = tree.user_keystore(uid)
        for uid in leaves:
            tree.request_leave(uid)
        message = tree.process_batch()
        for uid in sorted(set(initial + joins) - set(leaves)):
            apply_rekey_message(stores[uid], message)
            for key_id in tree.path_key_ids(uid):
                version = tree.node_version(key_id)
                assert stores[uid].has(key_id, version), (uid, key_id)
                assert stores[uid].get(key_id, version) == tree.node_secret(key_id)

    @given(churn_scenarios())
    @settings(max_examples=25, deadline=None)
    def test_departed_users_recover_no_new_keys(self, scenario):
        """Forward secrecy of the batch: a departed user's old keys cannot
        decrypt any encryption of the new rekey message."""
        scheme, initial, joins, leaves = scenario
        if not leaves:
            return
        tree = ModifiedKeyTree(scheme, crypto=True, rng=np.random.default_rng(2))
        for uid in initial:
            tree.request_join(uid)
        tree.process_batch()
        stores = {uid: tree.user_keystore(uid) for uid in initial}
        for uid in joins:
            tree.request_join(uid)
        for uid in leaves:
            tree.request_leave(uid)
        message = tree.process_batch()
        for uid in leaves:
            used = apply_rekey_message(stores[uid], message)
            assert used == []
            # in particular: no new group key
            if tree.has_node(NULL_ID):
                assert not stores[uid].has(NULL_ID, tree.group_key_version())

    def test_counting_mode_has_no_secrets(self):
        tree = settled_fig4_tree(crypto=False)
        with pytest.raises(RuntimeError):
            tree.node_secret(NULL_ID)
        tree.request_leave(Id([2, 2]))
        message = tree.process_batch()
        with pytest.raises(ValueError):
            from repro.crypto.keystore import KeyStore

            apply_rekey_message(KeyStore(), message)
