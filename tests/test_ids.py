"""Unit and property tests for the ID value types (Section 2.1)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.ids import Id, IdScheme, NULL_ID, PAPER_SCHEME

digits = st.lists(st.integers(min_value=0, max_value=255), max_size=8)


class TestIdBasics:
    def test_null_id_is_empty(self):
        assert len(NULL_ID) == 0
        assert NULL_ID.is_null
        assert str(NULL_ID) == "[]"

    def test_str_matches_paper_notation(self):
        assert str(Id([0, 2])) == "[0,2]"

    def test_digits_are_indexable(self):
        uid = Id([3, 1, 4])
        assert uid[0] == 3
        assert uid[2] == 4
        assert list(uid) == [3, 1, 4]

    def test_slice_returns_id(self):
        assert Id([3, 1, 4])[:2] == Id([3, 1])

    def test_negative_digit_rejected(self):
        with pytest.raises(ValueError):
            Id([1, -2])

    def test_equality_and_hash(self):
        assert Id([1, 2]) == Id([1, 2])
        assert Id([1, 2]) != Id([1, 2, 0])
        assert len({Id([1, 2]), Id([1, 2]), Id([2, 1])}) == 2

    def test_ordering_is_lexicographic(self):
        assert Id([0, 1]) < Id([0, 2])
        assert Id([0]) < Id([0, 0])

    def test_parent(self):
        assert Id([1, 2, 3]).parent() == Id([1, 2])

    def test_parent_of_null_raises(self):
        with pytest.raises(ValueError):
            NULL_ID.parent()

    def test_extend(self):
        assert NULL_ID.extend(5) == Id([5])
        assert Id([1]).extend(2) == Id([1, 2])


class TestPrefixAlgebra:
    def test_id_is_prefix_of_itself(self):
        # "Note that an ID is a prefix of itself" (Section 2.1)
        uid = Id([1, 2, 3])
        assert uid.is_prefix_of(uid)

    def test_null_is_prefix_of_everything(self):
        # "a null string is a prefix of any ID"
        assert NULL_ID.is_prefix_of(Id([9, 9]))
        assert NULL_ID.is_prefix_of(NULL_ID)

    def test_proper_prefix(self):
        assert Id([1]).is_prefix_of(Id([1, 2]))
        assert not Id([2]).is_prefix_of(Id([1, 2]))
        assert not Id([1, 2, 3]).is_prefix_of(Id([1, 2]))

    def test_prefix_negative_length_is_null(self):
        # Table 1: u.ID[0:i] is a null string if i < 0.
        assert Id([1, 2]).prefix(0) == NULL_ID
        assert Id([1, 2]).prefix(-1) == NULL_ID

    def test_prefix_lengths(self):
        uid = Id([4, 5, 6])
        assert uid.prefix(1) == Id([4])
        assert uid.prefix(2) == Id([4, 5])
        assert uid.prefix(3) == uid

    def test_shares_prefix(self):
        a, b = Id([1, 2, 3]), Id([1, 2, 9])
        assert a.shares_prefix(b, 2)
        assert not a.shares_prefix(b, 3)
        assert a.shares_prefix(b, 0)

    def test_common_prefix_len(self):
        assert Id([1, 2, 3]).common_prefix_len(Id([1, 2, 9])) == 2
        assert Id([5]).common_prefix_len(Id([6])) == 0
        assert Id([7, 8]).common_prefix_len(Id([7, 8])) == 2

    @given(digits, digits)
    def test_prefix_of_is_antisymmetric_up_to_equality(self, a, b):
        ida, idb = Id(a), Id(b)
        if ida.is_prefix_of(idb) and idb.is_prefix_of(ida):
            assert ida == idb

    @given(digits, digits)
    def test_common_prefix_is_mutual_prefix(self, a, b):
        ida, idb = Id(a), Id(b)
        n = ida.common_prefix_len(idb)
        common = ida.prefix(n)
        assert common.is_prefix_of(ida)
        assert common.is_prefix_of(idb)
        # maximality: one more digit no longer divides both
        if n < min(len(ida), len(idb)):
            assert ida[n] != idb[n]

    @given(digits, st.integers(min_value=0, max_value=8))
    def test_prefix_roundtrip(self, a, n):
        ida = Id(a)
        p = ida.prefix(n)
        assert p.is_prefix_of(ida)
        assert len(p) == min(n, len(ida))


class TestIdScheme:
    def test_paper_scheme(self):
        assert PAPER_SCHEME.num_digits == 5
        assert PAPER_SCHEME.base == 256

    def test_validate_user_id(self):
        scheme = IdScheme(3, 4)
        scheme.validate_user_id(Id([0, 3, 2]))
        with pytest.raises(ValueError):
            scheme.validate_user_id(Id([0, 1]))  # too short
        with pytest.raises(ValueError):
            scheme.validate_user_id(Id([0, 1, 4]))  # digit out of base

    def test_validate_prefix(self):
        scheme = IdScheme(3, 4)
        scheme.validate_prefix(NULL_ID)
        scheme.validate_prefix(Id([3, 3, 3]))
        with pytest.raises(ValueError):
            scheme.validate_prefix(Id([0, 0, 0, 0]))

    def test_first_user_id(self):
        assert IdScheme(3, 4).first_user_id() == Id([0, 0, 0])

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            IdScheme(0, 4)
        with pytest.raises(ValueError):
            IdScheme(3, 1)

    def test_random_user_id_valid(self):
        import numpy as np

        scheme = IdScheme(4, 7)
        rng = np.random.default_rng(0)
        for _ in range(20):
            scheme.validate_user_id(scheme.random_user_id(rng))

    def test_is_user_id(self):
        scheme = IdScheme(2, 3)
        assert scheme.is_user_id(Id([2, 2]))
        assert not scheme.is_user_id(Id([2]))
        assert not scheme.is_user_id(Id([3, 0]))
