"""End-to-end tests of the SecureGroup application layer: real keys, real
split rekey delivery, forward/backward secrecy."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.group import SecureGroup
from repro.net import TransitStubParams, TransitStubTopology

PARAMS = TransitStubParams(
    transit_domains=3, transit_per_domain=3, stubs_per_transit=2, stub_size=6
)


@pytest.fixture(scope="module")
def topology():
    return TransitStubTopology(num_hosts=40, params=PARAMS, seed=21)


def build(topology, n, seed=0):
    group = SecureGroup(topology, server_host=topology.num_hosts - 1, seed=seed)
    members = [group.join(h) for h in range(n)]
    group.end_interval()
    return group, members


class TestBasics:
    def test_members_hold_consistent_keys_after_interval(self, topology):
        group, _ = build(topology, 12)
        assert group.verify_member_keys() == []

    def test_data_roundtrip_between_members(self, topology):
        group, members = build(topology, 6)
        blob = members[0].seal(b"agenda item 1")
        for m in members[1:]:
            assert m.open(blob) == b"agenda item 1"

    def test_sealed_data_is_versioned(self, topology):
        group, members = build(topology, 4)
        v = members[0].group_key_version
        blob = members[0].seal(b"x")
        assert int.from_bytes(blob[:4], "big") == v

    def test_seal_requires_group_key(self, topology):
        from repro.core.group import GroupMember
        from repro.crypto.keystore import KeyStore
        from repro.core.ids import Id

        orphan = GroupMember(Id([0] * 5), 0, KeyStore())
        with pytest.raises(RuntimeError):
            orphan.seal(b"no key")

    def test_tampered_data_rejected(self, topology):
        group, members = build(topology, 4)
        blob = bytearray(members[0].seal(b"payload"))
        blob[-1] ^= 1
        from repro.crypto import AuthenticationError

        with pytest.raises(AuthenticationError):
            members[1].open(bytes(blob))

    def test_malformed_blob_rejected(self, topology):
        group, members = build(topology, 2)
        with pytest.raises(ValueError):
            members[0].open(b"xy")


class TestSecrecy:
    def test_forward_secrecy_on_leave(self, topology):
        group, members = build(topology, 10)
        leaver = members[3]
        group.leave(leaver.user_id)
        group.end_interval()
        blob = members[0].seal(b"after departure")
        with pytest.raises(KeyError):
            leaver.open(blob)
        # remaining members unaffected
        assert members[1].open(blob) == b"after departure"
        assert group.verify_member_keys() == []

    def test_departed_member_keeps_old_traffic(self, topology):
        """Batch rekeying changes keys at interval boundaries: messages
        sealed before the leave remain readable by the leaver."""
        group, members = build(topology, 8)
        old_blob = members[0].seal(b"old traffic")
        leaver = members[2]
        group.leave(leaver.user_id)
        group.end_interval()
        assert leaver.open(old_blob) == b"old traffic"

    def test_backward_secrecy_at_interval_granularity(self, topology):
        """Backward secrecy under batch rekeying is per interval: a joiner
        cannot read traffic sealed before the last rekey preceding its
        join."""
        group, members = build(topology, 8)
        old_blob = members[0].seal(b"pre-join secret")
        group.leave(members[7].user_id)  # force a key change
        group.end_interval()
        newbie = group.join(30)
        group.end_interval()
        with pytest.raises(KeyError):
            newbie.open(old_blob)
        assert newbie.open(members[0].seal(b"current")) == b"current"

    def test_joiner_reads_current_interval_traffic(self, topology):
        """At join the server hands over the *current* group key (Section
        3.1), so traffic of the join's own interval is readable — the
        paper's access-control granularity is the rekey interval."""
        group, members = build(topology, 8)
        blob = members[0].seal(b"same interval")
        newbie = group.join(30)
        assert newbie.open(blob) == b"same interval"

    def test_rekey_message_alone_useless_to_outsider(self, topology):
        """An eavesdropper holding the full rekey message but no keys
        recovers nothing."""
        group, members = build(topology, 6)
        group.leave(members[0].user_id)
        message = group.key_tree  # capture via a fresh interval below
        report = group.end_interval()
        from repro.crypto.keystore import KeyStore
        from repro.keytree.modified_tree import apply_rekey_message

        assert apply_rekey_message(KeyStore(), report.message) == []


class TestChurn:
    @given(st.integers(0, 100))
    @settings(max_examples=5, deadline=None)
    def test_multi_interval_churn_stays_consistent(self, seed):
        topology = TransitStubTopology(num_hosts=40, params=PARAMS, seed=5)
        group = SecureGroup(topology, server_host=39, seed=seed)
        rng = np.random.default_rng(seed)
        members = {}
        next_host = 0
        for _ in range(6):  # six rekey intervals
            for _ in range(int(rng.integers(1, 5))):
                if next_host < 39:
                    m = group.join(next_host)
                    members[m.user_id] = m
                    next_host += 1
            if members and rng.random() < 0.7:
                uid = list(members)[int(rng.integers(0, len(members)))]
                group.leave(uid)
                del members[uid]
            group.end_interval()
            assert group.verify_member_keys() == []
        # everyone still in the group can talk to everyone else
        member_list = list(members.values())
        if len(member_list) >= 2:
            blob = member_list[0].seal(b"final check")
            assert member_list[-1].open(blob) == b"final check"

    def test_rekey_report_accounting(self, topology):
        group, members = build(topology, 10)
        group.leave(members[0].user_id)
        group.join(35)
        report = group.end_interval()
        assert report.rekey_cost == report.message.rekey_cost > 0
        # split delivery: nobody got more than the full message
        for count in report.delivered_encryptions.values():
            assert count <= report.rekey_cost
