"""Property-based tests for the tracing layer (docs/OBSERVABILITY.md).

Three families:

* span trees captured from random static worlds are structurally
  well-nested (sequential IDs, parents precede children);
* the span tree mirrors the protocol: exactly one ``tmesh.hop`` span per
  :class:`~repro.core.tmesh.SessionResult` receipt (the trace-side
  restatement of Theorem 1), cross-checked while :mod:`repro.verify`
  hooks run in the same block;
* counter totals equal the ``SessionResult`` / ``ReliableOutcome``
  aggregates, including under an injected :class:`~repro.faults.
  FaultPlan` — the trace never invents or loses traffic.

Plus deterministic unit properties of the metrics registry itself
(histogram bookkeeping, fork-merge, Prometheus rendering).
"""

import pytest
from hypothesis import given, settings, strategies as st

from tests.conftest import make_static_world
from repro.alm.reliable import ReliableSession
from repro.core.ids import Id, IdScheme
from repro.core.tmesh import rekey_session
from repro.faults import FaultPlan
from repro.trace import MetricsRegistry, TraceContext, tracing
from repro.trace.spans import ROOT, well_nested_problems
from repro.verify import verification

SCHEME = IdScheme(3, 4)

pytestmark = pytest.mark.trace

id_sets = st.sets(
    st.tuples(*[st.integers(0, SCHEME.base - 1)] * SCHEME.num_digits),
    min_size=1,
    max_size=20,
)
seeds = st.integers(0, 10_000)


def to_ids(id_tuples):
    return [Id(t) for t in sorted(id_tuples)]


class TestSpanTreeProperties:
    @given(id_sets, seeds)
    def test_random_world_traces_are_well_nested(self, id_tuples, seed):
        """Any traced rekey yields a structurally valid span tree."""
        ids = to_ids(id_tuples)
        topology, _, tables, server_table = make_static_world(
            SCHEME, ids, seed=seed
        )
        with tracing(seed=seed) as ctx:
            rekey_session(server_table, tables, topology)
        assert well_nested_problems(ctx.spans) == []
        # Hop spans nest under their session span, never at top level.
        sessions = [s for s in ctx.spans if s.name == "tmesh.session"]
        assert len(sessions) == 1
        for span in ctx.spans:
            if span.name == "tmesh.hop":
                assert span.parent == sessions[0].span_id

    @given(id_sets, seeds)
    def test_exactly_one_hop_span_per_receipt(self, id_tuples, seed):
        """Theorem 1, restated on the trace: each member's single
        delivering copy appears as exactly one hop span, carrying the
        receipt's forwarding level — checked with the verification layer
        composed in the same block (the hooks must not disturb each
        other)."""
        ids = to_ids(id_tuples)
        topology, _, tables, server_table = make_static_world(
            SCHEME, ids, seed=seed
        )
        with verification(seed=seed), tracing(seed=seed) as ctx:
            session = rekey_session(server_table, tables, topology)
        hops = [s for s in ctx.spans if s.name == "tmesh.hop"]
        assert len(hops) == len(session.receipts)
        by_member = {s.attrs["member"]: s for s in hops}
        assert len(by_member) == len(hops)  # no member traced twice
        for member, receipt in session.receipts.items():
            span = by_member[str(member)]
            assert span.attrs["level"] == receipt.forward_level
            assert span.attrs["host"] == receipt.host
            assert span.attrs["arrival_ms"] == receipt.arrival_time

    @given(id_sets, seeds)
    def test_hops_off_keeps_counters(self, id_tuples, seed):
        """``hops=False`` drops the per-receipt spans but the counters
        still see every receipt."""
        ids = to_ids(id_tuples)
        topology, _, tables, server_table = make_static_world(
            SCHEME, ids, seed=seed
        )
        with tracing(seed=seed, hops=False) as ctx:
            session = rekey_session(server_table, tables, topology)
        assert not [s for s in ctx.spans if s.name == "tmesh.hop"]
        assert ctx.registry.counter_value("tmesh.receipts") == len(
            session.receipts
        )


class TestCounterAggregates:
    @given(id_sets, seeds)
    def test_tmesh_counters_match_session(self, id_tuples, seed):
        """Forward/receipt/duplicate counters equal the SessionResult's
        own accounting."""
        ids = to_ids(id_tuples)
        topology, _, tables, server_table = make_static_world(
            SCHEME, ids, seed=seed
        )
        with tracing(seed=seed) as ctx:
            session = rekey_session(server_table, tables, topology)
        registry = ctx.registry
        assert registry.counter_value("tmesh.sessions") == 1
        assert registry.counter_value("tmesh.messages_forwarded") == len(
            session.edges
        )
        assert registry.counter_value("tmesh.receipts") == len(session.receipts)
        assert registry.counter_value("tmesh.duplicate_copies") == sum(
            session.duplicate_copies.values()
        )

    @pytest.mark.faults
    @given(
        st.sets(
            st.tuples(*[st.integers(0, SCHEME.base - 1)] * SCHEME.num_digits),
            min_size=3,
            max_size=10,
        ),
        st.integers(0, 10_000),
        st.floats(0.05, 0.25),
    )
    @settings(max_examples=10, deadline=None)
    def test_reliable_counters_match_outcome(self, id_tuples, seed, loss):
        """Under an injected drop plan the reliable.* counters equal the
        ReliableOutcome's aggregated RepairStats, field for field."""
        ids = to_ids(id_tuples)
        topology, _, tables, server_table = make_static_world(
            SCHEME, ids, seed=seed
        )
        plan = FaultPlan(seed=seed).drop(loss)
        session = ReliableSession(tables, server_table, topology, plan=plan)
        with tracing(seed=seed) as ctx:
            outcome = session.multicast(["k0", "k1", "k2"])
        assert outcome.delivery_ratio == 1.0
        registry = ctx.registry
        stats = outcome.stats
        assert registry.counter_value("reliable.sessions") == 1
        for field in (
            "data_sent",
            "data_delivered",
            "duplicates_suppressed",
            "nacks_sent",
            "retransmissions",
            "source_repairs",
            "gave_up",
        ):
            assert registry.counter_value(f"reliable.{field}") == getattr(
                stats, field
            ), field
        # Every fired NACK left an event span; counts agree.
        nack_events = [
            s for s in ctx.spans if s.name == "reliable.nack_round"
        ]
        assert len(nack_events) == stats.nacks_sent
        assert registry.counter_value("reliable.nack_rounds") == stats.nacks_sent


class TestRegistryProperties:
    @given(st.lists(st.floats(0, 1000), min_size=1, max_size=50))
    def test_histogram_sum_and_count(self, values):
        registry = MetricsRegistry()
        for value in values:
            registry.observe("h", value, buckets=(10.0, 100.0))
        import json

        record = next(
            r
            for r in map(json.loads, registry.jsonl_lines())
            if r["kind"] == "histogram"
        )
        assert record["count"] == len(values)
        assert record["sum"] == pytest.approx(sum(values))
        # Bucket counts partition the observations.
        assert sum(record["counts"]) == len(values)

    @given(
        st.dictionaries(
            st.sampled_from(["a", "b", "c"]), st.integers(1, 100), max_size=3
        ),
        st.dictionaries(
            st.sampled_from(["a", "b", "c"]), st.integers(1, 100), max_size=3
        ),
    )
    def test_merge_snapshot_is_addition(self, first, second):
        """Merging a worker snapshot adds counters key-wise — the fork
        transport loses nothing."""
        left, right, combined = (
            MetricsRegistry(),
            MetricsRegistry(),
            MetricsRegistry(),
        )
        for name, value in first.items():
            left.inc(name, value)
            combined.inc(name, value)
        for name, value in second.items():
            right.inc(name, value)
            combined.inc(name, value)
        left.merge_snapshot(right.snapshot())
        assert left.jsonl_lines() == combined.jsonl_lines()

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.set_gauge("depth", 3)
        registry.set_gauge("depth", 5)
        assert registry.gauge_value("depth") == 5

    def test_histogram_bucket_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.observe("h", 1.0, buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.observe("h", 1.0, buckets=(5.0,))

    def test_prometheus_text_shape(self):
        registry = MetricsRegistry()
        registry.inc("tmesh.sessions", 2)
        registry.inc("reliable.nacks_sent", 1, host=3)
        registry.set_gauge("queue.depth", 4)
        registry.observe("delay.ms", 7.0, buckets=(5.0, 10.0))
        text = registry.to_prometheus_text()
        assert "# TYPE tmesh_sessions counter" in text
        assert "tmesh_sessions 2" in text
        assert 'reliable_nacks_sent{host="3"} 1' in text
        assert "# TYPE queue_depth gauge" in text
        assert 'delay_ms_bucket{le="10.0"} 1' in text
        assert 'delay_ms_bucket{le="+Inf"} 1' in text
        assert "delay_ms_sum 7" in text
        assert "delay_ms_count 1" in text

    def test_event_outside_span_is_top_level(self):
        context = TraceContext()
        span = context.event("lonely", x=1)
        assert span.parent == ROOT
        assert well_nested_problems(context.spans) == []
