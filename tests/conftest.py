"""Shared fixtures: small topologies and pre-built groups.

Session-scoped fixtures keep the suite fast: topology generation and
group building dominate runtime, and the objects are treated as read-only
by tests that share them (tests that mutate state build their own).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Group, IdAssigner, IdScheme, PAPER_SCHEME
from repro.net import PlanetLabTopology, TransitStubParams, TransitStubTopology

#: A small ID space that makes collisions and fallbacks reachable in tests.
SMALL_SCHEME = IdScheme(num_digits=3, base=4)

TINY_GTITM = TransitStubParams(
    transit_domains=3,
    transit_per_domain=3,
    stubs_per_transit=2,
    stub_size=6,
)


@pytest.fixture(scope="session")
def gtitm():
    """A small transit-stub topology with 49 hosts (48 users + server)."""
    return TransitStubTopology(num_hosts=49, params=TINY_GTITM, seed=42)


@pytest.fixture(scope="session")
def planetlab():
    """A small PlanetLab-like topology with 49 hosts."""
    return PlanetLabTopology(num_hosts=49, seed=42)


def make_group(topology, num_users, seed=0, scheme=PAPER_SCHEME, k=4):
    """Build a group by joining hosts 0..num_users-1 in random order."""
    from repro.experiments.common import _default_thresholds

    rng = np.random.default_rng(seed)
    group = Group(
        scheme,
        topology,
        server_host=topology.num_hosts - 1,
        assigner=IdAssigner(scheme, _default_thresholds(scheme)),
        k=k,
        rng=rng,
    )
    for host in rng.permutation(num_users):
        group.join(int(host))
    return group


@pytest.fixture(scope="session")
def gtitm_group(gtitm):
    """48 users joined on the GT-ITM topology (read-only in tests)."""
    return make_group(gtitm, 48, seed=7)


@pytest.fixture(scope="session")
def planetlab_group(planetlab):
    """48 users joined on the PlanetLab topology (read-only in tests)."""
    return make_group(planetlab, 48, seed=7)
