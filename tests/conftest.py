"""Shared fixtures: small topologies and pre-built groups.

Session-scoped fixtures keep the suite fast: topology generation and
group building dominate runtime, and the objects are treated as read-only
by tests that share them (tests that mutate state build their own).
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.core import Group, IdAssigner, IdScheme, PAPER_SCHEME
from repro.core.neighbor_table import (
    UserRecord,
    build_consistent_tables,
    build_server_table,
)
from repro.net import PlanetLabTopology, TransitStubParams, TransitStubTopology
from repro.net.planetlab import MatrixTopology

# ----------------------------------------------------------------------
# Hypothesis profiles: "ci" keeps property tests fast enough for every
# push; "thorough" is the local soak (HYPOTHESIS_PROFILE=thorough pytest).
# Tests with an explicit @settings(...) override these baselines.
# ----------------------------------------------------------------------
settings.register_profile(
    "ci",
    max_examples=25,
    stateful_step_count=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "thorough",
    max_examples=250,
    stateful_step_count=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))

#: A small ID space that makes collisions and fallbacks reachable in tests.
SMALL_SCHEME = IdScheme(num_digits=3, base=4)


def make_static_world(scheme, ids, seed=0, k=1):
    """Random-geometry topology + K-consistent tables for a fixed ID set
    (hosts 0..n-1 are the users, host n is the key server)."""
    n = len(ids) + 1
    rng = np.random.default_rng(seed)
    points = rng.uniform(0, 100, size=(n, 2))
    matrix = np.sqrt(
        ((points[:, None, :] - points[None, :, :]) ** 2).sum(axis=2)
    )
    matrix = (matrix + matrix.T) / 2
    np.fill_diagonal(matrix, 0.0)
    topology = MatrixTopology(matrix)
    records = [UserRecord(uid, host) for host, uid in enumerate(ids)]
    tables = build_consistent_tables(scheme, records, topology.rtt, k=k)
    server_table = build_server_table(scheme, n - 1, records, topology.rtt, k=k)
    return topology, records, tables, server_table


TINY_GTITM = TransitStubParams(
    transit_domains=3,
    transit_per_domain=3,
    stubs_per_transit=2,
    stub_size=6,
)


@pytest.fixture(scope="session")
def gtitm():
    """A small transit-stub topology with 49 hosts (48 users + server)."""
    return TransitStubTopology(num_hosts=49, params=TINY_GTITM, seed=42)


@pytest.fixture(scope="session")
def planetlab():
    """A small PlanetLab-like topology with 49 hosts."""
    return PlanetLabTopology(num_hosts=49, seed=42)


def make_group(topology, num_users, seed=0, scheme=PAPER_SCHEME, k=4):
    """Build a group by joining hosts 0..num_users-1 in random order."""
    from repro.experiments.common import _default_thresholds

    rng = np.random.default_rng(seed)
    group = Group(
        scheme,
        topology,
        server_host=topology.num_hosts - 1,
        assigner=IdAssigner(scheme, _default_thresholds(scheme)),
        k=k,
        rng=rng,
    )
    for host in rng.permutation(num_users):
        group.join(int(host))
    return group


@pytest.fixture(scope="session")
def gtitm_group(gtitm):
    """48 users joined on the GT-ITM topology (read-only in tests)."""
    return make_group(gtitm, 48, seed=7)


@pytest.fixture(scope="session")
def planetlab_group(planetlab):
    """48 users joined on the PlanetLab topology (read-only in tests)."""
    return make_group(planetlab, 48, seed=7)
