"""Tests for the network substrates: transit-stub, PlanetLab, routing."""

import numpy as np
import pytest

from repro.net import (
    LinkStressCounter,
    MatrixTopology,
    PlanetLabTopology,
    RouterGraph,
    TransitStubParams,
    TransitStubTopology,
    validate_rtt_matrix,
)
from repro.net.gtitm import (
    INTER_DOMAIN_DELAY,
    STUB_LINK_DELAY,
    STUB_TRANSIT_DELAY,
    TRANSIT_LINK_DELAY,
)


class TestRouterGraph:
    def test_shortest_path_delay(self):
        # triangle: 0-1 (10ms two-way), 1-2 (10), 0-2 (50): route via 1
        g = RouterGraph(3, [(0, 1, 10.0), (1, 2, 10.0), (0, 2, 50.0)])
        assert g.one_way_delay(0, 2) == pytest.approx(10.0)  # (5 + 5)

    def test_path_reconstruction(self):
        g = RouterGraph(4, [(0, 1, 2.0), (1, 2, 2.0), (2, 3, 2.0), (0, 3, 50.0)])
        assert g.path_routers(0, 3) == [0, 1, 2, 3]
        assert g.path_links(0, 3) == [
            g.link_id(0, 1),
            g.link_id(1, 2),
            g.link_id(2, 3),
        ]

    def test_path_to_self_is_empty(self):
        g = RouterGraph(2, [(0, 1, 1.0)])
        assert g.path_routers(0, 0) == [0]
        assert g.path_links(0, 0) == []

    def test_unreachable_raises(self):
        g = RouterGraph(3, [(0, 1, 1.0)])
        with pytest.raises(ValueError):
            g.one_way_delay(0, 2)
        assert not g.is_connected()

    def test_duplicate_link_rejected(self):
        with pytest.raises(ValueError):
            RouterGraph(2, [(0, 1, 1.0), (1, 0, 2.0)])

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            RouterGraph(2, [(0, 0, 1.0)])

    def test_link_metadata(self):
        g = RouterGraph(2, [(0, 1, 7.5)])
        assert g.num_links == 1
        assert g.link_two_way_delay(g.link_id(0, 1)) == 7.5


class TestLinkStressCounter:
    def test_accumulates(self):
        c = LinkStressCounter(4)
        c.add_path([0, 2], 3.0)
        c.add_path([2], 1.0)
        assert list(c.counts) == [3.0, 0.0, 4.0, 0.0]
        assert c.max() == 4.0
        assert list(c.nonzero()) == [3.0, 4.0]

    def test_empty(self):
        assert LinkStressCounter(0).max() == 0.0


class TestTransitStub:
    @pytest.fixture(scope="class")
    def topo(self):
        return TransitStubTopology(
            num_hosts=30,
            params=TransitStubParams(
                transit_domains=3,
                transit_per_domain=4,
                stubs_per_transit=2,
                stub_size=6,
            ),
            seed=11,
        )

    def test_router_count(self, topo):
        # 3*4 transit + 12*2*6 stub routers
        assert topo.num_routers == 12 + 144

    def test_paper_scale_defaults(self):
        params = TransitStubParams()
        assert params.num_routers() == 4900  # ~ the paper's 5000

    def test_connected(self, topo):
        assert topo.graph.is_connected()

    def test_link_delay_classes(self, topo):
        """Every link's two-way delay falls in one of the paper's four
        ranges."""
        ranges = (
            STUB_LINK_DELAY,
            STUB_TRANSIT_DELAY,
            TRANSIT_LINK_DELAY,
            INTER_DOMAIN_DELAY,
        )
        for link in range(topo.num_links):
            d = topo.graph.link_two_way_delay(link)
            assert any(lo <= d <= hi for lo, hi in ranges), d

    def test_rtt_symmetric_zero_diag(self, topo):
        assert validate_rtt_matrix(topo, range(0, 30, 7)) == []

    def test_rtt_includes_access_links(self, topo):
        a, b = 0, 1
        core = topo.rtt(a, b) - topo.access_rtt(a) - topo.access_rtt(b)
        assert core >= 0

    def test_gateway_rtt(self, topo):
        a, b = 2, 9
        expected = topo.rtt(a, b) - topo.access_rtt(a) - topo.access_rtt(b)
        assert topo.gateway_rtt(a, b) == pytest.approx(max(0.0, expected))
        assert topo.gateway_rtt(a, a) == 0.0

    def test_path_links_nonempty_across_stubs(self, topo):
        for b in range(1, 30):
            if topo.stub_domain_of_host(0) != topo.stub_domain_of_host(b):
                assert len(topo.path_links(0, b)) >= 1
                return
        pytest.skip("all hosts in one stub domain")

    def test_hosts_attach_to_stub_routers(self, topo):
        stub_routers = set(topo._stub_routers)
        for h in range(topo.num_hosts):
            assert topo.host_router(h) in stub_routers

    def test_cross_domain_rtt_larger_than_local(self, topo):
        local, remote = [], []
        for b in range(1, 30):
            same = topo.stub_domain_of_host(0) == topo.stub_domain_of_host(b)
            (local if same else remote).append(topo.rtt(0, b))
        if local and remote:
            assert min(remote) > max(local)

    def test_num_hosts_validation(self):
        with pytest.raises(ValueError):
            TransitStubTopology(num_hosts=0)


class TestPlanetLab:
    @pytest.fixture(scope="class")
    def topo(self):
        return PlanetLabTopology(num_hosts=60, seed=3)

    def test_defaults_match_paper(self):
        assert PlanetLabTopology().num_hosts == 227

    def test_rtt_valid(self, topo):
        assert validate_rtt_matrix(topo, range(0, 60, 11)) == []

    def test_same_site_is_lan_fast(self, topo):
        pairs = [
            (a, b)
            for a in range(60)
            for b in range(a + 1, 60)
            if topo.host_site(a) == topo.host_site(b)
        ]
        if not pairs:
            pytest.skip("no same-site pair")
        for a, b in pairs:
            assert topo.rtt(a, b) < 15.0

    def test_cross_continent_is_slow(self, topo):
        for a in range(60):
            for b in range(a + 1, 60):
                ca, cb = topo.host_continent(a), topo.host_continent(b)
                if {ca, cb} == {"north-america", "asia"}:
                    assert topo.rtt(a, b) > 60.0

    def test_no_link_stress_support(self, topo):
        assert not topo.supports_link_stress()
        with pytest.raises(NotImplementedError):
            topo.path_links(0, 1)

    def test_continent_mix(self, topo):
        continents = {topo.host_continent(h) for h in range(60)}
        assert "north-america" in continents
        assert len(continents) >= 3


class TestMatrixTopology:
    def test_validation(self):
        good = np.array([[0.0, 1.0], [1.0, 0.0]])
        MatrixTopology(good)
        with pytest.raises(ValueError):
            MatrixTopology(np.array([[0.0, 1.0], [2.0, 0.0]]))  # asymmetric
        with pytest.raises(ValueError):
            MatrixTopology(np.array([[1.0, 1.0], [1.0, 0.0]]))  # diag
        with pytest.raises(ValueError):
            MatrixTopology(np.array([[0.0, -1.0], [-1.0, 0.0]]))  # negative
        with pytest.raises(ValueError):
            MatrixTopology(np.zeros((2, 3)))  # not square

    def test_access_rtts(self):
        topo = MatrixTopology(np.array([[0.0, 4.0], [4.0, 0.0]]), [1.0, 2.0])
        assert topo.access_rtt(1) == 2.0
        assert topo.gateway_rtt(0, 1) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            MatrixTopology(np.zeros((2, 2)), [1.0])

    def test_one_way_is_half_rtt(self):
        topo = MatrixTopology(np.array([[0.0, 10.0], [10.0, 0.0]]))
        assert topo.one_way_delay(0, 1) == 5.0
