"""Tests for the crypto substrate: cipher, tags, and key stores."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ids import Id, NULL_ID
from repro.crypto import (
    AuthenticationError,
    auth_tag,
    cipher,
    decrypt,
    encrypt,
    generate_key,
    verify_tag,
)
from repro.crypto.keystore import KeyStore


class TestCipher:
    def test_roundtrip(self):
        key = generate_key()
        assert decrypt(key, encrypt(key, b"hello group")) == b"hello group"

    def test_empty_plaintext(self):
        key = generate_key()
        assert decrypt(key, encrypt(key, b"")) == b""

    def test_wrong_key_rejected(self):
        blob = encrypt(generate_key(), b"secret")
        with pytest.raises(AuthenticationError):
            decrypt(generate_key(), blob)

    def test_tampering_detected(self):
        key = generate_key()
        blob = bytearray(encrypt(key, b"secret"))
        blob[20] ^= 0xFF
        with pytest.raises(AuthenticationError):
            decrypt(key, bytes(blob))

    def test_truncated_blob_rejected(self):
        with pytest.raises(AuthenticationError):
            decrypt(generate_key(), b"short")

    def test_nonce_randomizes_ciphertext(self):
        key = generate_key()
        assert encrypt(key, b"x") != encrypt(key, b"x")

    def test_deterministic_with_seeded_rng(self):
        rng1 = np.random.default_rng(5)
        rng2 = np.random.default_rng(5)
        key = b"k" * 32
        assert encrypt(key, b"data", rng=rng1) == encrypt(key, b"data", rng=rng2)

    def test_generate_key_length_and_variety(self):
        keys = {generate_key() for _ in range(10)}
        assert len(keys) == 10
        assert all(len(k) == 32 for k in keys)

    def test_generate_key_bad_rng(self):
        with pytest.raises(TypeError):
            generate_key(rng="not an rng")

    @given(st.binary(max_size=300))
    @settings(max_examples=30)
    def test_roundtrip_property(self, plaintext):
        key = b"fixed-key-for-hypothesis-tests!!"
        assert decrypt(key, encrypt(key, plaintext)) == plaintext


class TestTags:
    def test_tag_verifies(self):
        key = generate_key()
        tag = auth_tag(key, b"challenge")
        assert verify_tag(key, b"challenge", tag)

    def test_tag_rejects_wrong_message(self):
        key = generate_key()
        tag = auth_tag(key, b"challenge")
        assert not verify_tag(key, b"other", tag)

    def test_tag_rejects_wrong_key(self):
        tag = auth_tag(generate_key(), b"challenge")
        assert not verify_tag(generate_key(), b"challenge", tag)


class TestKeyStore:
    def test_put_get_latest(self):
        store = KeyStore()
        store.put(NULL_ID, 0, b"a" * 32)
        store.put(NULL_ID, 1, b"b" * 32)
        assert store.get(NULL_ID) == b"b" * 32
        assert store.get(NULL_ID, 0) == b"a" * 32
        assert store.latest_version(NULL_ID) == 1

    def test_has(self):
        store = KeyStore()
        assert not store.has(NULL_ID)
        store.put(NULL_ID, 3, b"c" * 32)
        assert store.has(NULL_ID)
        assert store.has(NULL_ID, 3)
        assert not store.has(NULL_ID, 2)

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            KeyStore().get(Id([1]))

    def test_drop_forgets_all_versions(self):
        store = KeyStore()
        store.put(Id([1]), 0, b"a" * 32)
        store.put(Id([1]), 1, b"b" * 32)
        store.drop(Id([1]))
        assert not store.has(Id([1]))
        assert not store.has(Id([1]), 0)

    def test_wrap_unwrap(self):
        store = KeyStore()
        wrapping = generate_key()
        store.put(Id([2]), 0, wrapping)
        inner = generate_key()
        blob = store.wrap(Id([2]), inner)
        assert store.unwrap(Id([2]), 0, blob) == inner

    def test_unwrap_without_key_raises(self):
        store = KeyStore()
        with pytest.raises(KeyError):
            store.unwrap(Id([2]), 0, b"blob")

    def test_key_ids_enumeration(self):
        store = KeyStore()
        store.put(Id([1]), 0, b"a" * 32)
        store.put(Id([2]), 0, b"b" * 32)
        assert set(store.key_ids()) == {Id([1]), Id([2])}
