"""Live asyncio service-mode tests (docs/SERVICE.md).

The service runs the existing message-level protocol over real asyncio
streams: the key server lives at the hub, each member endpoint holds a
socket, and all member-bound traffic crosses the wire.  These tests pin
the tentpole guarantees — traffic really crosses sockets, socketless and
virtual-clock drives produce byte-identical key-tree state, a graceful
shutdown's snapshot restores a byte-identical server that keeps
rekeying — without the soak lane's wall-clock budget.
"""

from __future__ import annotations

import pytest

from repro.distributed import DistributedGroup
from repro.net import TransitStubParams, TransitStubTopology
from repro.service import RekeyService

SEED = 7
HOSTS = 17
PARAMS = TransitStubParams(
    transit_domains=3, transit_per_domain=3, stubs_per_transit=2, stub_size=3
)


def make_topology(seed: int = SEED) -> TransitStubTopology:
    return TransitStubTopology(num_hosts=HOSTS, params=PARAMS, seed=seed)


def make_service(**kwargs) -> RekeyService:
    kwargs.setdefault("seed", SEED)
    return RekeyService(make_topology(), server_host=0, **kwargs)


def run_workload(service: RekeyService, hosts=(1, 2, 3, 4)) -> None:
    """One interval of joins, announced and drained to quiescence."""
    for i, host in enumerate(hosts):
        service.join(host, delay=1.0 + 300.0 * i)
    service.end_interval(delay=5000.0)
    service.drain()


def converge(service: RekeyService, rounds: int = 8) -> None:
    """Socket delivery interleaves wire arrival with timers, so tables
    can need a bounded round of the protocol's own repair traffic before
    1-consistency is a theorem again — the service's ``converge`` is
    that loop, and it must stay within its bound."""
    used = service.converge(rounds=rounds)
    assert used <= rounds


class TestSocketRoundTrip:
    def test_member_traffic_crosses_real_sockets(self):
        service = make_service()
        service.start()
        try:
            if not service.use_sockets:
                pytest.skip("sandbox without loopback sockets")
            assert isinstance(service.port, int)
            run_workload(service)
            converge(service)
            assert service.transport.frames_sent > 0
            assert service.transport.frames_delivered > 0
            assert all(
                service.world.users[h].joined for h in (1, 2, 3, 4)
            )
            assert service.world.check_one_consistency() == []
            assert service.quiescent
        finally:
            service.stop()

    def test_clean_lane_checkpoint_passes(self):
        service = make_service()
        service.start()
        try:
            run_workload(service)
            converge(service)
            service.checkpoint()
            assert service.checkpoints_passed == 1
        finally:
            service.stop()

    def test_socketless_fallback_reaches_the_same_group(self):
        """The wire is a transport detail: disabling sockets (sandbox
        fallback) converges the same hosts into the group with unique
        IDs and consistent tables.  (Byte-level state equality is the
        *virtual-drive* guarantee — see TestServiceVirtualConformance;
        real wire arrival may legitimately straddle a timer boundary,
        which shifts the latency samples ID assignment is drawn from.)"""
        outcomes = []
        for use_sockets in (True, False):
            service = make_service(use_sockets=use_sockets)
            service.start()
            try:
                run_workload(service)
                converge(service)
                users = service.world.active_users()
                assert service.world.check_one_consistency() == []
                assert len({u.user_id for u in users}) == len(users)
                outcomes.append(sorted(u.host for u in users))
            finally:
                service.stop()
        assert outcomes[0] == [1, 2, 3, 4]
        assert outcomes[0] == outcomes[1]


class TestServiceVirtualConformance:
    def test_service_matches_registry_backends(self):
        """The same scripted workload on the service and on the plain
        harness over every virtual-clock backend lands in byte-identical
        key-tree state — the service is a drive mode, not a fork of the
        protocol."""
        states = {}
        for backend in ("simulator", "eventloop", "asyncio"):
            world = DistributedGroup(
                make_topology(), server_host=0, seed=SEED, backend=backend
            )
            for i, host in enumerate((1, 2, 3, 4)):
                world.schedule_join(host, at=1.0 + 300.0 * i)
            world.end_interval(at=5000.0)
            world.run()
            states[backend] = world.server.key_tree_state()

        service = make_service(use_sockets=False)
        service.start()
        try:
            run_workload(service)
            states["service"] = service.world.server.key_tree_state()
        finally:
            service.stop()
        reference = states["simulator"]
        for name, state in states.items():
            assert state == reference, f"{name} diverged"


class TestShutdownAndResume:
    def test_snapshot_written_to_path(self, tmp_path):
        service = make_service(use_sockets=False)
        service.start()
        run_workload(service)
        path = tmp_path / "state.snap"
        blob = service.shutdown(snapshot_path=str(path))
        assert path.read_bytes() == blob
        assert len(blob) > 0

    def test_restart_resumes_byte_identical_key_tree(self):
        service = make_service()
        service.start()
        run_workload(service)
        pre_state = service.world.server.key_tree_state()
        pre_interval = service.world.server.interval
        blob = service.shutdown()

        resumed = make_service(snapshot=blob)
        assert resumed.world.server.key_tree_state() == pre_state
        assert resumed.world.server.interval == pre_interval
        resumed.stop()

    def test_restarted_service_continues_rekeying(self):
        """After a restart the old members have no endpoints; evicting
        them and admitting fresh members must keep the protocol and its
        invariants going."""
        service = make_service()
        service.start()
        run_workload(service)
        blob = service.shutdown()

        resumed = make_service(snapshot=blob)
        resumed.start()
        try:
            evicted = resumed.evict_absent_members()
            assert evicted == 4
            run_workload(resumed, hosts=(5, 6, 7))
            converge(resumed)
            assert len(resumed.world.active_users()) == 3
            assert resumed.world.check_one_consistency() == []
            # The interval counter kept counting up from the snapshot.
            assert resumed.world.server.interval > service.world.server.interval
        finally:
            resumed.stop()


class TestRealtimeMode:
    def test_realtime_drive_reaches_the_same_outcome(self):
        """Realtime pacing (scaled near zero so the test stays fast)
        changes wall behavior, never protocol outcomes."""
        service = make_service(realtime=True, time_scale=1e-7)
        service.start()
        try:
            run_workload(service, hosts=(1, 2, 3))
            converge(service)
            assert all(service.world.users[h].joined for h in (1, 2, 3))
            assert service.world.check_one_consistency() == []
        finally:
            service.stop()
