"""Golden-trace conformance: the committed fixtures pin the normalized
trace of two fixed-seed workloads byte-exact (docs/OBSERVABILITY.md).

A fixture mismatch means observable protocol behaviour changed — receipt
order, forwarding levels, repair counts, encryption fan-out — and either
the change is a regression or the fixtures need an intentional
regeneration::

    PYTHONPATH=src python -m repro.trace.golden --write tests/fixtures

The corruption canary proves the comparison can fail (the same
discipline as ``tools/check_invariants.py`` exit status 2): a suite
whose golden gate cannot trip is not a gate.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.trace import GOLDEN_TRACES, compare_traces
from repro.trace.golden import fig7_trace, rekey256_trace

FIXTURES = Path(__file__).parent / "fixtures"

pytestmark = pytest.mark.trace


def read_fixture(name: str) -> str:
    path = FIXTURES / name
    assert path.exists(), (
        f"missing golden fixture {path}; regenerate with "
        "PYTHONPATH=src python -m repro.trace.golden --write tests/fixtures"
    )
    return path.read_text(encoding="utf-8")


@pytest.mark.parametrize("name", sorted(GOLDEN_TRACES))
def test_golden_fixture_byte_exact(name):
    """Regenerating a golden workload reproduces its fixture byte for
    byte."""
    expected = read_fixture(name)
    actual = GOLDEN_TRACES[name]()
    problems = compare_traces(expected, actual)
    assert not problems, "\n".join([f"golden {name} diverged:"] + problems)


def test_rekey256_two_runs_identical():
    """Same seed, two runs, identical bytes — the determinism contract
    the fixtures rest on."""
    assert rekey256_trace() == rekey256_trace()


def test_fig7_parallel_matches_fixture():
    """The Fig. 7 workload traced across two forked workers renders the
    same bytes as the committed (serial) fixture: per-task child traces
    merge in task order, independent of the degree of parallelism."""
    expected = read_fixture("trace_fig7.jsonl")
    actual = fig7_trace(processes=2)
    problems = compare_traces(expected, actual)
    assert not problems, "\n".join(["parallel fig7 diverged:"] + problems)


def test_trace_header_names_workload():
    """The fixture headers carry the seed and label the generators
    stamp, so a trace file is self-describing."""
    import json

    header = json.loads(read_fixture("trace_rekey256.jsonl").splitlines()[0])
    assert header["kind"] == "header"
    assert header["seed"] == 7
    assert header["label"] == "golden-rekey256"
    assert header["version"] == 1


class TestCorruptionCanary:
    """The comparison MUST flag a corrupted trace — every corruption
    class a regression could produce."""

    def test_flipped_attribute_detected(self):
        expected = read_fixture("trace_rekey256.jsonl")
        lines = expected.splitlines()
        # Corrupt a digit inside a span line (a changed forwarding level,
        # say) and require a pointed diff.
        victim = next(
            i for i, line in enumerate(lines) if '"kind":"span"' in line
        )
        corrupted = lines[:]
        corrupted[victim] = corrupted[victim].replace(
            '"kind":"span"', '"kind":"spam"'
        )
        problems = compare_traces(expected, "\n".join(corrupted) + "\n")
        assert problems
        assert any(f"line {victim + 1}" in p for p in problems)

    def test_dropped_line_detected(self):
        expected = read_fixture("trace_fig7.jsonl")
        lines = expected.splitlines()
        corrupted = "\n".join(lines[:-1]) + "\n"
        problems = compare_traces(expected, corrupted)
        assert any("line count differs" in p for p in problems)

    def test_trailing_byte_detected(self):
        expected = read_fixture("trace_fig7.jsonl")
        assert compare_traces(expected, expected + "\n")

    def test_identical_is_clean(self):
        expected = read_fixture("trace_fig7.jsonl")
        assert compare_traces(expected, expected) == []
