"""Tests for the IP-multicast (DVMRP-style) baseline."""

import pytest

from repro.alm.ipmulticast import (
    ip_multicast_link_counts,
    ip_multicast_session,
    ip_multicast_tree_links,
)


class TestTree:
    def test_tree_links_are_union_of_paths(self, gtitm):
        receivers = list(range(10))
        links = ip_multicast_tree_links(gtitm, 48, receivers)
        per_path = set()
        for host in receivers:
            per_path.update(gtitm.path_links(48, host))
        assert links == per_path

    def test_shared_prefix_counted_once(self, gtitm):
        """Two receivers behind the same stub share the path prefix; the
        tree has fewer links than the sum of the two paths."""
        # find two hosts in the same stub domain
        domains = {}
        pair = None
        for h in range(48):
            d = gtitm.stub_domain_of_host(h)
            if d in domains:
                pair = (domains[d], h)
                break
            domains[d] = h
        if pair is None:
            pytest.skip("no same-domain pair")
        a, b = pair
        tree = ip_multicast_tree_links(gtitm, 48, [a, b])
        assert len(tree) <= len(gtitm.path_links(48, a)) + len(
            gtitm.path_links(48, b)
        )

    def test_source_excluded(self, gtitm):
        links = ip_multicast_tree_links(gtitm, 48, [48])
        assert links == set()


class TestSession:
    def test_everyone_delivered_at_unicast_delay(self, gtitm):
        receivers = list(range(12))
        session = ip_multicast_session(gtitm, 48, receivers)
        assert set(session.arrival) == set(receivers)
        for host in receivers:
            assert session.arrival[host] == pytest.approx(
                gtitm.one_way_delay(48, host)
            )
            assert session.rdp(host, gtitm) == pytest.approx(1.0)

    def test_users_do_no_forwarding(self, gtitm):
        session = ip_multicast_session(gtitm, 48, list(range(12)))
        for host in range(12):
            assert session.user_stress(host) == 0


class TestLinkCounts:
    def test_each_tree_link_carries_message_once(self, gtitm):
        receivers = list(range(12))
        counts = ip_multicast_link_counts(gtitm, 48, receivers, message_size=100)
        tree = ip_multicast_tree_links(gtitm, 48, receivers)
        nonzero = {i for i, c in enumerate(counts.counts) if c > 0}
        assert nonzero == tree
        assert all(counts.counts[i] == 100 for i in tree)
