"""Tests for the WGL rekey-composition strategy comparison."""

import numpy as np
import pytest

from repro.core.ids import Id, IdScheme
from repro.keytree.modified_tree import ModifiedKeyTree
from repro.keytree.original_tree import OriginalKeyTree
from repro.keytree.strategies import (
    StrategyCost,
    modified_tree_strategy_costs,
    original_tree_strategy_costs,
)

SCHEME = IdScheme(num_digits=3, base=4)


def modified_batch(leaves=2):
    tree = ModifiedKeyTree(SCHEME)
    users = [Id([a, b, 0]) for a in range(3) for b in range(3)]
    for uid in users:
        tree.request_join(uid)
    tree.process_batch()
    for uid in users[:leaves]:
        tree.request_leave(uid)
    message = tree.process_batch()
    return message, [u for u in users[leaves:]]


class TestModifiedTreeStrategies:
    def test_group_oriented_matches_message(self):
        message, remaining = modified_batch()
        costs = modified_tree_strategy_costs(message, remaining)
        assert costs["group-oriented"] == StrategyCost(1, message.rekey_cost)

    def test_key_oriented_same_encryptions_more_messages(self):
        message, remaining = modified_batch()
        costs = modified_tree_strategy_costs(message, remaining)
        assert costs["key-oriented"].encryptions == message.rekey_cost
        assert costs["key-oriented"].messages == len(
            {e.new_key_id for e in message.encryptions}
        )

    def test_user_oriented_costs_more_encryptions(self):
        """Re-encrypting shared keys per user always costs at least as
        much as the shared group-oriented message."""
        message, remaining = modified_batch()
        costs = modified_tree_strategy_costs(message, remaining)
        assert (
            costs["user-oriented"].encryptions
            >= costs["group-oriented"].encryptions
        )
        # every remaining user needs at least the new group key
        assert costs["user-oriented"].messages == len(remaining)
        assert costs["user-oriented"].encryptions >= len(remaining)

    def test_empty_batch(self):
        tree = ModifiedKeyTree(SCHEME)
        tree.request_join(Id([0, 0, 0]))
        tree.process_batch()
        message = tree.process_batch()  # nothing pending
        costs = modified_tree_strategy_costs(message, [Id([0, 0, 0])])
        assert costs["group-oriented"] == StrategyCost(0, 0)
        assert costs["user-oriented"].encryptions == 0


class TestOriginalTreeStrategies:
    def test_consistent_with_modified_semantics(self):
        tree = OriginalKeyTree(degree=4)
        tree.initialize_balanced(list(range(64)))
        for u in range(6):
            tree.request_leave(u)
        result = tree.process_batch(np.random.default_rng(0))
        costs = original_tree_strategy_costs(tree, result)
        assert costs["group-oriented"].encryptions == result.rekey_cost
        assert costs["key-oriented"].encryptions == result.rekey_cost
        assert costs["user-oriented"].encryptions >= result.rekey_cost
        assert costs["user-oriented"].messages == tree.num_users

    def test_user_oriented_equals_sum_of_path_updates(self):
        tree = OriginalKeyTree(degree=4)
        tree.initialize_balanced(list(range(16)))
        tree.request_leave(3)
        result = tree.process_batch(np.random.default_rng(1))
        updated = {e.new_key_node for e in result.encryptions}
        expected = sum(
            sum(1 for node in tree.path_nodes(u) if node in updated)
            for u in tree.users
        )
        costs = original_tree_strategy_costs(tree, result)
        assert costs["user-oriented"].encryptions == expected
