"""Determinism: every driver must be a pure function of its seed, so
published numbers are reproducible run to run."""

import numpy as np
import pytest


class TestDriverDeterminism:
    def test_topology_generation(self):
        from repro.net import TransitStubParams, TransitStubTopology

        params = TransitStubParams(
            transit_domains=2, transit_per_domain=3,
            stubs_per_transit=2, stub_size=5,
        )
        a = TransitStubTopology(num_hosts=20, params=params, seed=9)
        b = TransitStubTopology(num_hosts=20, params=params, seed=9)
        for x in range(0, 20, 3):
            for y in range(0, 20, 7):
                assert a.rtt(x, y) == b.rtt(x, y)

    def test_planetlab_generation(self):
        from repro.net import PlanetLabTopology

        a = PlanetLabTopology(num_hosts=30, seed=4)
        b = PlanetLabTopology(num_hosts=30, seed=4)
        assert np.allclose(a.rtt_matrix(), b.rtt_matrix())

    def test_group_build(self, gtitm):
        from .conftest import make_group

        a = make_group(gtitm, 20, seed=5)
        b = make_group(gtitm, 20, seed=5)
        assert sorted(a.user_ids) == sorted(b.user_ids)
        assert {u: r.host for u, r in a.records.items()} == {
            u: r.host for u, r in b.records.items()
        }

    def test_latency_experiment(self):
        from repro.experiments.latency_experiments import run_latency_experiment

        a = run_latency_experiment("t", "planetlab", 24, runs=1, seed=3)
        b = run_latency_experiment("t", "planetlab", 24, runs=1, seed=3)
        assert a.headlines() == b.headlines()

    def test_rekey_cost_experiment(self, gtitm):
        from repro.experiments.rekey_cost import run_rekey_cost

        grid = [(0, 0), (10, 5)]
        a = run_rekey_cost(num_users=24, grid=grid, runs=1, seed=6, topology=gtitm)
        b = run_rekey_cost(num_users=24, grid=grid, runs=1, seed=6, topology=gtitm)
        for pa, pb in zip(a.points, b.points):
            assert (pa.modified, pa.original, pa.cluster) == (
                pb.modified,
                pb.original,
                pb.cluster,
            )

    def test_distributed_world(self):
        from repro.distributed import DistributedGroup
        from repro.net import TransitStubParams, TransitStubTopology

        params = TransitStubParams(
            transit_domains=2, transit_per_domain=3,
            stubs_per_transit=2, stub_size=5,
        )

        def build():
            topology = TransitStubTopology(num_hosts=21, params=params, seed=8)
            world = DistributedGroup(topology, server_host=20, seed=8)
            for i in range(8):
                world.schedule_join(i, at=1.0 + 200.0 * i)
            world.end_interval(at=3000.0)
            world.run()
            return sorted(str(u.user_id) for u in world.active_users())

        assert build() == build()

    def test_different_seeds_differ(self):
        """Sanity: seeds actually vary the workload."""
        from repro.experiments.latency_experiments import run_latency_experiment

        a = run_latency_experiment("t", "planetlab", 24, runs=1, seed=1)
        b = run_latency_experiment("t", "planetlab", 24, runs=1, seed=2)
        assert a.headlines() != b.headlines()
