"""Tests for the NICE baseline: hierarchy invariants, churn, delivery."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.alm.nice import NiceHierarchy, nice_multicast
from repro.net.planetlab import MatrixTopology, PlanetLabTopology


def geometric_topology(n, seed=0):
    rng = np.random.default_rng(seed)
    pts = rng.uniform(0, 100, size=(n, 2))
    m = np.sqrt(((pts[:, None] - pts[None, :]) ** 2).sum(axis=2))
    m = (m + m.T) / 2
    np.fill_diagonal(m, 0.0)
    return MatrixTopology(m + np.where(m > 0, 0.5, 0.0))


class TestJoins:
    def test_single_host(self):
        h = NiceHierarchy(geometric_topology(2))
        h.join(0)
        assert h.root == 0
        assert h.check_invariants() == []

    def test_duplicate_join_rejected(self):
        h = NiceHierarchy(geometric_topology(2))
        h.join(0)
        with pytest.raises(ValueError):
            h.join(0)

    def test_k_must_be_at_least_2(self):
        with pytest.raises(ValueError):
            NiceHierarchy(geometric_topology(2), k=1)

    def test_cluster_sizes_bounded_after_joins(self):
        topo = geometric_topology(80, seed=1)
        h = NiceHierarchy(topo, k=3)
        for host in range(80):
            h.join(host)
        sizes = [len(c.members) for c in h.layers[0]]
        assert max(sizes) <= 8  # 3k-1
        assert min(sizes) >= 3 or len(h.layers[0]) == 1

    def test_invariants_through_joins(self):
        topo = geometric_topology(50, seed=2)
        h = NiceHierarchy(topo)
        for host in range(50):
            h.join(host)
            assert h.check_invariants() == [], f"after join {host}"

    def test_leaders_are_cluster_centers(self):
        topo = geometric_topology(40, seed=3)
        h = NiceHierarchy(topo)
        for host in range(40):
            h.join(host)
        for cluster in h.layers[0]:
            members = sorted(cluster.members)
            radii = {
                m: max(topo.rtt(m, o) for o in members if o != m)
                for m in members
            }
            assert radii[cluster.leader] == min(radii.values())


class TestLeaves:
    def test_invariants_through_leaves(self):
        topo = geometric_topology(60, seed=4)
        h = NiceHierarchy(topo)
        for host in range(60):
            h.join(host)
        rng = np.random.default_rng(0)
        order = list(rng.permutation(60))
        for host in order[:55]:
            h.leave(int(host))
            assert h.check_invariants() == [], f"after leave {host}"
        assert len(h.hosts) == 5

    def test_leave_unknown_raises(self):
        h = NiceHierarchy(geometric_topology(3))
        h.join(0)
        with pytest.raises(KeyError):
            h.leave(1)

    def test_root_leave_elects_new_root(self):
        topo = geometric_topology(30, seed=5)
        h = NiceHierarchy(topo)
        for host in range(30):
            h.join(host)
        old_root = h.root
        h.leave(old_root)
        assert h.check_invariants() == []
        assert h.root != old_root
        assert old_root not in h.hosts

    @given(st.integers(0, 10_000), st.integers(5, 40))
    @settings(max_examples=15, deadline=None)
    def test_random_churn_property(self, seed, n):
        topo = geometric_topology(n, seed=seed % 100)
        h = NiceHierarchy(topo)
        rng = np.random.default_rng(seed)
        joined = set()
        next_host = 0
        for _ in range(3 * n):
            if joined and rng.random() < 0.4:
                victim = list(joined)[int(rng.integers(0, len(joined)))]
                h.leave(victim)
                joined.remove(victim)
            elif next_host < n:
                h.join(next_host)
                joined.add(next_host)
                next_host += 1
        if joined:
            assert h.check_invariants() == []
            assert h.hosts == joined


class TestDelivery:
    @pytest.fixture(scope="class")
    def world(self):
        topo = PlanetLabTopology(num_hosts=61, seed=6)
        h = NiceHierarchy(topo)
        for host in range(60):
            h.join(host)
        return topo, h

    def test_rekey_reaches_everyone_once(self, world):
        topo, h = world
        session = nice_multicast(h, topo, server_host=60)
        assert set(session.arrival) == set(range(60))
        assert session.duplicate_copies == {}

    def test_rekey_enters_via_root(self, world):
        topo, h = world
        session = nice_multicast(h, topo, server_host=60)
        assert session.upstream[h.root] == 60
        first_edge = session.edges[0]
        assert (first_edge.src_host, first_edge.dst_host) == (60, h.root)

    def test_data_reaches_everyone_once(self, world):
        topo, h = world
        session = nice_multicast(h, topo, source_host=7)
        assert set(session.arrival) == set(range(60)) - {7}
        assert session.duplicate_copies == {}

    def test_data_enters_via_local_leader(self, world):
        topo, h = world
        source = 7
        local = h.cluster_of[0][source]
        session = nice_multicast(h, topo, source_host=source)
        if local.leader != source:
            assert session.edges[0].dst_host == local.leader

    def test_exactly_one_source_required(self, world):
        topo, h = world
        with pytest.raises(ValueError):
            nice_multicast(h, topo)
        with pytest.raises(ValueError):
            nice_multicast(h, topo, source_host=1, server_host=60)

    def test_leaders_carry_the_stress(self, world):
        """NICE concentrates forwarding on leaders — non-leaders forward
        at most to their own clusters."""
        topo, h = world
        session = nice_multicast(h, topo, server_host=60)
        stresses = {host: session.user_stress(host) for host in session.arrival}
        max_host = max(stresses, key=stresses.get)
        # the most stressed host must be a multi-layer member (a leader)
        assert len(h.clusters_containing(max_host)) >= 2

    def test_downstream_hosts_partition(self, world):
        topo, h = world
        session = nice_multicast(h, topo, server_host=60)
        below_root = set(session.downstream_hosts(h.root))
        assert below_root == set(session.arrival) - {h.root}
