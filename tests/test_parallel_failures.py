"""Failure paths of the parallel replication runner.

The equivalence suite proves ParallelRunner's results are byte-identical
to the serial loop; these tests pin down what happens when a worker does
*not* finish: Python-level exceptions (including a verification
InvariantViolation, which must arrive with every report intact), hard
worker death, and the empty-task edge case.
"""

import os

import pytest
from concurrent.futures.process import BrokenProcessPool

from repro.experiments.parallel import (
    ParallelRunner,
    replication_seeds,
    worker_context,
)
from repro.verify import InvariantViolation, ViolationReport


# ----------------------------------------------------------------------
# Workers must be module-level: the executor pickles them per chunk.
# ----------------------------------------------------------------------
def _square(task):
    return task * task


def _context_echo(task):
    return (task, worker_context())


def _explode_on_three(task):
    if task == 3:
        raise ValueError(f"task {task} exploded")
    return task


def _die_hard_on_two(task):
    if task == 2:
        os._exit(17)  # bypasses all exception handling, kills the worker
    return task


def _violate_on_two(task):
    if task == 2:
        raise InvariantViolation(
            [
                ViolationReport(
                    checker="exactly-once",
                    citation="Theorem 1",
                    detail="2 member(s) received duplicate copies",
                    offending_ids=("[0,1,2]", "[0,1,3]"),
                    seed=42,
                    repro="python tools/check_invariants.py --seed 42",
                ),
                ViolationReport(
                    checker="differential-oracle",
                    citation="Theorem 1 (delivery-tree uniqueness)",
                    detail="edge count 11 != reference 10",
                ),
            ],
            context=f"worker task {task}",
        )
    return task


class TestEmptyAndSerial:
    def test_empty_task_list_returns_empty(self):
        assert ParallelRunner(processes=4).map(_square, []) == []

    def test_empty_task_list_does_not_touch_context(self):
        runner = ParallelRunner(processes=4)
        assert runner.map(_context_echo, [], context="ctx") == []
        assert worker_context() is None

    def test_serial_exception_propagates_and_clears_context(self):
        runner = ParallelRunner(processes=1)
        with pytest.raises(ValueError, match="task 3 exploded"):
            runner.map(_explode_on_three, [1, 2, 3, 4], context="ctx")
        assert worker_context() is None


class TestWorkerExceptions:
    def test_worker_exception_propagates(self):
        runner = ParallelRunner(processes=2)
        with pytest.raises(ValueError, match="task 3 exploded"):
            runner.map(_explode_on_three, [1, 2, 3, 4])

    def test_worker_exception_clears_context(self):
        runner = ParallelRunner(processes=2)
        with pytest.raises(ValueError):
            runner.map(_explode_on_three, [1, 2, 3, 4], context="ctx")
        assert worker_context() is None

    def test_results_ordered_when_no_worker_fails(self):
        runner = ParallelRunner(processes=3)
        assert runner.map(_square, list(range(20))) == [
            n * n for n in range(20)
        ]


class TestHardWorkerDeath:
    def test_dead_worker_raises_broken_pool_instead_of_hanging(self):
        runner = ParallelRunner(processes=2)
        with pytest.raises(BrokenProcessPool):
            runner.map(_die_hard_on_two, [1, 2, 3, 4])

    def test_dead_worker_still_clears_context(self):
        runner = ParallelRunner(processes=2)
        with pytest.raises(BrokenProcessPool):
            runner.map(_die_hard_on_two, [1, 2, 3, 4], context="ctx")
        assert worker_context() is None


class TestViolationPropagation:
    def test_violation_crosses_process_boundary_with_reports(self):
        runner = ParallelRunner(processes=2)
        with pytest.raises(InvariantViolation) as exc_info:
            runner.map(_violate_on_two, [1, 2, 3, 4])
        violation = exc_info.value
        assert violation.checkers == ("exactly-once", "differential-oracle")
        first = violation.reports[0]
        assert first.citation == "Theorem 1"
        assert first.offending_ids == ("[0,1,2]", "[0,1,3]")
        assert first.seed == 42
        assert first.repro == "python tools/check_invariants.py --seed 42"
        assert violation.reports[1].detail == "edge count 11 != reference 10"
        # The rendered message must survive the round-trip too.
        assert "duplicate copies" in str(violation)

    def test_violation_identical_to_serial_raise(self):
        serial = ParallelRunner(processes=1)
        with pytest.raises(InvariantViolation) as serial_info:
            serial.map(_violate_on_two, [1, 2, 3, 4])
        parallel = ParallelRunner(processes=2)
        with pytest.raises(InvariantViolation) as parallel_info:
            parallel.map(_violate_on_two, [1, 2, 3, 4])
        assert parallel_info.value.reports == serial_info.value.reports
        assert str(parallel_info.value) == str(serial_info.value)


class TestReplicationSeeds:
    def test_seed_schedule_is_the_serial_loops(self):
        assert replication_seeds(7, 3) == [1007, 2007, 3007]
