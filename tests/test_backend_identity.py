"""Byte-identity of reliable sessions across scheduling backends.

The refactor's acceptance bar: running the *same* reliable multicast on
the ``"simulator"`` backend and the standalone ``"eventloop"`` backend
must produce

* equal :class:`~repro.alm.reliable.ReliableOutcome` values — every
  field, including per-node :class:`~repro.metrics.faults.RepairStats`;
* byte-equal normalized traces (``TraceContext.render()``), the same
  normalization the golden-trace fixtures use;

on clean networks and under every fault class the plans can inject.
Each backend gets a freshly built world and a freshly seeded
:class:`~repro.faults.FaultPlan` so the comparison starts from identical
inputs — any divergence is the scheduler's doing.
"""

from __future__ import annotations

import numpy as np
import pytest

from tests.conftest import make_static_world
from repro.alm.reliable import ReliabilityConfig, ReliableSession
from repro.core.ids import Id, IdScheme
from repro.faults import FaultPlan
from repro.trace import hooks as trace_hooks

pytestmark = pytest.mark.conformance

BACKENDS = ("simulator", "eventloop")
SCHEME = IdScheme(3, 4)
SEED = 7  # tools/check_invariants.py base seed

PAYLOADS = [f"key-{i}" for i in range(6)]


def random_ids(n, seed=SEED, scheme=SCHEME):
    rng = np.random.default_rng(seed)
    seen = set()
    while len(seen) < n:
        seen.add(
            tuple(int(rng.integers(0, scheme.base)) for _ in range(scheme.num_digits))
        )
    return [Id(t) for t in sorted(seen)]


#: name -> fresh fault plan (None = clean network).  Fresh per call:
#: a FaultPlan carries RNG state, so backends must not share one.
SCENARIOS = {
    "clean": lambda: None,
    "drop20": lambda: FaultPlan(seed=42).drop(0.2),
    "duplicate": lambda: FaultPlan(seed=42).duplicate(0.15, copies=2),
    "reorder-delay": lambda: (
        FaultPlan(seed=42).reorder(0.3, spread=80.0).delay(0.2, jitter=25.0)
    ),
    "crash": lambda: FaultPlan(seed=42).drop(0.1).crash(host=2, at=40.0, until=400.0),
    "kitchen-sink": lambda: (
        FaultPlan(seed=SEED)
        .drop(0.15)
        .delay(0.1, jitter=30.0)
        .reorder(0.1, spread=50.0)
        .duplicate(0.05)
        .crash(host=5, at=60.0, until=500.0)
    ),
}

FAULTY = [name for name in SCENARIOS if name != "clean"]


def run_session(backend, scenario, members=25, trace=False):
    """Build a fresh world + plan and run one multicast on ``backend``.

    Returns ``(outcome, rendered_trace_or_None)``."""
    ids = random_ids(members)
    topology, _, tables, server_table = make_static_world(
        SCHEME, ids, seed=SEED, k=2
    )
    plan = SCENARIOS[scenario]()
    config = ReliabilityConfig()
    session = ReliableSession(
        tables,
        server_table,
        topology,
        config=config,
        plan=plan,
        backend=backend,
    )
    if not trace:
        return session.multicast(PAYLOADS), None
    with trace_hooks.tracing(seed=SEED, label=f"identity-{scenario}") as ctx:
        outcome = session.multicast(PAYLOADS)
    return outcome, ctx.render()


class TestOutcomeIdentity:
    @pytest.mark.parametrize("scenario", list(SCENARIOS))
    def test_outcomes_equal_across_backends(self, scenario):
        sim_outcome, _ = run_session("simulator", scenario)
        loop_outcome, _ = run_session("eventloop", scenario)
        # Dataclass equality covers source, payloads, delivered, missing,
        # aggregate stats, and per-node stats in one comparison.
        assert sim_outcome == loop_outcome

    def test_clean_network_delivers_everything(self):
        outcome, _ = run_session("eventloop", "clean")
        assert outcome.delivery_ratio == 1.0
        assert outcome.duplicates_surfaced == 0

    @pytest.mark.parametrize("scenario", FAULTY)
    def test_faulty_scenarios_inject_for_real(self, scenario):
        """Guard against vacuous identity: each fault scenario must
        actually perturb the run (otherwise the cross-backend comparison
        proves nothing about fault handling)."""
        ids = random_ids(25)
        topology, _, tables, server_table = make_static_world(
            SCHEME, ids, seed=SEED, k=2
        )
        plan = SCENARIOS[scenario]()
        session = ReliableSession(
            tables, server_table, topology, plan=plan, backend="eventloop"
        )
        session.multicast(PAYLOADS)
        assert plan.stats.total_injected() > 0


@pytest.mark.faults
class TestOutcomeIdentityUnderFaults:
    """The -m faults lane's view of the same property: byte-identical
    repair behaviour while a plan is actively injecting."""

    @pytest.mark.parametrize("scenario", FAULTY)
    def test_fault_stats_equal_across_backends(self, scenario):
        stats = []
        for backend in BACKENDS:
            ids = random_ids(25)
            topology, _, tables, server_table = make_static_world(
                SCHEME, ids, seed=SEED, k=2
            )
            plan = SCENARIOS[scenario]()
            session = ReliableSession(
                tables, server_table, topology, plan=plan, backend=backend
            )
            outcome = session.multicast(PAYLOADS)
            stats.append(
                (
                    plan.stats,
                    outcome.stats,
                    session.transport.stats,
                )
            )
        assert stats[0] == stats[1]

    def test_repair_recovers_losses_on_both_backends(self):
        for backend in BACKENDS:
            outcome, _ = run_session(backend, "drop20")
            assert outcome.stats.retransmissions > 0
            assert outcome.delivery_ratio > 0.9


class TestTraceIdentity:
    @pytest.mark.parametrize("scenario", ["clean", "drop20", "kitchen-sink"])
    def test_normalized_traces_byte_equal(self, scenario):
        _, sim_trace = run_session("simulator", scenario, trace=True)
        _, loop_trace = run_session("eventloop", scenario, trace=True)
        assert sim_trace is not None and sim_trace
        assert sim_trace.encode() == loop_trace.encode()

    def test_trace_contains_the_scheduler_run_span(self):
        """Both backends must emit the same ``sim.run`` span the golden
        fixtures expect — the eventloop cannot rename it without
        breaking byte identity."""
        _, rendered = run_session("eventloop", "clean", trace=True)
        assert '"sim.run"' in rendered
        assert '"sim.events"' in rendered
