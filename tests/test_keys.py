"""Unit tests for the key/encryption value types (Section 2.4's
identification scheme)."""

import pytest

from repro.core.ids import Id, NULL_ID
from repro.keytree.keys import Encryption, RekeyMessage


def enc(enc_digits, new_digits, versions=(0, 1)):
    return Encryption(
        Id(enc_digits), versions[0], Id(new_digits), versions[1]
    )


class TestEncryption:
    def test_id_is_encrypting_key_id(self):
        e = enc([1, 2], [1])
        assert e.id == Id([1, 2])

    def test_payload_ignored_in_equality(self):
        a = Encryption(Id([1]), 0, NULL_ID, 1, payload=b"x")
        b = Encryption(Id([1]), 0, NULL_ID, 1, payload=b"y")
        assert a == b
        assert hash(a) == hash(b)

    def test_versions_distinguish(self):
        assert enc([1], [], (0, 1)) != enc([1], [], (1, 2))

    def test_needed_by_matches_lemma3(self):
        e = enc([2, 0], [2])
        assert e.needed_by(Id([2, 0, 5]))
        assert not e.needed_by(Id([2, 1, 5]))

    def test_root_key_needed_by_everyone(self):
        e = enc([], [])
        assert e.needed_by(Id([7, 7, 7]))


class TestRekeyMessage:
    def test_rekey_cost_counts_encryptions(self):
        message = RekeyMessage(0, (enc([1], []), enc([2], [])))
        assert message.rekey_cost == 2

    def test_needed_by_filters(self):
        message = RekeyMessage(
            3, (enc([1], []), enc([2], []), enc([1, 0], [1]))
        )
        needed = message.needed_by(Id([1, 0, 9]))
        assert [e.id for e in needed] == [Id([1]), Id([1, 0])]

    def test_restricted_to_preserves_interval(self):
        e1, e2 = enc([1], []), enc([2], [])
        message = RekeyMessage(7, (e1, e2))
        restricted = message.restricted_to([e2])
        assert restricted.interval == 7
        assert restricted.encryptions == (e2,)

    def test_empty_message(self):
        message = RekeyMessage(0, ())
        assert message.rekey_cost == 0
        assert message.needed_by(Id([0])) == ()
