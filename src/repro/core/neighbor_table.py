"""Neighbor tables and K-consistency (Section 2.2, Definition 3).

A user's neighbor table has ``D`` rows of ``B`` entries.  The ``(i,j)``-
entry contains user records of up to ``K`` users belonging to the owner's
``(i,j)``-ID subtree, arranged in increasing order of their RTT to the
owner; the first is the *primary* neighbor.  The entry with ``j`` equal to
the owner's own ``i``-th digit is always empty.

The key server maintains a one-row table: its ``(0,j)``-entry holds the
``K`` users with the smallest RTT to the server among those whose 0th
digit is ``j``.

Tables are *K-consistent* (Definition 3) when every entry holds
``min(K, m)`` neighbors, ``m`` being the current population of the
corresponding ID subtree.  1-consistency is what Theorem 1's exactly-once
multicast delivery relies on; ``K > 1`` buys failure resilience.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from operator import itemgetter
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from .id_tree import IdTree
from .ids import Id, IdScheme


@dataclass(frozen=True)
class UserRecord:
    """What one member knows about another: the paper's *user record*
    (IP address — here a topology host index — plus ID and metadata).

    ``access_rtt`` is the RTT between the user and its gateway router,
    carried in each record copy so that others can compute gateway-to-
    gateway RTTs (Section 3.1.2).  ``join_time`` is the key-server clock
    value used for leader election in the cluster heuristic (Appendix B).
    """

    user_id: Id
    host: int
    access_rtt: float = 0.0
    join_time: float = 0.0


#: Sort key for (rtt, record) pairs; records themselves are not ordered,
#: so entries sort on RTT only (stable, preserving insertion order on ties).
_RTT_KEY = itemgetter(0)

#: Sort/search key for (digit, record) row pairs in StaticPrimaryTable.
_DIGIT_KEY = itemgetter(0)


@dataclass
class _Entry:
    """One (i,j)-entry: neighbors with their measured RTTs, sorted by
    increasing RTT.  ``ids`` mirrors the member IDs for O(1) duplicate
    checks on the insert hot path."""

    neighbors: List[Tuple[float, UserRecord]] = field(default_factory=list)
    ids: Set[Id] = field(default_factory=set)

    def records(self) -> List[UserRecord]:
        return [record for _, record in self.neighbors]

    def primary(self) -> Optional[UserRecord]:
        return self.neighbors[0][1] if self.neighbors else None


class NeighborTable:
    """A user's (or the key server's) neighbor table.

    ``_mutation_epoch`` is a class-wide counter bumped by every mutating
    operation on *any* table.  Cross-table caches (the compiled fan-out
    structures of :mod:`repro.compute.numpy_backend`) record the epoch
    they were built at and recompile when it moves — a coarse but exact
    invalidation: any table mutation anywhere invalidates every compiled
    structure, and an unchanged epoch guarantees no table changed.

    The key server's table is modelled as a table whose owner ID is the
    null string: only row 0 is populated and no entry is skipped as "own
    digit" (the server has no digits).
    """

    _mutation_epoch = 0  # class-wide; see the docstring

    def __init__(self, scheme: IdScheme, owner: UserRecord, k: int):
        if k < 1:
            raise ValueError("K must be at least 1")
        self.scheme = scheme
        self.owner = owner
        self.k = k
        self._entries: Dict[Tuple[int, int], _Entry] = {}
        # Flat snapshot of all records, rebuilt lazily after mutations so
        # query()/contains() sweeps do not re-walk the entry dict each time.
        self._records_cache: Optional[List[UserRecord]] = None
        # Per-row primaries, rebuilt lazily after mutations: FORWARD asks
        # for the same rows once per session, and tables don't change
        # mid-session.
        self._primaries_cache: Dict[int, List[Tuple[int, UserRecord]]] = {}
        # Hot-path constants for slot_for (called once per insert).
        self._server_flag = owner.user_id.is_null
        self._own_digits = owner.user_id.digits
        self._depth = scheme.num_digits

    # ------------------------------------------------------------------
    @property
    def is_server_table(self) -> bool:
        return self.owner.user_id.is_null

    @property
    def num_rows(self) -> int:
        return 1 if self.is_server_table else self.scheme.num_digits

    def _check_slot(self, i: int, j: int) -> None:
        if not 0 <= i < self.num_rows:
            raise IndexError(f"row {i} outside [0, {self.num_rows})")
        if not 0 <= j < self.scheme.base:
            raise IndexError(f"column {j} outside [0, B)")

    def entry(self, i: int, j: int) -> List[UserRecord]:
        """Records in the (i,j)-entry, closest first."""
        self._check_slot(i, j)
        e = self._entries.get((i, j))
        return e.records() if e else []

    def primary(self, i: int, j: int) -> Optional[UserRecord]:
        """The (i,j)-primary neighbor: first record of the entry."""
        self._check_slot(i, j)
        e = self._entries.get((i, j))
        return e.primary() if e else None

    def entry_rtts(self, i: int, j: int) -> List[float]:
        self._check_slot(i, j)
        e = self._entries.get((i, j))
        return [rtt for rtt, _ in e.neighbors] if e else []

    def row_primaries(self, i: int) -> List[Tuple[int, UserRecord]]:
        """``(j, primary neighbor)`` for every non-empty entry of row
        ``i``, in digit order.  This is what FORWARD iterates over —
        scanning only populated entries rather than all ``B`` columns.

        Cached per row until the next mutation; callers must not mutate
        the returned list."""
        pairs = self._primaries_cache.get(i)
        if pairs is None:
            pairs = [
                (j, e.neighbors[0][1])
                for (row, j), e in self._entries.items()
                if row == i and e.neighbors
            ]
            pairs.sort(key=lambda p: p[0])
            self._primaries_cache[i] = pairs
        return pairs

    def slot_for(self, record: UserRecord) -> Optional[Tuple[int, int]]:
        """The unique (i,j)-entry where a record belongs in this table, or
        ``None`` when it belongs nowhere (duplicate/own ID).

        A record for user ``w`` belongs to the entry ``(i, w.ID[i])`` where
        ``i`` is the length of the longest common prefix of the owner's and
        ``w``'s IDs — exactly the condition of Definition 3.
        """
        rd = record.user_id.digits
        if self._server_flag:
            return (0, rd[0])
        i = 0
        for a, b in zip(self._own_digits, rd):
            if a != b:
                break
            i += 1
        if i >= self._depth:
            return None  # the owner itself (or a duplicate ID)
        return (i, rd[i])

    def contains(self, user_id: Id) -> bool:
        return any(user_id in e.ids for e in self._entries.values())

    def all_records(self) -> Iterator[UserRecord]:
        cache = self._records_cache
        if cache is None:
            cache = [
                record
                for e in self._entries.values()
                for _, record in e.neighbors
            ]
            self._records_cache = cache
        return iter(cache)

    def num_neighbors(self) -> int:
        return sum(len(e.neighbors) for e in self._entries.values())

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, record: UserRecord, rtt: float) -> bool:
        """Offer a record to the table; it is kept iff its entry has room
        or the record beats the entry's worst RTT.  Returns True iff the
        table changed."""
        slot = self.slot_for(record)
        if slot is None:
            return False
        e = self._entries.get(slot)
        if e is None:
            e = self._entries[slot] = _Entry()
        elif record.user_id in e.ids:
            return False
        e.neighbors.append((rtt, record))
        e.neighbors.sort(key=_RTT_KEY)
        e.ids.add(record.user_id)
        self._records_cache = None
        self._primaries_cache.clear()
        NeighborTable._mutation_epoch += 1
        if len(e.neighbors) > self.k:
            dropped = e.neighbors.pop()
            e.ids.discard(dropped[1].user_id)
            return dropped[1].user_id != record.user_id
        return True

    def fill(self, pairs: Iterable[Tuple[UserRecord, float]]) -> None:
        """Batch form of :meth:`insert` for table construction: offer many
        ``(record, rtt)`` pairs at once.

        Each entry is sorted once and truncated to ``K``, instead of
        re-sorting per insert.  Because the sort is stable and ties keep
        offer order, the surviving neighbors and their order are exactly
        what the equivalent sequence of :meth:`insert` calls would leave —
        provided each user ID appears at most once in ``pairs`` (as in
        table construction, where every known user is offered exactly
        once; sequential inserts can re-admit an ID whose earlier record
        was already evicted, which a single batched pass cannot see).
        """
        entries = self._entries
        slot_for = self.slot_for
        for record, rtt in pairs:
            slot = slot_for(record)
            if slot is None:
                continue
            e = entries.get(slot)
            if e is None:
                e = entries[slot] = _Entry()
            elif record.user_id in e.ids:
                continue
            e.neighbors.append((rtt, record))
            e.ids.add(record.user_id)
        k = self.k
        for e in entries.values():
            neighbors = e.neighbors
            if len(neighbors) > 1:
                neighbors.sort(key=_RTT_KEY)
            if len(neighbors) > k:
                for _, dropped in neighbors[k:]:
                    e.ids.discard(dropped.user_id)
                del neighbors[k:]
        self._records_cache = None
        self._primaries_cache.clear()
        NeighborTable._mutation_epoch += 1

    def remove(self, user_id: Id) -> bool:
        """Delete a user's record wherever it appears (leave / failure).
        Returns True iff something was removed."""
        removed = False
        for slot, e in list(self._entries.items()):
            if user_id not in e.ids:
                continue
            kept = [(rtt, r) for rtt, r in e.neighbors if r.user_id != user_id]
            removed = True
            if kept:
                e.neighbors = kept
                e.ids.discard(user_id)
            else:
                del self._entries[slot]
        if removed:
            self._records_cache = None
            self._primaries_cache.clear()
            NeighborTable._mutation_epoch += 1
        return removed

    def underfilled_slots(self, subtree_sizes: Callable[[int, int], int]) -> List[Tuple[int, int]]:
        """Entries holding fewer than ``min(K, m)`` neighbors, given a
        callable returning the population ``m`` of each (i,j)-ID subtree.
        Used by the leave/failure repair path to know what to re-fill."""
        slots: List[Tuple[int, int]] = []
        own = self.owner.user_id
        for i in range(self.num_rows):
            for j in range(self.scheme.base):
                if not self.is_server_table and j == own[i]:
                    continue
                m = subtree_sizes(i, j)
                have = len(self._entries.get((i, j), _Entry()).neighbors)
                if have < min(self.k, m):
                    slots.append((i, j))
        return slots


class StaticPrimaryTable:
    """An immutable K=1 neighbor table defined by shared row lists.

    The scale-ladder worlds (:mod:`repro.perf.scale`) derive perfectly
    1-consistent tables straight from the ID trie: entry ``(i, j)`` of
    any member with prefix ``p`` is a fixed representative of the
    ``p + j`` subtree.  Members sharing a prefix therefore share row
    lists — ``rows[i]`` is the fully materialized ``row_primaries(i)``
    result, ``[(j, record), ...]`` sorted by ``j`` with the owner's own
    digit already skipped — so a 10k-member world is a few MB instead
    of 10k full :class:`NeighborTable` objects.

    The class quacks like :class:`NeighborTable` as far as the FORWARD
    fan-out and the differential oracle read it (``scheme``, ``owner``,
    ``is_server_table``, ``row_primaries``, ``primary``, ``entry``) and
    never mutates.
    """

    def __init__(self, scheme: IdScheme, owner: UserRecord,
                 rows: "List[List[Tuple[int, UserRecord]]]"):
        self.scheme = scheme
        self.owner = owner
        self.k = 1
        self._rows = rows

    @property
    def is_server_table(self) -> bool:
        return self.owner.user_id.is_null

    @property
    def num_rows(self) -> int:
        return len(self._rows)

    def row_primaries(self, i: int) -> List[Tuple[int, UserRecord]]:
        return self._rows[i]

    def primary(self, i: int, j: int) -> Optional[UserRecord]:
        """The (i,j)-primary, by binary search over the sorted row."""
        row = self._rows[i]
        pos = bisect_left(row, j, key=_DIGIT_KEY)
        if pos < len(row) and row[pos][0] == j:
            return row[pos][1]
        return None

    def entry(self, i: int, j: int) -> List[UserRecord]:
        record = self.primary(i, j)
        return [record] if record is not None else []


# ----------------------------------------------------------------------
# Consistency checking and oracle construction
# ----------------------------------------------------------------------
def check_k_consistency(
    tables: Dict[Id, NeighborTable],
    id_tree: IdTree,
    k: int,
) -> List[str]:
    """Verify Definition 3 over a set of user tables; returns violations
    (empty list when the tables are K-consistent)."""
    problems: List[str] = []
    scheme = id_tree.scheme
    for owner_id, table in tables.items():
        for i in range(scheme.num_digits):
            for j in range(scheme.base):
                records = table.entry(i, j)
                if j == owner_id[i]:
                    if records:
                        problems.append(
                            f"{owner_id}: ({i},{j})-entry must be empty"
                        )
                    continue
                m = id_tree.subtree_size(id_tree.ij_subtree_root(owner_id, i, j))
                want = min(k, m)
                if len(records) != want:
                    problems.append(
                        f"{owner_id}: ({i},{j})-entry has {len(records)} "
                        f"neighbors, wants min(K={k}, m={m}) = {want}"
                    )
                subtree_root = id_tree.ij_subtree_root(owner_id, i, j)
                for record in records:
                    if not subtree_root.is_prefix_of(record.user_id):
                        problems.append(
                            f"{owner_id}: ({i},{j})-entry holds {record.user_id} "
                            f"outside subtree {subtree_root}"
                        )
    return problems


def build_consistent_tables(
    scheme: IdScheme,
    records: Iterable[UserRecord],
    rtt: Callable[[int, int], float],
    k: int,
) -> Dict[Id, NeighborTable]:
    """Oracle construction of K-consistent tables for a static group.

    For every user and every (i,j)-entry, picks the ``min(K, m)`` users of
    the corresponding ID subtree with the smallest RTTs — the state the
    (Silk-based) join protocol provably converges to.  The paper uses a
    simplified Silk join in its simulator; we additionally maintain tables
    incrementally in :mod:`repro.core.membership`, and the test suite
    checks both against this oracle's consistency.
    """
    record_list = list(records)
    tables: Dict[Id, NeighborTable] = {}
    for owner in record_list:
        table = NeighborTable(scheme, owner, k)
        for other in record_list:
            if other.user_id == owner.user_id:
                continue
            table.insert(other, rtt(owner.host, other.host))
        tables[owner.user_id] = table
    return tables


def build_server_table(
    scheme: IdScheme,
    server_host: int,
    records: Iterable[UserRecord],
    rtt: Callable[[int, int], float],
    k: int,
) -> NeighborTable:
    """The key server's one-row table: per 0th digit ``j``, the ``K`` users
    closest to the server (Section 2.2)."""
    from .ids import NULL_ID

    table = NeighborTable(scheme, UserRecord(NULL_ID, server_host), k)
    for record in records:
        table.insert(record, rtt(server_host, record.host))
    return table
