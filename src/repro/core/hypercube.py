"""Hypercube (PRR/Pastry-style) unicast routing over neighbor tables.

The neighbor tables exist to embed multicast trees, but — as the paper
notes by lineage (Section 2.2 cites PRR/Pastry/Tapestry/Silk) — they
support classic prefix routing too: to reach ID ``d`` from member ``m``,
forward to a neighbor sharing one more leading digit with ``d``; with
K-consistent tables the route reaches an existing destination in at most
``D`` overlay hops.

Routing *toward* an ID that no user owns terminates at a deterministic
*rendezvous* member (digit-wise closest occupant of the ID space).  All
members converge on the same rendezvous because the fallback digit
choice depends only on which ID subtrees are populated — global
information every K-consistent table agrees on.  This is what a
Scribe-style per-group tree (:mod:`repro.alm.scribe`) is built around.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .ids import Id, IdScheme
from .neighbor_table import NeighborTable, UserRecord


@dataclass(frozen=True)
class Route:
    """A prefix route: the member records visited, source first."""

    hops: List[UserRecord]
    destination: Id

    @property
    def terminal(self) -> UserRecord:
        return self.hops[-1]

    @property
    def num_hops(self) -> int:
        return len(self.hops) - 1

    def total_delay(self, topology) -> float:
        return sum(
            topology.one_way_delay(a.host, b.host)
            for a, b in zip(self.hops, self.hops[1:])
        )


def _cyclic_distance(a: int, b: int, base: int) -> int:
    diff = abs(a - b)
    return min(diff, base - diff)


def _choose_digit(
    table: NeighborTable, level: int, wanted: int, own_digit: int
) -> Optional[int]:
    """The digit to descend into at ``level``: the wanted digit if its
    subtree is populated (or it is our own), else the populated digit
    cyclically closest to it (ties toward the smaller digit)."""
    base = table.scheme.base
    populated = {j for j, _ in table.row_primaries(level)}
    populated.add(own_digit)  # our own subtree is populated by us
    if wanted in populated:
        return wanted
    if not populated:
        return None
    return min(
        populated,
        key=lambda j: (_cyclic_distance(j, wanted, base), j),
    )


def route_toward(
    start: UserRecord,
    destination: Id,
    tables: Dict[Id, NeighborTable],
) -> Route:
    """Prefix-route from ``start`` toward ``destination``.

    Returns the route; its terminal is the destination's owner when the
    destination is a live user ID, or the deterministic rendezvous
    member otherwise.
    """
    scheme = tables[start.user_id].scheme
    scheme.validate_user_id(destination)
    current = start
    hops = [current]
    level = current.user_id.common_prefix_len(destination)
    # `effective` tracks the digit choices made so far, so the notion of
    # "shares one more digit" keeps meaning after a fallback.
    effective = list(destination.digits)
    while level < scheme.num_digits:
        table = tables[current.user_id]
        digit = _choose_digit(
            table, level, effective[level], current.user_id[level]
        )
        if digit is None:
            break  # no populated subtree at all: current is terminal
        effective[level] = digit
        if digit == current.user_id[level]:
            level += 1  # we already match: descend without a hop
            continue
        next_hop = table.primary(level, digit)
        if next_hop is None:  # can't happen with consistent tables
            break
        current = next_hop
        hops.append(current)
        level = current.user_id.common_prefix_len(Id(effective))
    return Route(hops, destination)


def rendezvous_member(
    destination: Id, tables: Dict[Id, NeighborTable]
) -> Id:
    """The member every route toward ``destination`` terminates at."""
    some_member = next(iter(tables.values())).owner
    return route_toward(some_member, destination, tables).terminal.user_id
