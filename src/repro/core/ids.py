"""Identifier types for users, ID-tree nodes, keys, and encryptions.

The paper assigns every user an ID that is a string of ``D`` digits of base
``B`` (Section 2.1).  All user IDs *and their prefixes* are organized into
the ID tree.  Keys and encryptions are identified by ID-tree node IDs
(Section 2.4), i.e. by digit strings of length ``0..D``.  A single value
type, :class:`Id`, therefore serves as user ID, ID-tree node ID, key ID and
encryption ID; the distinction is only its length.

The null string (the ID-tree root, printed ``[]``) is ``Id(())``.

Performance notes: :class:`Id` objects are the dictionary keys of every
hot path in the simulator (receipts, neighbor tables, the ID tree), and
``prefix()`` feeds both the FORWARD fan-out and the Theorem-2 splitting
predicate.  The hash is therefore computed once at construction, and
prefixes are interned per instance so repeated ``prefix()`` /
``__getitem__`` slicing returns the same object without allocating.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Optional, Tuple


def _restore_id(digits: Tuple[int, ...]) -> "Id":
    """Pickle helper: rebuild an :class:`Id` from its digit tuple without
    dragging the per-instance prefix cache through the pickle stream."""
    return Id._from_digits(digits)


@dataclass(frozen=True, eq=False)
class Id:
    """An immutable string of digits, e.g. a user ID or a key ID.

    Digits are counted from left to right; the leftmost digit is the 0th
    digit, exactly as in the paper.  An :class:`Id` behaves like a read-only
    sequence of ``int`` digits and supports the prefix algebra the paper's
    lemmas are phrased in.
    """

    digits: Tuple[int, ...]

    def __init__(self, digits: Iterable[int] = ()):
        # Coerce and validate in a single pass (digits may arrive as numpy
        # integers; they must become plain ints for stable hashing).
        out = []
        append = out.append
        for d in digits:
            d = int(d)
            if d < 0:
                raise ValueError(f"ID digits must be non-negative: got {d}")
            append(d)
        ds = tuple(out)
        object.__setattr__(self, "digits", ds)
        object.__setattr__(self, "_hash", hash(ds))
        object.__setattr__(self, "_prefixes", None)

    @classmethod
    def _from_digits(cls, ds: Tuple[int, ...]) -> "Id":
        """Internal fast constructor for digit tuples that are already
        validated plain-int tuples (prefixes/extensions of existing IDs)."""
        self = object.__new__(cls)
        object.__setattr__(self, "digits", ds)
        object.__setattr__(self, "_hash", hash(ds))
        object.__setattr__(self, "_prefixes", None)
        return self

    def __reduce__(self):
        return (_restore_id, (self.digits,))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        if isinstance(other, Id):
            return self.digits == other.digits
        return NotImplemented

    def __ne__(self, other) -> bool:
        if self is other:
            return False
        if isinstance(other, Id):
            return self.digits != other.digits
        return NotImplemented

    def __len__(self) -> int:
        return len(self.digits)

    def __getitem__(self, index):
        if isinstance(index, slice):
            start, stop, step = index.indices(len(self.digits))
            if start == 0 and step == 1:
                return self.prefix(stop)
            return Id._from_digits(self.digits[index])
        return self.digits[index]

    def __iter__(self) -> Iterator[int]:
        return iter(self.digits)

    def __str__(self) -> str:
        return "[" + ",".join(str(d) for d in self.digits) + "]"

    def __repr__(self) -> str:
        return f"Id({list(self.digits)!r})"

    def __lt__(self, other: "Id") -> bool:
        return self.digits < other.digits

    @property
    def is_null(self) -> bool:
        """True for the null string ``[]`` (the ID-tree root / key server)."""
        return not self.digits

    def prefix(self, length: int) -> "Id":
        """The first ``length`` digits, i.e. ``ID[0 : length-1]`` in paper
        notation.  A non-positive ``length`` yields the null string, matching
        the paper's convention that ``u.ID[0 : i]`` is a null string for
        ``i < 0`` (Table 1)."""
        if length <= 0:
            return NULL_ID
        ds = self.digits
        if length >= len(ds):
            return self
        cache: Optional[Dict[int, Id]] = self._prefixes
        if cache is None:
            cache = {}
            object.__setattr__(self, "_prefixes", cache)
        p = cache.get(length)
        if p is None:
            p = Id._from_digits(ds[:length])
            cache[length] = p
        return p

    def is_prefix_of(self, other: "Id") -> bool:
        """Prefix test.  An ID is a prefix of itself, and the null string is
        a prefix of any ID (Section 2.1)."""
        sd = self.digits
        n = len(sd)
        if n == 0:
            return True
        od = other.digits
        return len(od) >= n and od[:n] == sd

    def shares_prefix(self, other: "Id", length: int) -> bool:
        """True iff both IDs agree on their first ``length`` digits."""
        if length <= 0:
            return True
        sd = self.digits
        od = other.digits
        return (
            len(sd) >= length
            and len(od) >= length
            and sd[:length] == od[:length]
        )

    def common_prefix_len(self, other: "Id") -> int:
        """Number of digits in the longest common prefix of the two IDs."""
        n = 0
        for a, b in zip(self.digits, other.digits):
            if a != b:
                break
            n += 1
        return n

    def extend(self, digit: int) -> "Id":
        """A new ID with ``digit`` appended."""
        d = int(digit)
        if d < 0:
            raise ValueError(f"ID digits must be non-negative: got {d}")
        return Id._from_digits(self.digits + (d,))

    def parent(self) -> "Id":
        """The ID with the last digit removed (the parent ID-tree node)."""
        if self.is_null:
            raise ValueError("the null ID has no parent")
        return self.prefix(len(self.digits) - 1)


#: The null string "[]" — the ID of the ID-tree root and of the key server.
NULL_ID = Id(())


@dataclass(frozen=True)
class IdScheme:
    """The (D, B) parameters of the identifier space.

    ``D`` is the number of digits in a user ID and ``B`` is the digit base.
    The paper uses ``D = 5`` and ``B = 256`` in its simulations.
    """

    num_digits: int
    base: int

    def __post_init__(self) -> None:
        if self.num_digits <= 0:
            raise ValueError(f"D must be positive, got {self.num_digits}")
        if self.base <= 1:
            raise ValueError(f"B must be at least 2, got {self.base}")

    def validate_user_id(self, user_id: Id) -> None:
        """Raise ``ValueError`` unless ``user_id`` is a full-length ID with
        every digit in ``[0, B)``."""
        if len(user_id) != self.num_digits:
            raise ValueError(
                f"user ID {user_id} has {len(user_id)} digits, "
                f"expected D={self.num_digits}"
            )
        self.validate_prefix(user_id)

    def validate_prefix(self, prefix: Id) -> None:
        """Raise ``ValueError`` unless ``prefix`` has length ``<= D`` and
        digits in ``[0, B)``."""
        if len(prefix) > self.num_digits:
            raise ValueError(
                f"ID {prefix} is longer than D={self.num_digits} digits"
            )
        for d in prefix:
            if not 0 <= d < self.base:
                raise ValueError(
                    f"digit {d} of {prefix} outside [0, {self.base})"
                )

    def is_user_id(self, candidate: Id) -> bool:
        """True iff ``candidate`` is a valid full-length user ID."""
        try:
            self.validate_user_id(candidate)
        except ValueError:
            return False
        return True

    def first_user_id(self) -> Id:
        """The ID assigned to the very first join: D digits of 0
        (Section 3.1)."""
        return Id((0,) * self.num_digits)

    def random_user_id(self, rng) -> Id:
        """A uniformly random full-length user ID (used by ablations that
        replace the topology-aware assignment with random IDs)."""
        return Id(tuple(int(rng.integers(0, self.base)) for _ in range(self.num_digits)))


#: Parameters used in all the paper's simulations (Section 2.1 / 4).
PAPER_SCHEME = IdScheme(num_digits=5, base=256)
