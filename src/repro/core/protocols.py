"""The seven rekey transport protocols of Table 2.

==== ============ ============= ================ ==============
name key tree     multicast     cluster rekeying rekey splitting
==== ============ ============= ================ ==============
P0'  original     NICE          n/a              no
P1'  original     NICE          n/a              yes
P1   modified     T-mesh        no               no
P2   modified     T-mesh        no               yes
P3   modified     T-mesh        yes              no
P4   modified     T-mesh        yes              yes
P0   original     IP multicast  n/a              no
==== ============ ============= ================ ==============

The Fig. 13 experiment (:mod:`repro.experiments.bandwidth`) evaluates all
seven on the same workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class RekeyProtocol:
    """One row of Table 2."""

    name: str
    key_tree: str          # "original" | "modified"
    multicast: str         # "nice" | "tmesh" | "ip"
    cluster_rekeying: Optional[bool]  # None where not applicable
    splitting: bool

    def __post_init__(self) -> None:
        if self.key_tree not in ("original", "modified"):
            raise ValueError(f"unknown key tree {self.key_tree!r}")
        if self.multicast not in ("nice", "tmesh", "ip"):
            raise ValueError(f"unknown multicast scheme {self.multicast!r}")
        if self.multicast == "tmesh" and self.cluster_rekeying is None:
            raise ValueError("T-mesh protocols must pick cluster rekeying")
        if self.multicast != "tmesh" and self.cluster_rekeying is not None:
            raise ValueError("cluster rekeying only applies to T-mesh")


PROTOCOLS: Dict[str, RekeyProtocol] = {
    "P0'": RekeyProtocol("P0'", "original", "nice", None, False),
    "P1'": RekeyProtocol("P1'", "original", "nice", None, True),
    "P1": RekeyProtocol("P1", "modified", "tmesh", False, False),
    "P2": RekeyProtocol("P2", "modified", "tmesh", False, True),
    "P3": RekeyProtocol("P3", "modified", "tmesh", True, False),
    "P4": RekeyProtocol("P4", "modified", "tmesh", True, True),
    "P0": RekeyProtocol("P0", "original", "ip", None, False),
}

#: The unsplit/split comparison pairs called out in Section 4.3.
SPLITTING_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("P0'", "P1'"),
    ("P1", "P2"),
    ("P3", "P4"),
)
