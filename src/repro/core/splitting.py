"""Rekey message splitting (Section 2.5, Fig. 5, Theorem 2).

Each member sends or forwards an encryption to a next hop if and only if
the encryption is needed by at least one user downstream of that hop.
Theorem 2 reduces the "needed downstream" test to pure prefix algebra on
IDs: for a next hop ``w`` reached from table row ``s`` (so ``w`` and all
its downstream users share the prefix ``w.ID[0:s]``, i.e. the first
``s+1`` digits), an encryption ``e`` is needed below iff ``e.ID`` is a
prefix of ``w.ID[0:s]`` or ``w.ID[0:s]`` is a prefix of ``e.ID``.

No member keeps any per-downstream-user state — this is the property that
distinguishes T-mesh splitting from splitting over a generic ALM tree
(Section 2.6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from ..compute import resolve_backend
from ..keytree.keys import Encryption, RekeyMessage
from ..net.routing import LinkStressCounter
from ..net.topology import Topology
from .ids import Id
from .tmesh import OverlayEdge, SessionResult


def next_hop_needs(encryption_id: Id, next_hop_id: Id, send_level: int) -> bool:
    """The Theorem-2 predicate: should an encryption be forwarded to an
    ``(s, j)``-neighbor ``w``?  True iff ``e.ID`` is a prefix of
    ``w.ID[0:s]`` or ``w.ID[0:s]`` is a prefix of ``e.ID`` (with
    ``w.ID[0:s]`` the first ``s+1`` digits, per the paper's notation)."""
    hop_prefix = next_hop_id.prefix(send_level + 1)
    return encryption_id.is_prefix_of(hop_prefix) or hop_prefix.is_prefix_of(
        encryption_id
    )


def split_for_next_hop(
    encryptions: Iterable[Encryption], next_hop_id: Id, send_level: int
) -> Tuple[Encryption, ...]:
    """REKEY-MESSAGE-SPLIT (Fig. 5): compose the separate message for one
    next hop from the encryptions the caller holds."""
    return tuple(
        e for e in encryptions if next_hop_needs(e.id, next_hop_id, send_level)
    )


@dataclass
class SplitSessionResult:
    """Bandwidth accounting of one rekey multicast with splitting applied.

    ``received`` / ``forwarded`` count *encryptions* per user, the
    quantities of Figs. 13(a) and (b); ``edge_loads`` records how many
    encryptions each overlay hop carried so per-network-link counts
    (Fig. 13(c)) can be charged along routed paths.
    """

    received: Dict[Id, int] = field(default_factory=dict)
    forwarded: Dict[Id, int] = field(default_factory=dict)
    edge_loads: List[Tuple[OverlayEdge, int]] = field(default_factory=list)
    received_sets: Dict[Id, Set[Encryption]] = field(default_factory=dict)

    def link_counts(self, topology: Topology) -> LinkStressCounter:
        """Charge every overlay hop's encryption count to the physical
        links on its routed path."""
        counter = LinkStressCounter(topology.num_links)
        for edge, load in self.edge_loads:
            if load > 0:
                counter.add_path(
                    topology.path_links(edge.src_host, edge.dst_host), load
                )
        return counter


def run_split_rekey(
    session: SessionResult,
    message: RekeyMessage,
    track_sets: bool = False,
    compute=None,
) -> SplitSessionResult:
    """Apply the splitting scheme along a finished T-mesh session.

    Processes hops in arrival order, maintaining for every member the set
    of encryptions it actually received, and filtering each outgoing hop
    with the Theorem-2 predicate *against the received set* — exactly what
    routine REKEY-MESSAGE-SPLIT does at each forwarder.  With
    ``track_sets=True`` the per-member received sets are retained so tests
    can verify Corollary 1 encryption by encryption.

    The work runs on a :mod:`repro.compute` backend (``compute`` is a
    backend name, instance, or ``None`` for the process default); the
    reference semantics live in
    :meth:`repro.compute.reference.ReferenceBackend.split_rekey` and
    every backend matches them exactly.
    """
    return resolve_backend(compute).split_rekey(session, message, track_sets)


def run_packet_split_rekey(
    session: SessionResult,
    message: RekeyMessage,
    packet_size: int,
) -> SplitSessionResult:
    """Packet-level splitting (the alternative of Section 2.5).

    The rekey message is split and re-composed at *packet* granularity
    instead of encryption granularity: encryptions are packed
    ``packet_size`` to a packet, and a whole packet is forwarded to a next
    hop iff any of its encryptions passes the Theorem-2 predicate.  The
    paper notes this costs more bandwidth than encryption-level splitting;
    the ablation benchmark quantifies the gap.
    """
    if packet_size < 1:
        raise ValueError("packet_size must be >= 1")
    packets: List[Tuple[Encryption, ...]] = [
        tuple(message.encryptions[i : i + packet_size])
        for i in range(0, len(message.encryptions), packet_size)
    ]
    result = SplitSessionResult()
    holdings: Dict[Id, Tuple[Tuple[Encryption, ...], ...]] = {
        session.sender: tuple(packets)
    }
    result.forwarded[session.sender] = 0
    for member in session.receipts:
        result.forwarded.setdefault(member, 0)
    for edge in sorted(session.edges, key=lambda e: (e.send_time, e.arrival_time)):
        have = holdings.get(edge.src, ())
        carried = tuple(
            packet
            for packet in have
            if any(
                next_hop_needs(e.id, edge.dst, edge.send_level) for e in packet
            )
        )
        load = sum(len(p) for p in carried)
        result.edge_loads.append((edge, load))
        result.forwarded[edge.src] = result.forwarded.get(edge.src, 0) + load
        receipt = session.receipts.get(edge.dst)
        if receipt is not None and receipt.upstream == edge.src:
            holdings[edge.dst] = carried
            result.received[edge.dst] = load
    return result


def run_unsplit_rekey(
    session: SessionResult, message_size: int
) -> SplitSessionResult:
    """Bandwidth accounting when the whole rekey message is flooded to
    everyone (protocols without splitting): every member receives the full
    message once and forwards one full copy per out-edge."""
    result = SplitSessionResult()
    result.forwarded[session.sender] = 0
    for member in session.receipts:
        result.received[member] = message_size
        result.forwarded.setdefault(member, 0)
    for edge in session.edges:
        result.edge_loads.append((edge, message_size))
        result.forwarded[edge.src] = result.forwarded.get(edge.src, 0) + message_size
    return result
