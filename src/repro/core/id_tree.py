"""The ID tree (Definitions 1 and 2 of the paper).

The ID tree is *conceptual*: neither the key server nor any user maintains
it as a distributed data structure.  We materialize it anyway because (a)
the modified key tree's structure must match it exactly (Section 2.4), (b)
the simulator and the test suite constantly ask subtree-membership
questions, and (c) the cluster rekeying heuristic is phrased in terms of
level-``(D-1)`` ID subtrees.

A node exists at level ``i`` iff some user's ID has that node's ID as a
prefix.  The root (level 0) is the null string ``[]``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from .ids import Id, IdScheme, NULL_ID


class IdTree:
    """The ID tree induced by a set of full-length user IDs.

    The tree is kept incrementally up to date as users are added and
    removed, so the key server can mirror it into the modified key tree
    cheaply at each rekey interval.
    """

    def __init__(self, scheme: IdScheme, user_ids: Iterable[Id] = ()):
        self.scheme = scheme
        # Maps each existing tree-node ID (prefix) to the set of user IDs
        # belonging to that node's subtree.
        self._members: Dict[Id, Set[Id]] = {}
        # Maps each existing tree-node ID to the set of digits of its
        # existing children, kept incrementally so "which child slots are
        # taken" queries need no per-digit probing (hot in the server-side
        # ID-completion step).
        self._child_digits: Dict[Id, Set[int]] = {}
        for uid in user_ids:
            self.add_user(uid)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_user(self, user_id: Id) -> None:
        """Insert a user; creates any missing nodes on its root path."""
        self.scheme.validate_user_id(user_id)
        if user_id in self._members.get(NULL_ID, ()):  # already present
            raise ValueError(f"user {user_id} already in ID tree")
        parent = None
        for level in range(self.scheme.num_digits + 1):
            prefix = user_id.prefix(level)
            self._members.setdefault(prefix, set()).add(user_id)
            if level > 0:
                self._child_digits.setdefault(parent, set()).add(
                    user_id.digits[level - 1]
                )
            parent = prefix

    def remove_user(self, user_id: Id) -> None:
        """Remove a user; prunes nodes left without descendants."""
        if user_id not in self._members.get(NULL_ID, ()):
            raise KeyError(f"user {user_id} not in ID tree")
        for level in range(self.scheme.num_digits + 1):
            prefix = user_id.prefix(level)
            members = self._members[prefix]
            members.discard(user_id)
            if not members:
                del self._members[prefix]
                if level > 0:
                    parent = user_id.prefix(level - 1)
                    digits = self._child_digits.get(parent)
                    if digits is not None:
                        digits.discard(user_id.digits[level - 1])
                        if not digits:
                            del self._child_digits[parent]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, node_id: Id) -> bool:
        return node_id in self._members

    def __len__(self) -> int:
        return len(self._members.get(NULL_ID, ()))

    @property
    def user_ids(self) -> Set[Id]:
        """The set of all user IDs currently in the tree."""
        return set(self._members.get(NULL_ID, ()))

    def node_ids(self) -> List[Id]:
        """All existing tree-node IDs (prefixes), root included."""
        return list(self._members)

    def has_node(self, node_id: Id) -> bool:
        """True iff a node with this ID exists (Definition 1)."""
        return node_id in self._members

    def users_in_subtree(self, node_id: Id) -> Set[Id]:
        """User IDs belonging to the subtree rooted at ``node_id``; empty if
        the node does not exist."""
        return set(self._members.get(node_id, ()))

    def subtree_size(self, node_id: Id) -> int:
        """Number of users belonging to the subtree rooted at ``node_id``."""
        return len(self._members.get(node_id, ()))

    def children(self, node_id: Id) -> List[Id]:
        """Existing child node IDs of ``node_id``, in digit order."""
        if node_id not in self._members or len(node_id) >= self.scheme.num_digits:
            return []
        return [node_id.extend(j) for j in sorted(self._child_digits.get(node_id, ()))]

    def child_digits(self, node_id: Id) -> Set[int]:
        """Digits of the existing children of ``node_id`` (empty when the
        node does not exist or is a leaf).  O(1) lookup against an
        incrementally maintained index."""
        return self._child_digits.get(node_id, set())

    def nodes_at_level(self, level: int) -> List[Id]:
        """All node IDs at a given level (level = number of digits)."""
        return [node for node in self._members if len(node) == level]

    def ij_subtree_root(self, user_id: Id, i: int, j: int) -> Id:
        """The root ID of the ``(i, j)``-ID subtree of ``user_id``
        (Definition 2): the level-``(i+1)`` node whose parent is the level-i
        ancestor of the user and whose last digit is ``j``."""
        if not 0 <= i <= self.scheme.num_digits - 1:
            raise ValueError(f"i={i} outside [0, D-1]")
        if not 0 <= j < self.scheme.base:
            raise ValueError(f"j={j} outside [0, B)")
        return user_id.prefix(i).extend(j)

    def ij_subtree_users(self, user_id: Id, i: int, j: int) -> Set[Id]:
        """User IDs belonging to the ``(i, j)``-ID subtree of ``user_id``.

        Per Definition 2, every such user ``w`` shares the first ``i``
        digits with ``user_id`` and has ``w.ID[i] == j``.
        """
        return self.users_in_subtree(self.ij_subtree_root(user_id, i, j))

    def bottom_clusters(self) -> Dict[Id, Set[Id]]:
        """Level-``(D-1)`` ID subtrees mapped to their member user IDs —
        the *bottom clusters* of the Appendix-B heuristic."""
        level = self.scheme.num_digits - 1
        return {
            node: set(self._members[node])
            for node in self._members
            if len(node) == level
        }
