"""The application layer: a secure group with *real* keys.

This is what a downstream user of the library adopts: a
:class:`SecureGroup` admits members, runs periodic batch rekey intervals
over the modified key tree in crypto mode, delivers the rekey message over
T-mesh with the splitting scheme, and lets members encrypt/decrypt group
data under the current group key.  Members hold real
:class:`~repro.crypto.keystore.KeyStore` s; a departed member provably
cannot read data encrypted after the interval in which it left (the test
suite and the examples check exactly that).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..crypto import AuthenticationError, cipher
from ..crypto.keystore import KeyStore
from ..keytree.keys import RekeyMessage
from ..keytree.modified_tree import ModifiedKeyTree, apply_rekey_message
from ..keytree.recovery import FecDecoder, FecEncoder, KeyPathGrant
from ..net.topology import Topology
from .id_assignment import IdAssigner, PAPER_THRESHOLDS
from .ids import Id, IdScheme, NULL_ID, PAPER_SCHEME
from .membership import Group
from .splitting import run_split_rekey
from .tmesh import rekey_session


class GroupMember:
    """One end host's view of the secure group."""

    def __init__(self, user_id: Id, host: int, keystore: KeyStore):
        self.user_id = user_id
        self.host = host
        self.keystore = keystore

    # ------------------------------------------------------------------
    @property
    def group_key_version(self) -> Optional[int]:
        return self.keystore.latest_version(NULL_ID)

    def apply_rekey(self, message: RekeyMessage) -> int:
        """Install every new key recoverable from a (possibly split) rekey
        message; returns the number of encryptions used."""
        return len(apply_rekey_message(self.keystore, message))

    # ------------------------------------------------------------------
    # Group data
    # ------------------------------------------------------------------
    def seal(self, plaintext: bytes) -> bytes:
        """Encrypt application data under the current group key.  The
        group-key version is prefixed in clear so receivers know which key
        decrypts (the paper's rekey messages carry key IDs the same way)."""
        version = self.group_key_version
        if version is None:
            raise RuntimeError(f"{self.user_id} holds no group key")
        secret = self.keystore.get(NULL_ID, version)
        return struct.pack(">I", version) + cipher.encrypt(secret, plaintext)

    def open(self, blob: bytes) -> bytes:
        """Decrypt group data; raises ``KeyError`` if this member never
        held the group-key version used, or ``AuthenticationError`` on
        tampering."""
        if len(blob) < 4:
            raise ValueError("sealed blob too short")
        (version,) = struct.unpack(">I", blob[:4])
        if not self.keystore.has(NULL_ID, version):
            raise KeyError(
                f"{self.user_id} does not hold group key version {version}"
            )
        return cipher.decrypt(self.keystore.get(NULL_ID, version), blob[4:])


@dataclass
class RekeyReport:
    """What one rekey interval did."""

    message: RekeyMessage
    delivered_encryptions: Dict[Id, int]  # per member, after splitting
    total_sent: int
    #: Members whose key state is incomplete after delivery (losses that
    #: FEC could not repair); candidates for unicast recovery.
    incomplete: Tuple[Id, ...] = ()
    fec_repaired_blocks: int = 0

    @property
    def rekey_cost(self) -> int:
        return self.message.rekey_cost


class SecureGroup:
    """Key server + members + transport, wired together.

    Joins run the real ID-assignment protocol against the live group;
    rekey intervals batch the queued joins/leaves, generate an
    authenticated rekey message from the crypto-mode modified key tree,
    multicast it over T-mesh with splitting, and apply each member's
    split share to its key store.
    """

    def __init__(
        self,
        topology: Topology,
        server_host: int,
        scheme: IdScheme = PAPER_SCHEME,
        thresholds=PAPER_THRESHOLDS,
        k: int = 4,
        seed: int = 0,
    ):
        self.scheme = scheme
        self.topology = topology
        rng = np.random.default_rng(seed)
        self.membership = Group(
            scheme,
            topology,
            server_host,
            IdAssigner(scheme, thresholds),
            k=k,
            rng=rng,
        )
        self.key_tree = ModifiedKeyTree(scheme, crypto=True, rng=rng)
        self.members: Dict[Id, GroupMember] = {}
        self._departed: List[GroupMember] = []

    # ------------------------------------------------------------------
    @property
    def num_members(self) -> int:
        return len(self.members)

    def member(self, user_id: Id) -> GroupMember:
        return self.members[user_id]

    def join(self, host: int) -> GroupMember:
        """Admit a new member: authenticate (modelled), assign its ID, and
        hand it its individual key and current path keys (Section 3.1.4).
        The auxiliary keys change at the end of the interval."""
        result = self.membership.join(host)
        user_id = result.record.user_id
        self.key_tree.request_join(user_id)
        member = GroupMember(user_id, host, self.key_tree.user_keystore(user_id))
        self.members[user_id] = member
        return member

    def leave(self, user_id: Id) -> GroupMember:
        """Process a leave request; the departure takes effect at the next
        rekey interval (batch rekeying)."""
        self.membership.leave(user_id)
        self.key_tree.request_leave(user_id)
        member = self.members.pop(user_id)
        self._departed.append(member)
        return member

    # ------------------------------------------------------------------
    def end_interval(
        self,
        loss_rate: float = 0.0,
        fec: Optional[FecEncoder] = None,
        loss_rng: Optional[np.random.Generator] = None,
    ) -> RekeyReport:
        """End the rekey interval: batch-rekey, multicast the rekey message
        over T-mesh with splitting, and apply each member's share.

        ``loss_rate`` drops each delivered packet independently (a user's
        share is packetized; without ``fec`` a lost packet means lost
        keys).  With a :class:`~repro.keytree.recovery.FecEncoder`, blocks
        carry XOR parity and single losses per block repair locally; the
        report lists members still incomplete (use
        :meth:`recover_member`)."""
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        # lint: disable=determinism-unseeded-rng -- interactive-use fallback; every driver/test threads a seeded Generator
        rng = loss_rng if loss_rng is not None else np.random.default_rng()
        message = self.key_tree.process_batch()
        delivered: Dict[Id, int] = {}
        incomplete = []
        total = 0
        repaired = 0
        if message.rekey_cost and self.members:
            session = rekey_session(
                self.membership.server_table, self.membership.tables, self.topology
            )
            split = run_split_rekey(session, message, track_sets=True)
            packetizer = fec if fec is not None else FecEncoder(packet_size=4)
            decoder = FecDecoder()
            for user_id, member in self.members.items():
                share = tuple(
                    sorted(
                        split.received_sets.get(user_id, set()),
                        key=lambda e: (len(e.id), e.id.digits),
                    )
                )
                if loss_rate > 0.0 and share:
                    packets = packetizer.encode(share)
                    if fec is None:  # no parity protection
                        packets = [p for p in packets if not p.is_parity]
                    survivors = [
                        p for p in packets if rng.random() >= loss_rate
                    ]
                    outcome = decoder.decode(survivors)
                    repaired += outcome.repaired_blocks
                    share = outcome.encryptions
                used = member.apply_rekey(message.restricted_to(share))
                delivered[user_id] = len(share)
                total += used
                if self._member_incomplete(member, user_id):
                    incomplete.append(user_id)
        return RekeyReport(
            message, delivered, total, tuple(incomplete), repaired
        )

    def _member_incomplete(self, member: GroupMember, user_id: Id) -> bool:
        return any(
            member.keystore.latest_version(key_id)
            != self.key_tree.node_version(key_id)
            for key_id in self.key_tree.path_key_ids(user_id)
        )

    # ------------------------------------------------------------------
    def recover_member(self, user_id: Id) -> KeyPathGrant:
        """Limited unicast recovery (reference [31]): the member asks the
        key server for its current key path; the server replies over the
        individual-key-protected channel and the member installs it."""
        member = self.members[user_id]
        grant = KeyPathGrant(
            user_id,
            tuple(
                (key_id, self.key_tree.node_version(key_id),
                 self.key_tree.node_secret(key_id))
                for key_id in self.key_tree.path_key_ids(user_id)
            ),
        )
        for key_id, version, secret in grant.keys:
            member.keystore.put(key_id, version, secret)
        return grant

    # ------------------------------------------------------------------
    def verify_member_keys(self) -> List[str]:
        """Audit: every current member must hold the latest group key and
        exactly its path keys at current versions.  Returns violations."""
        problems: List[str] = []
        if not self.members:
            return problems
        group_version = self.key_tree.group_key_version()
        for user_id, member in self.members.items():
            if member.group_key_version != group_version:
                problems.append(
                    f"{user_id}: group key version "
                    f"{member.group_key_version} != {group_version}"
                )
            for key_id in self.key_tree.path_key_ids(user_id):
                want = self.key_tree.node_version(key_id)
                have = member.keystore.latest_version(key_id)
                if have != want:
                    problems.append(
                        f"{user_id}: key {key_id} at version {have}, "
                        f"server has {want}"
                    )
        return problems
