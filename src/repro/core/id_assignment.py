"""Distributed user-ID assignment (Section 3.1).

A joining user determines its ID digit by digit.  For digit ``i``
(``0 <= i <= D-2``) it:

1. **collects** user records from each of its ``(i, j)``-ID subtrees by
   querying users it already knows (target prefix = its determined digits),
   refining per subtree until it holds ``P`` records from the subtree or
   has queried everyone it collected from it;
2. **measures** gateway-to-gateway RTTs ``r(u, w) = h(u, w) - h(u, gw_u) -
   h(w, gw_w)`` to every collected user;
3. computes the ``F``-percentile of the RTTs per subtree, takes the
   subtree ``b`` with the smallest percentile ``f_{i,b}``, and accepts
   digit ``b`` iff ``f_{i,b} <= R_{i+1}``; otherwise it stops and asks the
   key server to assign all remaining digits;
4. **notifies** the key server, which assigns the digit after the
   determined prefix so that no other user shares the resulting prefix
   (footnote 3 gives the fallback when that is impossible).

The paper's parameters: ``P = 10``, ``F = 90``-percentile,
``R = (150, 30, 9, 3)`` ms for ``D = 5``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..net.topology import Topology
from ..perf import percentile_linear
from .id_tree import IdTree
from .ids import Id, IdScheme, NULL_ID
from .neighbor_table import UserRecord

#: Delay thresholds used in all the paper's simulations (ms): R_1 .. R_4.
PAPER_THRESHOLDS = (150.0, 30.0, 9.0, 3.0)

#: Section 3.1.1 / 3.1.3 parameters used throughout the paper.
PAPER_COLLECT_TARGET = 10
PAPER_PERCENTILE = 90.0

#: Signature of the query service: ``query(responder, target_prefix)``
#: returns the records, among the responder's neighbors, whose IDs carry
#: the target prefix (Section 3.1.1).
QueryFn = Callable[[UserRecord, Id], List[UserRecord]]


@dataclass
class DigitDecision:
    """Bookkeeping for one digit of the assignment (for analysis/tests)."""

    digit_index: int
    pools: Dict[int, int]           # subtree digit -> records collected
    percentiles: Dict[int, float]   # subtree digit -> F-percentile RTT
    chosen: Optional[int]           # accepted digit, None if sent to server
    queries: int                    # query messages sent for this digit


@dataclass
class AssignmentOutcome:
    """Result of the user-driven part of the protocol: the prefix the user
    determined itself plus measurement bookkeeping."""

    determined_prefix: Id
    decisions: List[DigitDecision] = field(default_factory=list)

    @property
    def total_queries(self) -> int:
        return sum(d.queries for d in self.decisions)


class IdAssigner:
    """Runs the Section 3.1 protocol for joining users."""

    def __init__(
        self,
        scheme: IdScheme,
        thresholds: Sequence[float] = PAPER_THRESHOLDS,
        percentile: float = PAPER_PERCENTILE,
        collect_target: int = PAPER_COLLECT_TARGET,
    ):
        if len(thresholds) != scheme.num_digits - 1:
            raise ValueError(
                f"need D-1={scheme.num_digits - 1} thresholds R_1..R_(D-1), "
                f"got {len(thresholds)}"
            )
        if any(t <= 0 for t in thresholds):
            raise ValueError("thresholds must be positive")
        if not 0 < percentile <= 100:
            raise ValueError("percentile must be in (0, 100]")
        if collect_target < 1:
            raise ValueError("collect target P must be >= 1")
        self.scheme = scheme
        self.thresholds = tuple(float(t) for t in thresholds)
        self.percentile = float(percentile)
        self.collect_target = int(collect_target)

    # ------------------------------------------------------------------
    def determine_prefix(
        self,
        joiner_host: int,
        joiner_access_rtt: float,
        topology: Topology,
        query: QueryFn,
        bootstrap: UserRecord,
    ) -> AssignmentOutcome:
        """Steps 1–3 for every digit ``0 .. D-2``; stops early when no
        subtree is close enough.  ``bootstrap`` is the record of a user
        already in the group, provided by the key server."""
        outcome = AssignmentOutcome(NULL_ID)
        prefix = NULL_ID
        known: Dict[Id, UserRecord] = {bootstrap.user_id: bootstrap}
        for i in range(self.scheme.num_digits - 1):
            decision = self._determine_digit(
                i, prefix, joiner_host, joiner_access_rtt, topology, query, known
            )
            outcome.decisions.append(decision)
            if decision.chosen is None:
                break
            prefix = prefix.extend(decision.chosen)
        outcome.determined_prefix = prefix
        return outcome

    def _determine_digit(
        self,
        i: int,
        prefix: Id,
        joiner_host: int,
        joiner_access_rtt: float,
        topology: Topology,
        query: QueryFn,
        known: Dict[Id, UserRecord],
    ) -> DigitDecision:
        pools = self._collect(i, prefix, query, known)
        decision = DigitDecision(
            digit_index=i,
            pools={j: len(p) for j, p in pools.items()},
            percentiles={},
            chosen=None,
            queries=self._last_query_count,
        )
        # Steps 2 & 3: gateway-to-gateway RTTs and the percentile rule.
        # The per-pool pings are batched (r(u, w) = h(u,w) - h(u,gw_u) -
        # h(w,gw_w), floored at zero, with the scalar path's operand
        # order), and the F-percentile uses the exact scalar equivalent of
        # np.percentile's linear method.
        best_digit, best_value = None, float("inf")
        for j, pool in pools.items():
            if not pool:
                continue
            records = list(pool.values())
            end_to_end = topology.rtt_many(
                joiner_host, [rec.host for rec in records]
            )
            access = np.array(
                [rec.access_rtt for rec in records], dtype=np.float64
            )
            rtts = np.maximum(0.0, (end_to_end - joiner_access_rtt) - access)
            f_ij = percentile_linear(rtts, self.percentile)
            decision.percentiles[j] = f_ij
            if f_ij < best_value:
                best_digit, best_value = j, f_ij
        if best_digit is not None and best_value <= self.thresholds[i]:
            decision.chosen = best_digit
        return decision

    def _gateway_rtt(
        self,
        joiner_host: int,
        joiner_access_rtt: float,
        record: UserRecord,
        topology: Topology,
    ) -> float:
        """``r(u, w)`` from Section 3.1.2, computed the way a real joiner
        would: the end-to-end ping RTT minus the two access RTTs (the
        remote one read from the user record)."""
        end_to_end = topology.rtt(joiner_host, record.host)
        return max(0.0, end_to_end - joiner_access_rtt - record.access_rtt)

    # ------------------------------------------------------------------
    def _collect(
        self,
        i: int,
        prefix: Id,
        query: QueryFn,
        known: Dict[Id, UserRecord],
    ) -> Dict[int, Dict[Id, UserRecord]]:
        """Step 1: collect records from every ``(i, j)``-ID subtree.

        Seeds the pools by querying known users that carry the current
        prefix, then refines each subtree with targeted queries until it
        has ``P`` records or has queried everyone collected from it.
        """
        self._last_query_count = 0
        pools: Dict[int, Dict[Id, UserRecord]] = {}
        pd = prefix.digits
        npd = len(pd)

        def absorb(record: UserRecord) -> None:
            uid = record.user_id
            rd = uid.digits
            if rd[:npd] != pd:
                return
            known[uid] = record
            pool = pools.get(rd[i])
            if pool is None:
                pool = pools[rd[i]] = {}
            pool[uid] = record

        # Initial phase: one query to a known user carrying the prefix
        # (Section 3.1.1).  K-consistency of the responder's table makes a
        # single response discover every populated (i, j)-ID subtree.
        seeds = [r for r in known.values() if r.user_id.digits[:npd] == pd]
        for seed in seeds:
            absorb(seed)
        queried = set()
        if seeds:
            self._last_query_count += 1
            queried.add(seeds[0].user_id)
            for record in query(seeds[0], prefix):
                absorb(record)

        for j in list(pools):
            pool = pools[j]
            queried = set(queried)
            while len(pool) < self.collect_target:
                target = next(
                    (r for uid, r in pool.items() if uid not in queried), None
                )
                if target is None:
                    break  # queried everyone collected from this subtree
                queried.add(target.user_id)
                self._last_query_count += 1
                for record in query(target, prefix.extend(j)):
                    absorb(record)
        return pools


def synthesize_clustered_ids(
    num_users: int,
    rng: np.random.Generator,
    bounds: Sequence[int],
) -> List[Tuple[int, ...]]:
    """``num_users`` distinct clustered digit tuples, deterministic in
    ``rng``: digit ``k`` is uniform in ``[0, bounds[k])``, drawn in
    rejection batches, keeping the first occurrence of each tuple in
    draw order.

    This is the scale-world ID generator (docs/PERFORMANCE.md, "Scale
    ladder").  Tight low-level bounds cluster users the way the paper's
    Section 3.1 assignment does — nearby users share prefixes — which is
    what makes the derived trie tables bushy at the top.  The vectorized
    twin :func:`repro.compute.arraytable.synthesize_clustered_codes`
    consumes the generator identically and must stay bitwise-equal.
    """
    ids: List[Tuple[int, ...]] = []
    seen = set()
    while len(ids) < num_users:
        batch = rng.integers(
            0, np.asarray(bounds), size=(num_users - len(ids), len(bounds))
        )
        for row in batch.tolist():
            digits = tuple(row)
            if digits not in seen:
                seen.add(digits)
                ids.append(digits)
    return ids


def complete_user_id(
    id_tree: IdTree,
    prefix: Id,
    rng: Optional[np.random.Generator] = None,
) -> Id:
    """Step 4, server side: extend a determined prefix of length ``l`` to a
    full ID such that no existing user shares the first ``l+1`` digits.

    Remaining digits beyond position ``l`` are zero — the new user is then
    the sole occupant of a fresh level-``(l+1)`` ID subtree.  Footnote 3's
    fallback applies when every digit at position ``l`` is taken: earlier
    digits are re-assigned (deepest first) to find a fresh subtree, and as
    a last resort any globally unique full ID is used.
    """
    scheme = id_tree.scheme
    # lint: disable=determinism-unseeded-rng -- interactive-use fallback; every driver/test threads a seeded Generator
    rng = rng if rng is not None else np.random.default_rng()

    def fresh_digit(base_prefix: Id) -> Optional[int]:
        # The ID tree indexes each node's populated child digits, so the
        # free set needs no per-digit has_node probes.
        taken = id_tree.child_digits(base_prefix)
        if not taken:
            free = range(scheme.base)
            count = scheme.base
        else:
            free = [j for j in range(scheme.base) if j not in taken]
            count = len(free)
            if not count:
                return None
        return int(free[int(rng.integers(0, count))])

    def complete_with_zeros(stem: Id) -> Id:
        return Id(stem.digits + (0,) * (scheme.num_digits - len(stem)))

    digit = fresh_digit(prefix)
    if digit is not None:
        return complete_with_zeros(prefix.extend(digit))

    # Footnote-3 fallback: modify u.ID[l-1], then u.ID[l-2], ... to carve
    # out a unique prefix one level up.
    for back in range(len(prefix) - 1, -1, -1):
        stem = prefix.prefix(back)
        digit = fresh_digit(stem)
        if digit is not None:
            return complete_with_zeros(stem.extend(digit))

    # Last resort: force the user into some existing level-1 ID subtree at
    # any free leaf position.
    existing = id_tree.user_ids
    for _ in range(4 * scheme.base):
        candidate = scheme.random_user_id(rng)
        if candidate not in existing:
            return candidate
    raise RuntimeError("ID space exhausted: no unique user ID available")
