"""T-mesh: the paper's multicast scheme (Section 2.3, Fig. 2).

A multicast session has a sender (the key server for rekey transport, a
user for data transport), a message, and every other member as receiver.
The message carries a ``forward_level`` field.  The sender is at
forwarding level 0; a user is at level ``i`` when it receives the message
with ``forward_level == i``.

``FORWARD`` (Fig. 2): the key server sends a copy with level 1 to each
``(0,j)``-primary neighbor; a user at level ``level`` sends, for each row
``i`` from ``level`` to ``D-1``, a copy with level ``i+1`` to each
``(i,j)``-primary neighbor.

Theorem 1: with 1-consistent tables and no losses, every member other than
the sender receives exactly one copy.  The session runner below records
enough to let the test suite check that theorem, Lemmas 1/2, and every
latency metric of Section 4.1 (user stress, application-layer delay, RDP).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from ..net.topology import Topology
from .ids import Id, NULL_ID
from .neighbor_table import NeighborTable, UserRecord

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..faults.plan import FaultPlan


@dataclass(frozen=True)
class OverlayEdge:
    """One overlay hop of a multicast session.

    ``send_level`` is the row index ``s`` the sender used when it looked up
    the next hop: the next hop is an ``(s, j)``-primary neighbor of the
    sender and receives the message with ``forward_level = s + 1``
    (``s = 0`` rows for the key server).  The pair (edge, ``send_level``)
    is exactly what the splitting scheme's Theorem-2 predicate consumes.
    """

    src: Id
    dst: Id
    src_host: int
    dst_host: int
    send_level: int
    send_time: float
    arrival_time: float


@dataclass(frozen=True)
class Receipt:
    """First delivery of the multicast message to one member."""

    member: Id
    host: int
    arrival_time: float  # application-layer delay from the sender (ms)
    forward_level: int
    upstream: Id


@dataclass
class SessionResult:
    """Everything observed during one multicast session."""

    sender: Id
    sender_host: int
    receipts: Dict[Id, Receipt] = field(default_factory=dict)
    edges: List[OverlayEdge] = field(default_factory=list)
    duplicate_copies: Dict[Id, int] = field(default_factory=dict)

    # -- Section 4.1 metrics ------------------------------------------
    def user_stress(self, member: Id) -> int:
        """Number of messages the member forwards in the session."""
        return sum(1 for e in self.edges if e.src == member)

    def app_delay(self, member: Id) -> float:
        """Latency from the sender's send to the member's first copy."""
        return self.receipts[member].arrival_time

    def rdp(self, member: Id, topology: Topology) -> float:
        """Relative delay penalty: application-layer delay over the
        one-way unicast delay from the sender to the member."""
        unicast = topology.one_way_delay(self.sender_host, self.receipts[member].host)
        if unicast <= 0:
            return 1.0
        return self.app_delay(member) / unicast

    def copies_received(self, member: Id) -> int:
        return (1 if member in self.receipts else 0) + self.duplicate_copies.get(
            member, 0
        )

    def out_edges(self, member: Id) -> List[OverlayEdge]:
        return [e for e in self.edges if e.src == member]

    def downstream_users(self, member: Id) -> List[Id]:
        """All members below ``member`` in the session's delivery tree."""
        children: Dict[Id, List[Id]] = {}
        for e in self.edges:
            receipt = self.receipts.get(e.dst)
            # Only tree edges (the delivering copy) define downstream-ness.
            if receipt is not None and receipt.upstream == e.src:
                children.setdefault(e.src, []).append(e.dst)
        result: List[Id] = []
        stack = list(children.get(member, ()))
        while stack:
            node = stack.pop()
            result.append(node)
            stack.extend(children.get(node, ()))
        return result


def run_multicast(
    sender_table: NeighborTable,
    tables: Dict[Id, NeighborTable],
    topology: Topology,
    processing_delay: float = 0.0,
    failed_hosts: Optional[set] = None,
    use_backups: bool = False,
    fault_plan: Optional["FaultPlan"] = None,
) -> SessionResult:
    """Run one T-mesh multicast session and record its delivery tree.

    ``sender_table`` is the key server's one-row table for rekey transport
    or the sending user's table for data transport; ``tables`` maps every
    user ID to its neighbor table.  Delivery is simulated with an event
    queue ordered by arrival time; each hop costs the topology's one-way
    delay plus ``processing_delay`` per forward.

    ``failed_hosts`` models crashed members whose records may still be in
    tables: a copy sent to a failed host is lost (and so is its whole
    subtree).  With ``use_backups=True``, forwarders apply the paper's
    K > 1 recovery (Section 2.3): on detecting a failed next hop they
    forward to the next neighbor in the same table entry instead.

    ``fault_plan`` subjects every overlay hop to an injected
    :class:`~repro.faults.FaultPlan` — drops lose the copy (and, without
    repair, its whole subtree), delays/reordering shift its arrival, and
    duplication enqueues extra copies (surfacing as
    ``duplicate_copies``).  This is the *unrepaired* transport; layer
    :class:`repro.alm.reliable.ReliableSession` on top for NACK repair.
    """
    sender = sender_table.owner
    result = SessionResult(sender=sender.user_id, sender_host=sender.host)
    counter = itertools.count()  # tie-breaker for the heap
    queue: List[Tuple[float, int, UserRecord, int, Id]] = []
    failed = failed_hosts if failed_hosts is not None else set()

    def pick_next_hop(table: NeighborTable, i: int, j: int) -> Optional[UserRecord]:
        """The (i,j)-primary, or — with backups enabled — the closest
        live neighbor of the same entry."""
        entry = table.entry(i, j)
        if not entry:
            return None
        if not use_backups:
            return entry[0]
        return next((r for r in entry if r.host not in failed), None)

    def forward(member: UserRecord, table: NeighborTable, level: int, now: float) -> None:
        """The FORWARD routine of Fig. 2 for one member."""
        num_digits = table.scheme.num_digits
        if level >= num_digits:
            return
        if table.is_server_table:
            rows = [0]
        else:
            rows = range(level, num_digits)
        for i in rows:
            for j, primary in table.row_primaries(i):
                nbr = primary
                if use_backups and primary.host in failed:
                    nbr = pick_next_hop(table, i, j)
                    if nbr is None:
                        continue
                if fault_plan is None:
                    extra_delays = (0.0,)
                else:
                    extra_delays = fault_plan.apply(
                        member.host, nbr.host, None, now
                    )
                base_arrival = (
                    now
                    + processing_delay
                    + topology.one_way_delay(member.host, nbr.host)
                )
                result.edges.append(
                    OverlayEdge(
                        src=member.user_id,
                        dst=nbr.user_id,
                        src_host=member.host,
                        dst_host=nbr.host,
                        send_level=i,
                        send_time=now,
                        arrival_time=base_arrival,
                    )
                )
                for extra in extra_delays:
                    heapq.heappush(
                        queue,
                        (
                            base_arrival + extra,
                            next(counter),
                            nbr,
                            i + 1,
                            member.user_id,
                        ),
                    )

    forward(sender, sender_table, 0, 0.0)
    while queue:
        arrival, _, record, level, upstream = heapq.heappop(queue)
        member_id = record.user_id
        if record.host in failed:
            continue  # the copy is lost at a crashed member
        if member_id in result.receipts or member_id == sender.user_id:
            result.duplicate_copies[member_id] = (
                result.duplicate_copies.get(member_id, 0) + 1
            )
            continue  # Theorem 1 says this never fires with consistent tables
        result.receipts[member_id] = Receipt(
            member=member_id,
            host=record.host,
            arrival_time=arrival,
            forward_level=level,
            upstream=upstream,
        )
        table = tables.get(member_id)
        if table is not None:
            forward(record, table, level, arrival)
    return result


def rekey_session(
    server_table: NeighborTable,
    tables: Dict[Id, NeighborTable],
    topology: Topology,
    processing_delay: float = 0.0,
) -> SessionResult:
    """A rekey-transport session: the key server is the sender."""
    if not server_table.is_server_table:
        raise ValueError("rekey transport must be sourced at the key server")
    return run_multicast(server_table, tables, topology, processing_delay)


def data_session(
    sender_id: Id,
    tables: Dict[Id, NeighborTable],
    topology: Topology,
    processing_delay: float = 0.0,
) -> SessionResult:
    """A data-transport session: a particular user is the sender."""
    if sender_id == NULL_ID or sender_id not in tables:
        raise ValueError(f"sender {sender_id} is not a user in the group")
    return run_multicast(tables[sender_id], tables, topology, processing_delay)
