"""T-mesh: the paper's multicast scheme (Section 2.3, Fig. 2).

A multicast session has a sender (the key server for rekey transport, a
user for data transport), a message, and every other member as receiver.
The message carries a ``forward_level`` field.  The sender is at
forwarding level 0; a user is at level ``i`` when it receives the message
with ``forward_level == i``.

``FORWARD`` (Fig. 2): the key server sends a copy with level 1 to each
``(0,j)``-primary neighbor; a user at level ``level`` sends, for each row
``i`` from ``level`` to ``D-1``, a copy with level ``i+1`` to each
``(i,j)``-primary neighbor.

Theorem 1: with 1-consistent tables and no losses, every member other than
the sender receives exactly one copy.  The session runner below records
enough to let the test suite check that theorem, Lemmas 1/2, and every
latency metric of Section 4.1 (user stress, application-layer delay, RDP).

Two runners are provided:

* :func:`run_multicast` — the fully general event loop (failures, backup
  neighbors, fault injection);
* :class:`SessionPlan` — a reusable fan-out schedule for replaying many
  fault-free sessions over the same ``(sender_table, tables)`` pair, as
  the figure experiments do.  The plan memoizes each member's per-level
  forwarding schedule and reads delays from the topology's dense one-way
  matrix when available, producing results identical to
  :func:`run_multicast` at a fraction of the cost.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Dict, List, NamedTuple, Optional, Tuple, TYPE_CHECKING

from ..compute import resolve_backend
from ..net.topology import Topology
from ..trace import hooks as _trace_hooks
from ..verify import hooks as _verify_hooks
from .ids import Id, NULL_ID
from .neighbor_table import NeighborTable, UserRecord

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..faults.plan import FaultPlan


class OverlayEdge(NamedTuple):
    """One overlay hop of a multicast session.

    ``send_level`` is the row index ``s`` the sender used when it looked up
    the next hop: the next hop is an ``(s, j)``-primary neighbor of the
    sender and receives the message with ``forward_level = s + 1``
    (``s = 0`` rows for the key server).  The pair (edge, ``send_level``)
    is exactly what the splitting scheme's Theorem-2 predicate consumes.

    A ``NamedTuple`` rather than a dataclass: sessions create one edge per
    member, and tuple construction is the cheapest object creation Python
    offers on that hot path.
    """

    src: Id
    dst: Id
    src_host: int
    dst_host: int
    send_level: int
    send_time: float
    arrival_time: float


class Receipt(NamedTuple):
    """First delivery of the multicast message to one member."""

    member: Id
    host: int
    arrival_time: float  # application-layer delay from the sender (ms)
    forward_level: int
    upstream: Id


class SessionResult:
    """Everything observed during one multicast session.

    The per-member metric accessors (``user_stress``, ``out_edges``) are
    backed by a lazily built source-index over ``edges``, so sweeping a
    metric over all members is O(members + edges) instead of the
    O(members x edges) a per-member scan would cost.  The index is
    rebuilt transparently if ``edges`` grows after a lookup (repair
    layers append edges to finished sessions).

    A result may be *deferred* (:meth:`deferred`): accelerated compute
    backends keep a session as arrays and build the Python
    receipt/edge/duplicate objects only on first access, so pipelines
    that only feed the session onward (or read a handful of metrics)
    never pay for objects they don't look at.  Materialization is
    transparent — every accessor behaves as if the session were built
    eagerly — and happens at most once.
    """

    __slots__ = (
        "sender",
        "sender_host",
        "_receipts",
        "_edges",
        "_duplicates",
        "_build",
        "_src_index",
        "_src_index_size",
        "_split_prep",
    )

    def __init__(
        self,
        sender: Id,
        sender_host: int,
        receipts: Optional[Dict[Id, Receipt]] = None,
        edges: Optional[List[OverlayEdge]] = None,
        duplicate_copies: Optional[Dict[Id, int]] = None,
    ):
        self.sender = sender
        self.sender_host = sender_host
        self._receipts = {} if receipts is None else receipts
        self._edges = [] if edges is None else edges
        self._duplicates = {} if duplicate_copies is None else duplicate_copies
        self._build: Optional[Callable[[], Tuple]] = None
        self._src_index: Optional[Dict[Id, List[OverlayEdge]]] = None
        self._src_index_size = -1
        self._split_prep = None  # cache slot for repro.compute split kernels

    @classmethod
    def deferred(
        cls, sender: Id, sender_host: int, build: Callable[[], Tuple]
    ) -> "SessionResult":
        """A session whose ``build()`` -> ``(receipts, edges,
        duplicate_copies)`` runs on first payload access."""
        result = cls(sender, sender_host)
        result._build = build
        return result

    def _materialize(self) -> None:
        build = self._build
        self._build = None
        self._receipts, self._edges, self._duplicates = build()

    @property
    def receipts(self) -> Dict[Id, Receipt]:
        if self._build is not None:
            self._materialize()
        return self._receipts

    @property
    def edges(self) -> List[OverlayEdge]:
        if self._build is not None:
            self._materialize()
        return self._edges

    @property
    def duplicate_copies(self) -> Dict[Id, int]:
        if self._build is not None:
            self._materialize()
        return self._duplicates

    # Same equality the former dataclass had: payload fields compare,
    # caches don't, unhashable.
    def __eq__(self, other) -> bool:
        if not isinstance(other, SessionResult):
            return NotImplemented
        return (
            self.sender == other.sender
            and self.sender_host == other.sender_host
            and self.receipts == other.receipts
            and self.edges == other.edges
            and self.duplicate_copies == other.duplicate_copies
        )

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        return (
            f"SessionResult(sender={self.sender!r}, "
            f"sender_host={self.sender_host!r}, receipts={self.receipts!r}, "
            f"edges={self.edges!r}, "
            f"duplicate_copies={self.duplicate_copies!r})"
        )

    # Deferred builders close over backend arrays and are not picklable;
    # a session crossing a process boundary ships materialized.
    def __getstate__(self):
        return (
            self.sender,
            self.sender_host,
            self.receipts,
            self.edges,
            self.duplicate_copies,
        )

    def __setstate__(self, state) -> None:
        (
            self.sender,
            self.sender_host,
            self._receipts,
            self._edges,
            self._duplicates,
        ) = state
        self._build = None
        self._src_index = None
        self._src_index_size = -1
        self._split_prep = None

    def _edges_by_src(self) -> Dict[Id, List[OverlayEdge]]:
        index = self._src_index
        if index is None or self._src_index_size != len(self.edges):
            index = {}
            for e in self.edges:
                bucket = index.get(e.src)
                if bucket is None:
                    index[e.src] = [e]
                else:
                    bucket.append(e)
            self._src_index = index
            self._src_index_size = len(self.edges)
        return index

    # -- Section 4.1 metrics ------------------------------------------
    def user_stress(self, member: Id) -> int:
        """Number of messages the member forwards in the session."""
        bucket = self._edges_by_src().get(member)
        return len(bucket) if bucket else 0

    def app_delay(self, member: Id) -> float:
        """Latency from the sender's send to the member's first copy."""
        return self.receipts[member].arrival_time

    def rdp(self, member: Id, topology: Topology) -> float:
        """Relative delay penalty: application-layer delay over the
        one-way unicast delay from the sender to the member."""
        unicast = topology.one_way_delay(self.sender_host, self.receipts[member].host)
        if unicast <= 0:
            return 1.0
        return self.app_delay(member) / unicast

    def copies_received(self, member: Id) -> int:
        return (1 if member in self.receipts else 0) + self.duplicate_copies.get(
            member, 0
        )

    def out_edges(self, member: Id) -> List[OverlayEdge]:
        return list(self._edges_by_src().get(member, ()))

    # -- Reference implementations ------------------------------------
    # O(edges)-per-member scans kept for the equivalence tests and the
    # complexity micro-benchmark; semantically identical to the indexed
    # accessors above.
    def user_stress_scan(self, member: Id) -> int:
        return sum(1 for e in self.edges if e.src == member)

    def out_edges_scan(self, member: Id) -> List[OverlayEdge]:
        return [e for e in self.edges if e.src == member]

    def canonical_receipt_digest(self) -> str:
        """Hex blake2b over the canonical receipt rows (sorted by packed
        member code) — the dense-path half of the scale ladder's
        dense-vs-streaming bitwise equivalence check; see
        :mod:`repro.compute.arraytable`.  Raises ``ValueError`` for
        schemes whose IDs don't bit-pack."""
        from ..compute.arraytable import session_receipt_digest

        return session_receipt_digest(self)

    def downstream_users(self, member: Id) -> List[Id]:
        """All members below ``member`` in the session's delivery tree."""
        children: Dict[Id, List[Id]] = {}
        for e in self.edges:
            receipt = self.receipts.get(e.dst)
            # Only tree edges (the delivering copy) define downstream-ness.
            if receipt is not None and receipt.upstream == e.src:
                children.setdefault(e.src, []).append(e.dst)
        result: List[Id] = []
        stack = list(children.get(member, ()))
        while stack:
            node = stack.pop()
            result.append(node)
            stack.extend(children.get(node, ()))
        return result


def run_multicast(
    sender_table: NeighborTable,
    tables: Dict[Id, NeighborTable],
    topology: Topology,
    processing_delay: float = 0.0,
    failed_hosts: Optional[set] = None,
    use_backups: bool = False,
    fault_plan: Optional["FaultPlan"] = None,
    compute=None,
) -> SessionResult:
    """Run one T-mesh multicast session and record its delivery tree.

    ``sender_table`` is the key server's one-row table for rekey transport
    or the sending user's table for data transport; ``tables`` maps every
    user ID to its neighbor table.  Delivery is simulated with an event
    queue ordered by arrival time; each hop costs the topology's one-way
    delay plus ``processing_delay`` per forward.

    ``failed_hosts`` models crashed members whose records may still be in
    tables: a copy sent to a failed host is lost (and so is its whole
    subtree).  With ``use_backups=True``, forwarders apply the paper's
    K > 1 recovery (Section 2.3): on detecting a failed next hop they
    forward to the next neighbor in the same table entry instead.

    ``fault_plan`` subjects every overlay hop to an injected
    :class:`~repro.faults.FaultPlan` — drops lose the copy (and, without
    repair, its whole subtree), delays/reordering shift its arrival, and
    duplication enqueues extra copies (surfacing as
    ``duplicate_copies``).  This is the *unrepaired* transport; layer
    :class:`repro.alm.reliable.ReliableSession` on top for NACK repair.

    ``compute`` selects the :mod:`repro.compute` backend used for the
    fault-free case (a name, an instance, or ``None`` for the process
    default); backup recovery and fault injection always run the general
    event loop below.
    """
    if not use_backups and fault_plan is None:
        # The pure FORWARD fan-out (with at most lost subtrees) is the
        # compute seam's job; backends are bitwise-equivalent here.
        result = resolve_backend(compute).fanout_session(
            sender_table, tables, topology, processing_delay, failed_hosts
        )
        ctx = _verify_hooks.ACTIVE
        if ctx is not None:
            ctx.observe_session(
                result,
                sender_table,
                tables,
                topology,
                processing_delay,
                lossless=not failed_hosts,
            )
        tctx = _trace_hooks.ACTIVE
        if tctx is not None:
            tctx.observe_session(result, topology)
        return result
    sender = sender_table.owner
    result = SessionResult(sender=sender.user_id, sender_host=sender.host)
    counter = itertools.count()  # tie-breaker for the heap
    queue: List[Tuple[float, int, UserRecord, int, Id]] = []
    failed = failed_hosts if failed_hosts is not None else set()
    # Dense one-way delay rows when the topology has them (same values as
    # one_way_delay, just without a Python call per hop).
    ow_rows = topology.one_way_rows()
    one_way_delay = topology.one_way_delay
    edges_append = result.edges.append
    heappush = heapq.heappush
    next_seq = counter.__next__

    def pick_next_hop(table: NeighborTable, i: int, j: int) -> Optional[UserRecord]:
        """The (i,j)-primary, or — with backups enabled — the closest
        live neighbor of the same entry."""
        entry = table.entry(i, j)
        if not entry:
            return None
        if not use_backups:
            return entry[0]
        return next((r for r in entry if r.host not in failed), None)

    def forward(member: UserRecord, table: NeighborTable, level: int, now: float) -> None:
        """The FORWARD routine of Fig. 2 for one member."""
        num_digits = table.scheme.num_digits
        if level >= num_digits:
            return
        if table.is_server_table:
            rows = (0,)
        else:
            rows = range(level, num_digits)
        member_id = member.user_id
        member_host = member.host
        delays = ow_rows[member_host] if ow_rows is not None else None
        for i in rows:
            for j, primary in table.row_primaries(i):
                nbr = primary
                if use_backups and primary.host in failed:
                    nbr = pick_next_hop(table, i, j)
                    if nbr is None:
                        continue
                if fault_plan is None:
                    extra_delays = (0.0,)
                else:
                    extra_delays = fault_plan.apply(
                        member_host, nbr.host, None, now
                    )
                base_arrival = (
                    now
                    + processing_delay
                    + (
                        delays[nbr.host]
                        if delays is not None
                        else one_way_delay(member_host, nbr.host)
                    )
                )
                edges_append(
                    OverlayEdge(
                        member_id,
                        nbr.user_id,
                        member_host,
                        nbr.host,
                        i,
                        now,
                        base_arrival,
                    )
                )
                for extra in extra_delays:
                    heappush(
                        queue,
                        (
                            base_arrival + extra,
                            next_seq(),
                            nbr,
                            i + 1,
                            member_id,
                        ),
                    )

    forward(sender, sender_table, 0, 0.0)
    receipts = result.receipts
    duplicates = result.duplicate_copies
    sender_id = sender.user_id
    tables_get = tables.get
    heappop = heapq.heappop
    while queue:
        arrival, _, record, level, upstream = heappop(queue)
        member_id = record.user_id
        if record.host in failed:
            continue  # the copy is lost at a crashed member
        if member_id in receipts or member_id == sender_id:
            duplicates[member_id] = duplicates.get(member_id, 0) + 1
            continue  # Theorem 1 says this never fires with consistent tables
        receipts[member_id] = Receipt(
            member_id,
            record.host,
            arrival,
            level,
            upstream,
        )
        table = tables_get(member_id)
        if table is not None:
            forward(record, table, level, arrival)
    ctx = _verify_hooks.ACTIVE
    if ctx is not None:
        ctx.observe_session(
            result,
            sender_table,
            tables,
            topology,
            processing_delay,
            lossless=not failed and not use_backups and fault_plan is None,
        )
    tctx = _trace_hooks.ACTIVE
    if tctx is not None:
        tctx.observe_session(result, topology)
    return result


class SessionPlan:
    """A reusable fan-out schedule over a fixed ``(sender_table, tables)``.

    The figure experiments replay thousands of fault-free sessions in
    which only the topology delays (or the rekey message) change between
    batches; the forwarding schedule — which rows each member forwards and
    who the primaries are — depends only on the tables.  The plan memoizes
    each member's flattened per-level schedule on first use, so repeated
    :meth:`run` calls skip every ``row_primaries`` table scan.

    The plan is valid while the tables are unchanged; build a fresh plan
    after joins/leaves mutate them.  :meth:`run` produces a
    :class:`SessionResult` identical (receipts, edges, duplicates, and
    their ordering) to :func:`run_multicast` on the same inputs with no
    failures and no fault injection.
    """

    def __init__(self, sender_table: NeighborTable, tables: Dict[Id, NeighborTable]):
        self.sender_table = sender_table
        self.tables = tables
        self.sender = sender_table.owner
        num_digits = sender_table.scheme.num_digits
        self._num_digits = num_digits
        # Flattened (row, user_id, host, record) schedule of the sender.
        self._sender_schedule = self._flatten(sender_table, 0)
        # member user ID -> per-level memo of flattened schedules.
        self._schedules: Dict[Id, List[Optional[Tuple]]] = {}

    @staticmethod
    def _flatten(table: NeighborTable, level: int) -> Tuple:
        num_digits = table.scheme.num_digits
        if level >= num_digits:
            return ()
        rows = (0,) if table.is_server_table else range(level, num_digits)
        out = []
        for i in rows:
            for _, primary in table.row_primaries(i):
                out.append((i, primary.user_id, primary.host))
        return tuple(out)

    def _schedule_for(self, member_id: Id, level: int) -> Tuple:
        memo = self._schedules.get(member_id)
        if memo is None:
            memo = [None] * (self._num_digits + 1)
            self._schedules[member_id] = memo
        sched = memo[level]
        if sched is None:
            table = self.tables.get(member_id)
            sched = () if table is None else self._flatten(table, level)
            memo[level] = sched
        return sched

    def run(
        self,
        topology: Topology,
        processing_delay: float = 0.0,
        compute=None,
    ) -> SessionResult:
        """Replay one fault-free session against ``topology``'s delays.

        ``compute`` selects the :mod:`repro.compute` backend (name,
        instance, or ``None`` for the process default); every backend
        replays bitwise identically.
        """
        result = resolve_backend(compute).replay_plan(
            self, topology, processing_delay
        )
        ctx = _verify_hooks.ACTIVE
        if ctx is not None:
            ctx.observe_session(
                result,
                self.sender_table,
                self.tables,
                topology,
                processing_delay,
            )
        tctx = _trace_hooks.ACTIVE
        if tctx is not None:
            tctx.observe_session(result, topology, planned=True)
        return result


def plan_session(
    sender_table: NeighborTable, tables: Dict[Id, NeighborTable]
) -> SessionPlan:
    """Build a :class:`SessionPlan` for repeated fault-free replays."""
    return SessionPlan(sender_table, tables)


def rekey_session(
    server_table: NeighborTable,
    tables: Dict[Id, NeighborTable],
    topology: Topology,
    processing_delay: float = 0.0,
    plan: Optional[SessionPlan] = None,
    compute=None,
) -> SessionResult:
    """A rekey-transport session: the key server is the sender.

    Pass a :class:`SessionPlan` built over the same ``(server_table,
    tables)`` to reuse its memoized fan-out schedule across repeated
    sessions (identical results, much faster)."""
    if not server_table.is_server_table:
        raise ValueError("rekey transport must be sourced at the key server")
    if plan is not None:
        if plan.sender_table is not server_table:
            raise ValueError("plan was built for a different server table")
        return plan.run(topology, processing_delay, compute=compute)
    return run_multicast(
        server_table, tables, topology, processing_delay, compute=compute
    )


def data_session(
    sender_id: Id,
    tables: Dict[Id, NeighborTable],
    topology: Topology,
    processing_delay: float = 0.0,
    compute=None,
) -> SessionResult:
    """A data-transport session: a particular user is the sender."""
    if sender_id == NULL_ID or sender_id not in tables:
        raise ValueError(f"sender {sender_id} is not a user in the group")
    return run_multicast(
        tables[sender_id], tables, topology, processing_delay, compute=compute
    )
