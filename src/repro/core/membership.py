"""Group membership: joins, leaves, and failure recovery (Section 3).

:class:`Group` is the live state the simulator maintains: the key server,
every user's record and neighbor table, the server's one-row table, and
the ID tree.  Joins run the full Section-3.1 ID assignment (collect /
measure / percentile-decide / server-complete) against the *current*
group via neighbor-table queries; tables are then maintained
K-consistently, the state the Silk join/leave protocols provably converge
to (the paper itself runs "the Silk protocols, but simplified to improve
simulation efficiency").

Failure recovery: a user detects a failed neighbor by missed pings, tells
the key server, and replaces the neighbor from the same table entry
(Section 3.2).  :meth:`Group.fail` models silent failure; table repair
happens lazily per-owner via :meth:`Group.repair_tables`, letting tests
measure how K > 1 masks failures between repairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..net.topology import Topology
from .id_assignment import AssignmentOutcome, IdAssigner, complete_user_id
from .id_tree import IdTree
from .ids import Id, IdScheme, NULL_ID
from .neighbor_table import NeighborTable, UserRecord, build_server_table

#: The paper's table redundancy parameter (Section 4).
PAPER_K = 4


@dataclass
class JoinResult:
    """Outcome of one join: the new record plus protocol bookkeeping."""

    record: UserRecord
    outcome: Optional[AssignmentOutcome]  # None for the first join


class Group:
    """Key server + users: membership, ID assignment, neighbor tables."""

    def __init__(
        self,
        scheme: IdScheme,
        topology: Topology,
        server_host: int,
        assigner: IdAssigner,
        k: int = PAPER_K,
        rng: Optional[np.random.Generator] = None,
    ):
        self.scheme = scheme
        self.topology = topology
        self.server_host = server_host
        self.assigner = assigner
        self.k = k
        # lint: disable=determinism-unseeded-rng -- interactive-use fallback; every driver/test threads a seeded Generator
        self.rng = rng if rng is not None else np.random.default_rng()
        self.id_tree = IdTree(scheme)
        self.records: Dict[Id, UserRecord] = {}
        self.tables: Dict[Id, NeighborTable] = {}
        self.server_table = build_server_table(
            scheme, server_host, (), self._rtt, k
        )
        self._clock = 0.0
        self._host_of_user: Dict[Id, int] = {}

    # ------------------------------------------------------------------
    def _rtt(self, a: int, b: int) -> float:
        return self.topology.rtt(a, b)

    @property
    def num_users(self) -> int:
        return len(self.records)

    @property
    def user_ids(self) -> List[Id]:
        return list(self.records)

    def record_of(self, user_id: Id) -> UserRecord:
        return self.records[user_id]

    # ------------------------------------------------------------------
    # The query service of Section 3.1.1
    # ------------------------------------------------------------------
    def query(self, responder: UserRecord, target_prefix: Id) -> List[UserRecord]:
        """A user's response to an ID-assignment query: all the neighbors
        in its table whose IDs have the target prefix."""
        table = self.tables.get(responder.user_id)
        if table is None:
            return []
        tp = target_prefix.digits
        n = len(tp)
        if n == 0:
            return list(table.all_records())
        return [
            record
            for record in table.all_records()
            if record.user_id.digits[:n] == tp
        ]

    # ------------------------------------------------------------------
    # Join
    # ------------------------------------------------------------------
    def join(self, host: int) -> JoinResult:
        """Admit the user at topology host ``host``: run ID assignment,
        insert the user into the ID tree, build its neighbor table, and
        update everyone else's tables."""
        self._clock += 1.0
        access = self.topology.access_rtt(host)
        if not self.records:
            # First join: D digits of "0" (Section 3.1).
            user_id = self.scheme.first_user_id()
            record = UserRecord(user_id, host, access, self._clock)
            self._admit(record)
            return JoinResult(record, None)

        bootstrap = self._random_record()
        outcome = self.assigner.determine_prefix(
            host, access, self.topology, self.query, bootstrap
        )
        user_id = complete_user_id(self.id_tree, outcome.determined_prefix, self.rng)
        record = UserRecord(user_id, host, access, self._clock)
        self._admit(record)
        return JoinResult(record, outcome)

    def _random_record(self) -> UserRecord:
        ids = list(self.records)
        return self.records[ids[int(self.rng.integers(0, len(ids)))]]

    def _admit(self, record: UserRecord) -> None:
        user_id = record.user_id
        self.id_tree.add_user(user_id)
        self.records[user_id] = record
        self._host_of_user[user_id] = record.host
        # Build the new user's table from the current population (the
        # consistent state the Silk join converges to).  Both RTT sweeps
        # are batched against the topology's dense matrix when available;
        # operand orientation matches the scalar calls they replace.
        table = NeighborTable(self.scheme, record, self.k)
        others = [o for o in self.records.values() if o.user_id != user_id]
        if others:
            out_rtts = self.topology.rtt_many(
                record.host, [o.host for o in others]
            )
            table.fill(zip(others, map(float, out_rtts)))
        self.tables[user_id] = table
        # Everyone else (and the server) learns about the new user.
        other_tables = [
            t for oid, t in self.tables.items() if oid != user_id
        ]
        if other_tables:
            in_rtts = self.topology.rtt_to_many(
                record.host, [t.owner.host for t in other_tables]
            )
            for other_table, r in zip(other_tables, in_rtts):
                other_table.insert(record, float(r))
        self.server_table.insert(record, self._rtt(self.server_host, record.host))

    # ------------------------------------------------------------------
    # Leave and failure
    # ------------------------------------------------------------------
    def leave(self, user_id: Id) -> None:
        """Graceful leave: the user has its record deleted from all tables
        (Silk leave protocol), with entries re-filled to stay
        K-consistent."""
        self._remove(user_id, repair=True)

    def fail(self, user_id: Id) -> None:
        """Silent failure: the user vanishes but stale records remain in
        other tables until :meth:`repair_tables` runs (neighbors detect the
        failure by missed pings)."""
        if user_id not in self.records:
            raise KeyError(f"user {user_id} not in group")
        del self.records[user_id]
        self.id_tree.remove_user(user_id)
        self.tables.pop(user_id)

    def _remove(self, user_id: Id, repair: bool) -> None:
        if user_id not in self.records:
            raise KeyError(f"user {user_id} not in group")
        departed = self.records.pop(user_id)
        self.id_tree.remove_user(user_id)
        self.tables.pop(user_id)
        for table in self.tables.values():
            if table.remove(user_id) and repair:
                self._refill(table, departed)
        if self.server_table.remove(user_id) and repair:
            self._refill(self.server_table, departed)

    def _refill(self, table: NeighborTable, departed: UserRecord) -> None:
        """Re-fill the entry a departed user occupied with the closest
        remaining users of that ID subtree."""
        slot = table.slot_for(departed)
        if slot is None:
            return
        i, j = slot
        if table.is_server_table:
            subtree_root = Id((j,))
        else:
            subtree_root = table.owner.user_id.prefix(i).extend(j)
        present = {r.user_id for r in table.entry(i, j)}
        for candidate_id in self.id_tree.users_in_subtree(subtree_root):
            if candidate_id not in present and candidate_id != table.owner.user_id:
                record = self.records[candidate_id]
                table.insert(record, self._rtt(table.owner.host, record.host))

    def repair_tables(self) -> int:
        """Failure recovery sweep: drop records of vanished users from all
        tables and re-fill the holes.  Returns the number of stale records
        removed."""
        removed = 0
        alive = set(self.records)
        for table in list(self.tables.values()) + [self.server_table]:
            for record in list(table.all_records()):
                if record.user_id not in alive:
                    table.remove(record.user_id)
                    self._refill(table, record)
                    removed += 1
        return removed

    # ------------------------------------------------------------------
    def random_id_join(self, host: int) -> JoinResult:
        """Ablation: admit a user with a *random* ID instead of running
        the topology-aware protocol (the Pastry/Tapestry-style assignment
        discussed in Sections 2.6 and 5)."""
        self._clock += 1.0
        while True:
            user_id = self.scheme.random_user_id(self.rng)
            if user_id not in self.records:
                break
        record = UserRecord(
            user_id, host, self.topology.access_rtt(host), self._clock
        )
        self._admit(record)
        return JoinResult(record, None)
