"""The paper's core contribution: IDs and the ID tree, neighbor tables,
the T-mesh multicast scheme, topology-aware ID assignment, rekey message
splitting, and group membership."""

from .ids import Id, IdScheme, NULL_ID, PAPER_SCHEME
from .id_tree import IdTree
from .neighbor_table import (
    NeighborTable,
    StaticPrimaryTable,
    UserRecord,
    build_consistent_tables,
    build_server_table,
    check_k_consistency,
)
from .id_assignment import (
    AssignmentOutcome,
    IdAssigner,
    PAPER_COLLECT_TARGET,
    PAPER_PERCENTILE,
    PAPER_THRESHOLDS,
    complete_user_id,
)
from .hypercube import Route, rendezvous_member, route_toward
from .membership import Group, JoinResult, PAPER_K
from .tmesh import (
    OverlayEdge,
    Receipt,
    SessionResult,
    data_session,
    rekey_session,
    run_multicast,
)
from .splitting import (
    SplitSessionResult,
    next_hop_needs,
    run_split_rekey,
    run_unsplit_rekey,
    split_for_next_hop,
)

__all__ = [
    "Id",
    "IdScheme",
    "NULL_ID",
    "PAPER_SCHEME",
    "IdTree",
    "NeighborTable",
    "StaticPrimaryTable",
    "UserRecord",
    "build_consistent_tables",
    "build_server_table",
    "check_k_consistency",
    "AssignmentOutcome",
    "IdAssigner",
    "PAPER_COLLECT_TARGET",
    "PAPER_PERCENTILE",
    "PAPER_THRESHOLDS",
    "complete_user_id",
    "Group",
    "JoinResult",
    "PAPER_K",
    "Route",
    "rendezvous_member",
    "route_toward",
    "OverlayEdge",
    "Receipt",
    "SessionResult",
    "data_session",
    "rekey_session",
    "run_multicast",
    "SplitSessionResult",
    "next_hop_needs",
    "run_split_rekey",
    "run_unsplit_rekey",
    "split_for_next_hop",
]
