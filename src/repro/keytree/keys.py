"""Keys, encryptions, and rekey messages.

The identification scheme of Section 2.4: the ID of a key is the ID of its
corresponding ID-tree node, and the ID of an *encryption* ``{k'}_k`` is the
ID of the encrypting key ``k``.  Lemma 3: a user needs the key carried in
an encryption iff the encryption's ID is a prefix of the user's ID.

Encryptions can carry real wrapped-key bytes (application mode) or a
``None`` payload (simulation mode, where only counts and IDs matter).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Tuple

from ..core.ids import Id


@dataclass(frozen=True)
class Encryption:
    """One ``{new_key}_{encrypting_key}`` item of a rekey message.

    ``encrypting_key_id`` doubles as the encryption's ID.  Versions pin the
    exact secrets involved, so a receiver knows which held key decrypts the
    payload and which version the recovered key becomes.
    """

    encrypting_key_id: Id
    encrypting_version: int
    new_key_id: Id
    new_version: int
    payload: Optional[bytes] = field(default=None, compare=False, repr=False)

    @property
    def id(self) -> Id:
        """The encryption's ID — the ID of the encrypting key
        (Section 2.4)."""
        return self.encrypting_key_id

    def needed_by(self, user_id: Id) -> bool:
        """Lemma 3: the user needs this encryption iff the encryption's ID
        is a prefix of the user's ID."""
        return self.encrypting_key_id.is_prefix_of(user_id)


@dataclass(frozen=True)
class RekeyMessage:
    """The batch rekey message generated at the end of a rekey interval."""

    interval: int
    encryptions: Tuple[Encryption, ...]

    @property
    def rekey_cost(self) -> int:
        """The paper's *rekey cost*: number of encryptions contained in the
        message (Section 4.2)."""
        return len(self.encryptions)

    def needed_by(self, user_id: Id) -> Tuple[Encryption, ...]:
        """The subset of encryptions a given user needs (Lemma 3)."""
        return tuple(e for e in self.encryptions if e.needed_by(user_id))

    def restricted_to(self, encryptions: Iterable[Encryption]) -> "RekeyMessage":
        """A copy carrying only the given encryptions (used by the
        splitting scheme)."""
        return RekeyMessage(self.interval, tuple(encryptions))
