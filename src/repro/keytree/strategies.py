"""Rekey message composition strategies (Wong–Gouda–Lam).

The original key-graph work defines three ways to package a batch's new
keys; the paper's system is *group-oriented* (one message, every
encryption once) and makes it bandwidth-efficient with splitting.  For
context and ablations this module computes what the same batch would
cost under each strategy:

* **group-oriented** — one rekey message carrying each encryption once;
  every user gets (with splitting: part of) the same message.
* **key-oriented**  — one message per updated key, each carrying that
  key's encryptions; total encryptions equal group-oriented, but the
  server sends as many messages as there are updated keys.
* **user-oriented** — one message per user containing every new key on
  that user's path, each encrypted under a key that user holds; users
  get exactly what they need with no splitting machinery, at the price
  of re-encrypting shared keys once per user.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from ..core.ids import Id
from .keys import RekeyMessage
from .original_tree import OriginalBatchResult, OriginalKeyTree


@dataclass(frozen=True)
class StrategyCost:
    """Server-side cost of one strategy for one batch."""

    messages: int
    encryptions: int


def modified_tree_strategy_costs(
    message: RekeyMessage, user_ids: Iterable[Id]
) -> Dict[str, StrategyCost]:
    """The three strategies' costs for a modified-key-tree batch.

    ``user_ids`` must be the group membership *after* the batch (the
    users that need the new keys)."""
    encryptions = len(message.encryptions)
    updated_keys = {e.new_key_id for e in message.encryptions}
    user_list = list(user_ids)
    user_oriented_encryptions = sum(
        sum(1 for key in updated_keys if key.is_prefix_of(uid))
        for uid in user_list
    )
    receivers = sum(
        1
        for uid in user_list
        if any(key.is_prefix_of(uid) for key in updated_keys)
    )
    return {
        "group-oriented": StrategyCost(1 if encryptions else 0, encryptions),
        "key-oriented": StrategyCost(len(updated_keys), encryptions),
        "user-oriented": StrategyCost(receivers, user_oriented_encryptions),
    }


def original_tree_strategy_costs(
    tree: OriginalKeyTree, result: OriginalBatchResult
) -> Dict[str, StrategyCost]:
    """Same comparison for a WGL-tree batch (node identities instead of
    ID-tree prefixes)."""
    encryptions = len(result.encryptions)
    updated = {e.new_key_node for e in result.encryptions}
    user_oriented_encryptions = 0
    receivers = 0
    for user in tree.users:
        on_path = sum(1 for node in tree.path_nodes(user) if node in updated)
        user_oriented_encryptions += on_path
        receivers += 1 if on_path else 0
    return {
        "group-oriented": StrategyCost(1 if encryptions else 0, encryptions),
        "key-oriented": StrategyCost(len(updated), encryptions),
        "user-oriented": StrategyCost(receivers, user_oriented_encryptions),
    }
