"""The modified key tree (Section 2.4) with periodic batch rekeying.

Unlike the original Wong–Gouda–Lam tree, the modified key tree has a fixed
height ``D`` and grows *horizontally*: its structure matches the ID tree
exactly.  Every u-node sits at a full user ID, every k-node at an ID
prefix; the root k-node (the null ID) holds the group key.

Batch rekeying (Section 2.4):

* For each joining user ``u`` a u-node with ID ``u.ID`` is added, plus any
  missing k-nodes ``u.ID[0:i-1]`` for ``i = D-1 .. 0``.
* For each leaving user the u-node is deleted, plus any k-nodes left
  without descendants.
* At the start of the next rekey interval the server updates all keys on
  the paths from each newly joined or departed u-node to the root, then
  generates encryptions: the new key in each updated k-node encrypted
  under the key of each of its children (using a child's *new* key when the
  child was itself updated).

The tree can run in pure *counting* mode (no secrets — what the paper's
simulator measures) or *crypto* mode where every key is a real 32-byte
secret and every encryption carries an authenticated wrapped key.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..compute import resolve_backend
from ..core.id_tree import IdTree
from ..core.ids import Id, IdScheme, NULL_ID
from ..crypto import cipher
from ..crypto.keystore import KeyStore
from ..trace import hooks as _trace_hooks
from .keys import Encryption, RekeyMessage


class ModifiedKeyTree:
    """The key server's modified key tree."""

    def __init__(
        self,
        scheme: IdScheme,
        crypto: bool = False,
        rng: Optional[np.random.Generator] = None,
        compute=None,
    ):
        self.scheme = scheme
        self.crypto = crypto
        # lint: disable=determinism-unseeded-rng -- interactive-use fallback; every driver/test threads a seeded Generator
        self._rng = rng if rng is not None else np.random.default_rng()
        # The repro.compute backend used for batch node marking; ``None``
        # re-resolves the process default on every batch so a tree built
        # before ``set_default_backend`` still honors it.
        self._compute = compute
        self._id_tree = IdTree(scheme)
        self._versions: Dict[Id, int] = {}
        self._secrets: Dict[Id, bytes] = {}
        self._pending_joins: List[Id] = []
        self._pending_leaves: List[Id] = []
        self.interval = 0

    # ------------------------------------------------------------------
    # Group membership requests (queued during a rekey interval)
    # ------------------------------------------------------------------
    def request_join(self, user_id: Id) -> None:
        """Queue a join for the current rekey interval.  The u-node (and
        its individual key) exists immediately — the server hands the
        joining user its keys at join time (Section 3.1.4) — but auxiliary
        keys only change at the end of the interval."""
        self.scheme.validate_user_id(user_id)
        if user_id in self._id_tree.user_ids:
            if user_id in self._pending_leaves:
                # Rejoin within the interval: the structural leave never
                # happened, so cancel it — but keep the u-node queued as
                # changed, which still rotates its whole key path at the
                # batch (conservatively preserving forward and backward
                # secrecy for the time it spent outside the group).
                self._pending_leaves.remove(user_id)
                if user_id not in self._pending_joins:
                    self._pending_joins.append(user_id)
                return
            raise ValueError(f"user {user_id} already in key tree")
        if user_id in self._pending_joins:
            raise ValueError(f"user {user_id} already has a pending join")
        self._pending_joins.append(user_id)
        self._id_tree.add_user(user_id)
        self._install_node(user_id)
        # K-nodes created by this join get keys now, so the joining user
        # can be handed its full key path immediately.
        for level in range(self.scheme.num_digits - 1, -1, -1):
            prefix = user_id.prefix(level)
            if prefix not in self._versions:
                self._install_node(prefix)

    def request_leave(self, user_id: Id) -> None:
        """Queue a leave for the current rekey interval."""
        if user_id not in self._id_tree.user_ids:
            raise ValueError(f"user {user_id} not in key tree")
        if user_id in self._pending_leaves:
            raise ValueError(f"user {user_id} already has a pending leave")
        self._pending_leaves.append(user_id)

    def _install_node(self, node_id: Id) -> None:
        self._versions[node_id] = 0
        if self.crypto:
            self._secrets[node_id] = cipher.generate_key(self._rng)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def user_ids(self) -> Set[Id]:
        return self._id_tree.user_ids

    @property
    def num_users(self) -> int:
        return len(self._id_tree)

    def node_version(self, node_id: Id) -> int:
        return self._versions[node_id]

    def node_secret(self, node_id: Id) -> bytes:
        if not self.crypto:
            raise RuntimeError("key tree running in counting mode")
        return self._secrets[node_id]

    def has_node(self, node_id: Id) -> bool:
        return node_id in self._versions

    def node_ids(self) -> List[Id]:
        """All key IDs currently held (one per ID-tree node): the tree-
        agreement checker compares this set against the ID tree the
        current users induce."""
        return list(self._versions)

    def group_key_version(self) -> int:
        return self._versions[NULL_ID]

    def path_key_ids(self, user_id: Id) -> List[Id]:
        """IDs of all the keys a user holds: the keys on the path from its
        u-node to the root, u-node (individual key) included."""
        return [user_id.prefix(level) for level in range(self.scheme.num_digits, -1, -1)]

    def user_keystore(self, user_id: Id) -> KeyStore:
        """A key store preloaded with the keys the server hands a user at
        join time (crypto mode only)."""
        store = KeyStore()
        for key_id in self.path_key_ids(user_id):
            store.put(key_id, self._versions[key_id], self.node_secret(key_id))
        return store

    # ------------------------------------------------------------------
    # Batch rekeying
    # ------------------------------------------------------------------
    def process_batch(self) -> RekeyMessage:
        """End the current rekey interval: apply queued joins/leaves,
        update keys, and generate the rekey message."""
        joins = self._pending_joins
        leaves = self._pending_leaves
        self._pending_joins = []
        self._pending_leaves = []

        changed_unodes: List[Id] = list(joins)
        for user_id in leaves:
            changed_unodes.append(user_id)
            self._id_tree.remove_user(user_id)
        # Drop state of nodes that no longer exist (departed u-nodes and
        # pruned k-nodes).
        for node_id in [n for n in self._versions if n not in self._id_tree]:
            del self._versions[node_id]
            self._secrets.pop(node_id, None)

        updated = self._mark_updated(changed_unodes)
        for node_id in updated:
            self._versions[node_id] += 1
            if self.crypto:
                self._secrets[node_id] = cipher.generate_key(self._rng)

        encryptions = self._generate_encryptions(updated)
        self.interval += 1
        tctx = _trace_hooks.ACTIVE
        if tctx is not None:
            tctx.observe_batch_rekey(
                self.interval - 1, joins, leaves, updated, encryptions
            )
        return RekeyMessage(self.interval - 1, tuple(encryptions))

    def _mark_updated(self, changed_unodes: Sequence[Id]) -> List[Id]:
        """K-nodes whose keys must change: every surviving k-node on the
        path from a changed u-node to the root, ordered by (depth, digits)
        so crypto-mode secret generation is reproducible for a given rng.
        Runs on the tree's :mod:`repro.compute` backend; every backend
        returns the identical list."""
        return resolve_backend(self._compute).mark_updated(
            changed_unodes,
            self._id_tree.__contains__,
            self.scheme.num_digits,
        )

    def _children(self, node_id: Id) -> List[Id]:
        if len(node_id) == self.scheme.num_digits - 1:
            return sorted(
                (uid for uid in self._id_tree.users_in_subtree(node_id)),
                key=lambda n: n.digits,
            )
        return self._id_tree.children(node_id)

    def _generate_encryptions(self, updated: Sequence[Id]) -> List[Encryption]:
        encryptions: List[Encryption] = []
        for node_id in updated:
            new_version = self._versions[node_id]
            for child in self._children(node_id):
                payload = None
                if self.crypto:
                    payload = cipher.encrypt(
                        self._secrets[child], self._secrets[node_id], rng=self._rng
                    )
                encryptions.append(
                    Encryption(
                        encrypting_key_id=child,
                        encrypting_version=self._versions[child],
                        new_key_id=node_id,
                        new_version=new_version,
                        payload=payload,
                    )
                )
        return encryptions


def apply_rekey_message(store: KeyStore, message: RekeyMessage) -> List[Encryption]:
    """Decrypt-and-install every new key a member can recover from a rekey
    message (crypto mode).

    Encryptions are processed deepest-first so that a key recovered from
    one encryption (e.g. an auxiliary key) can decrypt the next one up the
    path.  Returns the encryptions actually used.  Members without the
    right keys simply recover nothing — the test suite uses this to verify
    forward secrecy for departed users.
    """
    used: List[Encryption] = []
    for enc in sorted(message.encryptions, key=lambda e: -len(e.encrypting_key_id)):
        if enc.payload is None:
            raise ValueError("rekey message carries no payloads (counting mode)")
        if not store.has(enc.encrypting_key_id, enc.encrypting_version):
            continue
        if store.has(enc.new_key_id, enc.new_version):
            continue
        secret = store.unwrap(
            enc.encrypting_key_id, enc.encrypting_version, enc.payload
        )
        store.put(enc.new_key_id, enc.new_version, secret)
        used.append(enc)
    return used
