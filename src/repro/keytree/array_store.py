"""Array-backed sharded membership storage for the scale ladder.

:class:`ArrayClusterStore` is the large-N twin of
:class:`~repro.keytree.cluster.ClusterRekeyingTree`'s membership state:
members live in flat numpy columns (bit-packed uint64 ID code, join
clock, alive flag) instead of per-member Python objects, and a shard is
the set of alive rows sharing a ``shard_depth``-digit prefix code.
Leadership follows Appendix B exactly — the alive member with the
earliest join clock leads its shard — so the two implementations stay
in lockstep under arbitrary join/leave churn, which
``tests/test_scale_ladder.py`` drives with a hypothesis stateful
machine asserting :meth:`state_digest` equality after every step.

Rows are append-only (a leave clears the alive flag); capacity doubles
on demand.  The only per-member Python state is one ``int -> int``
entry in the row index, which is what keeps a million members in tens
of MB.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Dict, Optional

import numpy as np

from ..compute.packing import MASKS, pack_id, scheme_packable
from ..core.ids import Id, IdScheme


class ArrayClusterStore:
    """Sharded membership + leader election over flat arrays."""

    def __init__(
        self,
        scheme: IdScheme,
        shard_depth: Optional[int] = None,
        initial_capacity: int = 1024,
    ):
        if shard_depth is None:
            shard_depth = scheme.num_digits - 1
        if not 1 <= shard_depth <= scheme.num_digits - 1:
            raise ValueError(
                f"shard_depth must be in [1, {scheme.num_digits - 1}], "
                f"got {shard_depth}"
            )
        if not scheme_packable(scheme):
            raise ValueError(
                f"scheme {scheme} does not bit-pack; the array store "
                "requires packable IDs"
            )
        self.scheme = scheme
        self.shard_depth = shard_depth
        self._mask = int(MASKS[shard_depth])
        capacity = max(1, initial_capacity)
        self._codes = np.zeros(capacity, dtype=np.uint64)
        self._clocks = np.zeros(capacity, dtype=np.int64)
        self._alive = np.zeros(capacity, dtype=bool)
        self._size = 0  # rows ever appended (dead rows stay in place)
        self._clock = 0  # the server's logical join clock
        self._row_of: Dict[int, int] = {}  # alive code -> row
        self._shard_count: Dict[int, int] = {}  # shard code -> alive members
        self._shard_leader: Dict[int, int] = {}  # shard code -> leader row

    # ------------------------------------------------------------------
    @property
    def num_users(self) -> int:
        return len(self._row_of)

    @property
    def num_clusters(self) -> int:
        return len(self._shard_count)

    def _code_of(self, user_id: Id) -> int:
        packed = pack_id(user_id)
        if packed is None:
            raise ValueError(f"user {user_id} does not bit-pack")
        return packed[0]

    def _grow(self) -> None:
        capacity = 2 * len(self._codes)
        for name in ("_codes", "_clocks", "_alive"):
            old = getattr(self, name)
            new = np.zeros(capacity, dtype=old.dtype)
            new[: self._size] = old[: self._size]
            setattr(self, name, new)

    # ------------------------------------------------------------------
    # Membership (mirrors ClusterRekeyingTree.request_join/request_leave)
    # ------------------------------------------------------------------
    def request_join(self, user_id: Id) -> bool:
        """Register a join; returns True iff the user became a shard
        leader (i.e. the join incurs group rekeying)."""
        self.scheme.validate_user_id(user_id)
        code = self._code_of(user_id)
        self._clock += 1
        if code in self._row_of:
            raise ValueError(f"user {user_id} already in cluster")
        if self._size == len(self._codes):
            self._grow()
        row = self._size
        self._size = row + 1
        self._codes[row] = code
        self._clocks[row] = self._clock
        self._alive[row] = True
        self._row_of[code] = row
        shard = code & self._mask
        count = self._shard_count.get(shard, 0)
        self._shard_count[shard] = count + 1
        if count == 0:
            self._shard_leader[shard] = row
            return True
        return False

    def request_leave(self, user_id: Id) -> bool:
        """Register a leave; returns True iff a leader left (group
        rekeying required).  Leadership hands off to the alive member
        with the earliest join clock, exactly as in Appendix B."""
        code = self._code_of(user_id)
        row = self._row_of.pop(code, None)
        if row is None:
            raise ValueError(f"user {user_id} not in any cluster")
        self._alive[row] = False
        shard = code & self._mask
        count = self._shard_count[shard] - 1
        was_leader = self._shard_leader[shard] == row
        if count == 0:
            del self._shard_count[shard]
            del self._shard_leader[shard]
            return was_leader
        self._shard_count[shard] = count
        if was_leader:
            self._shard_leader[shard] = self._elect(shard)
        return was_leader

    def _elect(self, shard: int) -> int:
        """Row of the alive member with the earliest clock in a shard."""
        size = self._size
        sel = self._alive[:size] & (
            (self._codes[:size] & np.uint64(self._mask)) == np.uint64(shard)
        )
        rows = np.flatnonzero(sel)
        return int(rows[np.argmin(self._clocks[rows])])

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_leader(self, user_id: Id) -> bool:
        code = self._code_of(user_id)
        row = self._row_of.get(code)
        if row is None:
            return False
        return self._shard_leader[code & self._mask] == row

    def leaders(self) -> Dict[int, int]:
        """shard code -> leader's packed member code."""
        return {
            shard: int(self._codes[row])
            for shard, row in self._shard_leader.items()
        }

    def member_codes(self) -> np.ndarray:
        """Packed codes of all alive members, in join-clock order."""
        size = self._size
        rows = np.flatnonzero(self._alive[:size])
        return self._codes[rows]  # rows are appended in clock order

    # ------------------------------------------------------------------
    def state_digest(self) -> str:
        """Canonical blake2b over the sharded membership state —
        byte-identical to
        :meth:`~repro.keytree.cluster.ClusterRekeyingTree.state_digest`
        over the same join/leave history at the same ``shard_depth``."""
        size = self._size
        rows = np.flatnonzero(self._alive[:size])
        codes = self._codes[rows]
        clocks = self._clocks[rows]
        shards = codes & np.uint64(self._mask)
        order = np.lexsort((clocks, shards))
        codes = codes[order]
        shards = shards[order]
        hasher = hashlib.blake2b(digest_size=16)
        if len(codes) == 0:
            return hasher.hexdigest()
        starts = np.concatenate(
            ([0], np.flatnonzero(shards[1:] != shards[:-1]) + 1)
        )
        bounds = np.append(starts, len(codes))
        little = codes.astype("<u8")
        for k in range(len(starts)):
            lo, hi = int(bounds[k]), int(bounds[k + 1])
            hasher.update(struct.pack("<QQ", int(shards[lo]), hi - lo))
            hasher.update(little[lo:hi].tobytes())
        return hasher.hexdigest()
