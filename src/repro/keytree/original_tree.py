"""The original key-tree approach used as the paper's baseline.

This is the Wong–Gouda–Lam key tree (SIGCOMM '98) with tree degree 4 — the
degree proved optimal for rekey cost per join/leave — combined with the
batch rekeying algorithm of Zhang et al. (IEEE/ACM ToN 2003, reference
[32]): the key server collects the ``J`` join and ``L`` leave requests of a
rekey interval and processes them together, letting joining u-nodes take
the positions of departed u-nodes.

Unlike the modified key tree, this tree has a *fixed degree* and grows
vertically; node identities are opaque integers rather than ID-tree IDs,
which is exactly why rekey message splitting on top of it requires each
forwarder to track per-user key state (Section 2.6).

Batch algorithm implemented here:

* ``J <= L``: joins replace ``J`` of the departed u-node positions; the
  remaining ``L - J`` departed u-nodes are pruned (a k-node left with a
  single child is collapsed into that child, as in WGL leave processing).
* ``J > L``: all departed positions are replaced; each extra join is
  attached at a shallowest k-node that still has fewer than ``degree``
  children, otherwise a shallowest u-node is split into a new k-node
  holding the old and the new u-node.
* Every surviving ancestor of a changed position gets a new key; the new
  key of each updated node is encrypted under the key of each of its
  children (the child's new key if the child was also updated), one
  encryption per child.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

import numpy as np


@dataclass
class _Node:
    node_id: int
    parent: Optional[int]
    children: List[int] = field(default_factory=list)
    user: Optional[Hashable] = None  # set iff this is a u-node
    version: int = 0

    @property
    def is_unode(self) -> bool:
        return self.user is not None


@dataclass(frozen=True)
class TreeEncryption:
    """One encryption of the original tree's rekey message: the new key of
    ``new_key_node`` wrapped under the key of ``encrypting_node``."""

    encrypting_node: int
    new_key_node: int


@dataclass(frozen=True)
class OriginalBatchResult:
    """Outcome of one batch rekey interval on the original tree."""

    encryptions: Tuple[TreeEncryption, ...]

    @property
    def rekey_cost(self) -> int:
        return len(self.encryptions)


class OriginalKeyTree:
    """Wong–Gouda–Lam key tree of fixed degree with ToN'03 batch rekeying."""

    def __init__(self, degree: int = 4):
        if degree < 2:
            raise ValueError("tree degree must be at least 2")
        self.degree = degree
        self._nodes: Dict[int, _Node] = {}
        self._root: Optional[int] = None
        self._next_id = 0
        self._user_leaf: Dict[Hashable, int] = {}
        self._pending_joins: List[Hashable] = []
        self._pending_leaves: List[Hashable] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _new_node(self, parent: Optional[int], user: Optional[Hashable] = None) -> int:
        node_id = self._next_id
        self._next_id += 1
        self._nodes[node_id] = _Node(node_id, parent, user=user)
        return node_id

    def initialize_balanced(self, users: Sequence[Hashable]) -> None:
        """Build a full, balanced tree over the given users — the paper's
        starting state for Fig. 12 (1024 users, degree 4, exactly full)."""
        if self._nodes:
            raise RuntimeError("tree already initialized")
        if not users:
            raise ValueError("need at least one user")
        leaves = [self._new_node(None, user=u) for u in users]
        for leaf, user in zip(leaves, users):
            self._user_leaf[user] = leaf
        level = leaves
        while len(level) > 1:
            parents: List[int] = []
            for start in range(0, len(level), self.degree):
                group = level[start : start + self.degree]
                if len(group) == 1:
                    # A singleton group needs no k-node above it: promote
                    # the child so no k-node ever has fewer than 2 children.
                    parents.append(group[0])
                    continue
                parent = self._new_node(None)
                for child in group:
                    self._nodes[child].parent = parent
                    self._nodes[parent].children.append(child)
                parents.append(parent)
            level = parents
        self._root = level[0]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_users(self) -> int:
        return len(self._user_leaf)

    @property
    def users(self) -> Set[Hashable]:
        return set(self._user_leaf)

    def path_nodes(self, user: Hashable) -> List[int]:
        """Node IDs on the path from a user's u-node to the root — the
        nodes whose keys the user holds."""
        node = self._user_leaf[user]
        path = [node]
        while self._nodes[node].parent is not None:
            node = self._nodes[node].parent
            path.append(node)
        return path

    def depth_of(self, node_id: int) -> int:
        depth = 0
        node = node_id
        while self._nodes[node].parent is not None:
            node = self._nodes[node].parent
            depth += 1
        return depth

    def height(self) -> int:
        """Maximum u-node depth."""
        return max((self.depth_of(leaf) for leaf in self._user_leaf.values()), default=0)

    def check_invariants(self) -> List[str]:
        """Structural sanity checks used by the test suite."""
        problems: List[str] = []
        for node in self._nodes.values():
            if node.is_unode and node.children:
                problems.append(f"u-node {node.node_id} has children")
            if len(node.children) > self.degree:
                problems.append(f"node {node.node_id} exceeds degree")
            for child in node.children:
                if self._nodes[child].parent != node.node_id:
                    problems.append(f"broken parent link at {child}")
            if (
                not node.is_unode
                and len(node.children) < 2
                and node.node_id != self._root
            ):
                problems.append(f"k-node {node.node_id} has <2 children")
        return problems

    # ------------------------------------------------------------------
    # Membership requests
    # ------------------------------------------------------------------
    def request_join(self, user: Hashable) -> None:
        if user in self._user_leaf or user in self._pending_joins:
            raise ValueError(f"user {user!r} already present or pending")
        self._pending_joins.append(user)

    def request_leave(self, user: Hashable) -> None:
        if user not in self._user_leaf:
            raise ValueError(f"user {user!r} not in tree")
        if user in self._pending_leaves:
            raise ValueError(f"user {user!r} already leaving")
        self._pending_leaves.append(user)

    # ------------------------------------------------------------------
    # Batch rekeying
    # ------------------------------------------------------------------
    def process_batch(self, rng: Optional[np.random.Generator] = None) -> OriginalBatchResult:
        # lint: disable=determinism-unseeded-rng -- interactive-use fallback; every driver/test threads a seeded Generator
        rng = rng if rng is not None else np.random.default_rng()
        joins = self._pending_joins
        leaves = self._pending_leaves
        self._pending_joins = []
        self._pending_leaves = []

        changed: Set[int] = set()  # nodes whose ancestors must rekey

        departed_slots = [self._user_leaf.pop(user) for user in leaves]
        order = list(range(len(departed_slots)))
        rng.shuffle(order)
        departed_slots = [departed_slots[i] for i in order]

        # Joins replace departed positions first (the point of ToN'03).
        replacements = min(len(joins), len(departed_slots))
        for user, slot in zip(joins[:replacements], departed_slots[:replacements]):
            node = self._nodes[slot]
            node.user = user
            node.version += 1
            self._user_leaf[user] = slot
            changed.add(slot)

        # Prune departed positions that found no replacement.
        for slot in departed_slots[replacements:]:
            changed.update(self._prune_unode(slot))

        # Attach extra joins.
        for user in joins[replacements:]:
            changed.add(self._attach_join(user))

        updated = self._mark_ancestors(changed)
        encryptions: List[TreeEncryption] = []
        for node_id in updated:
            node = self._nodes[node_id]
            node.version += 1
            for child in node.children:
                encryptions.append(TreeEncryption(child, node_id))
        return OriginalBatchResult(tuple(encryptions))

    # ------------------------------------------------------------------
    def _prune_unode(self, slot: int) -> Set[int]:
        """Remove a departed u-node; collapse single-child k-nodes.
        Returns surviving nodes that count as changed positions."""
        node = self._nodes.pop(slot)
        parent_id = node.parent
        if parent_id is None:  # last user left; empty tree
            self._root = None
            return set()
        parent = self._nodes[parent_id]
        parent.children.remove(slot)
        if len(parent.children) >= 2:
            return {parent_id}
        if len(parent.children) == 1:
            # WGL leave processing: promote the only remaining child.
            child_id = parent.children[0]
            child = self._nodes[child_id]
            grand_id = parent.parent
            child.parent = grand_id
            if grand_id is None:
                self._root = child_id
                del self._nodes[parent_id]
                return {child_id}
            grand = self._nodes[grand_id]
            grand.children[grand.children.index(parent_id)] = child_id
            del self._nodes[parent_id]
            return {child_id}
        # parent somehow empty (cannot happen for k-nodes with >=2 children)
        return self._prune_knode(parent_id)

    def _prune_knode(self, node_id: int) -> Set[int]:
        node = self._nodes.pop(node_id)
        if node.parent is None:
            self._root = None
            return set()
        parent = self._nodes[node.parent]
        parent.children.remove(node_id)
        if parent.children:
            return {node.parent}
        return self._prune_knode(node.parent)

    def _attach_join(self, user: Hashable) -> int:
        """Attach one extra join; returns the new u-node ID."""
        if self._root is None:
            leaf = self._new_node(None, user=user)
            self._root = leaf
            self._user_leaf[user] = leaf
            return leaf
        root = self._nodes[self._root]
        if root.is_unode:
            # A 1-user tree: grow a k-node root above it.
            new_root = self._new_node(None)
            root.parent = new_root
            leaf = self._new_node(new_root, user=user)
            self._nodes[new_root].children = [root.node_id, leaf]
            self._root = new_root
            self._user_leaf[user] = leaf
            return leaf
        target = self._shallowest_open_knode()
        if target is not None:
            leaf = self._new_node(target, user=user)
            self._nodes[target].children.append(leaf)
            self._user_leaf[user] = leaf
            return leaf
        # Tree full: split the shallowest u-node.
        slot = min(self._user_leaf.values(), key=self.depth_of)
        old = self._nodes[slot]
        new_k = self._new_node(old.parent)
        parent = self._nodes[old.parent]
        parent.children[parent.children.index(slot)] = new_k
        old.parent = new_k
        leaf = self._new_node(new_k, user=user)
        self._nodes[new_k].children = [slot, leaf]
        self._user_leaf[user] = leaf
        return leaf

    def _shallowest_open_knode(self) -> Optional[int]:
        """BFS for the shallowest k-node with spare child capacity."""
        if self._root is None or self._nodes[self._root].is_unode:
            return None
        frontier = [self._root]
        while frontier:
            next_frontier: List[int] = []
            for node_id in frontier:
                node = self._nodes[node_id]
                if not node.is_unode and len(node.children) < self.degree:
                    return node_id
                next_frontier.extend(
                    c for c in node.children if not self._nodes[c].is_unode
                )
            frontier = next_frontier
        return None

    def _mark_ancestors(self, changed: Set[int]) -> List[int]:
        """Surviving non-leaf ancestors (inclusive) of changed positions,
        ordered leaves-first for deterministic encryption generation."""
        marked: Set[int] = set()
        for node_id in changed:
            if node_id not in self._nodes:
                continue
            node: Optional[int] = node_id
            while node is not None and node not in marked:
                if not self._nodes[node].is_unode:
                    marked.add(node)
                node = self._nodes[node].parent
        return sorted(marked, key=lambda n: -self.depth_of(n))
