"""Rekey delivery reliability: proactive FEC and limited unicast recovery.

The paper's rekey transport lineage (its references [30]-[32], by the
same authors) makes batch rekey messages reliable with two mechanisms,
both implemented here so the reproduced system is usable on lossy paths:

* **Proactive FEC** (:class:`FecEncoder` / :class:`FecDecoder`): a user's
  rekey share is split into data packets; each block of ``k`` data
  packets gets one XOR parity packet, so any single loss per block is
  repaired locally with no round trip at ``1/k`` bandwidth overhead.
  (ToN'03 uses Reed–Solomon over larger blocks; XOR parity reproduces
  the mechanism and its single-loss repair property.)
* **Limited unicast recovery** (reference [31], "Group rekeying with
  limited unicast recovery"): a user that still misses keys after FEC —
  e.g. it detects a version gap when new group data arrives — asks the
  key server for its key path over unicast; the server answers with
  exactly the keys on the user's ID-tree path
  (:class:`KeyPathGrant`).

:class:`repro.core.group.SecureGroup` integrates both: ``end_interval``
accepts a per-packet loss model, and ``recover_member`` performs the
unicast repair.
"""

from __future__ import annotations

import pickle
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.ids import Id
from .keys import Encryption


def _serialize(payload: Tuple[Encryption, ...]) -> bytes:
    return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)


def _deserialize(raw: bytes) -> Tuple[Encryption, ...]:
    return pickle.loads(raw)


def _xor(buffers: Sequence[bytes], length: int) -> bytes:
    out = bytearray(length)
    for buf in buffers:
        for i, b in enumerate(buf):
            out[i] ^= b
    return bytes(out)


@dataclass(frozen=True)
class FecPacket:
    """One packet of a FEC-protected rekey share.

    Data packets carry ``raw = len || pickle(payload)``; the parity
    packet carries the XOR of its block's zero-padded data packets.
    ``block_data_count`` tells the decoder how many data packets the
    block originally had.
    """

    block: int
    index: int             # 0..k-1 for data, -1 for parity
    raw: bytes = field(repr=False)
    block_data_count: int = 1
    is_parity: bool = False

    @property
    def num_encryptions(self) -> int:
        """Encryptions carried (parity counts its full padded size in
        bandwidth terms elsewhere; here: 0 for parity)."""
        if self.is_parity:
            return 0
        return len(self.decode_payload())

    def decode_payload(self) -> Tuple[Encryption, ...]:
        if self.is_parity:
            raise ValueError("parity packets carry no direct payload")
        (length,) = struct.unpack(">I", self.raw[:4])
        return _deserialize(self.raw[4 : 4 + length])


def _frame(payload: Tuple[Encryption, ...]) -> bytes:
    body = _serialize(payload)
    return struct.pack(">I", len(body)) + body


class FecEncoder:
    """Split encryptions into data packets of ``packet_size`` encryptions
    and add one XOR parity packet per ``block_packets`` data packets."""

    def __init__(self, packet_size: int = 4, block_packets: int = 4):
        if packet_size < 1 or block_packets < 1:
            raise ValueError("packet_size and block_packets must be >= 1")
        self.packet_size = packet_size
        self.block_packets = block_packets

    def encode(self, encryptions: Sequence[Encryption]) -> List[FecPacket]:
        packets: List[FecPacket] = []
        frames: List[bytes] = [
            _frame(tuple(encryptions[i : i + self.packet_size]))
            for i in range(0, len(encryptions), self.packet_size)
        ]
        for block_start in range(0, len(frames), self.block_packets):
            block_index = block_start // self.block_packets
            block = frames[block_start : block_start + self.block_packets]
            width = max(len(f) for f in block)
            for idx, frame in enumerate(block):
                packets.append(
                    FecPacket(block_index, idx, frame, len(block))
                )
            packets.append(
                FecPacket(
                    block_index,
                    -1,
                    _xor(block, width),
                    len(block),
                    is_parity=True,
                )
            )
        return packets

    def overhead_ratio(self) -> float:
        """Asymptotic parity overhead: one parity per k data packets."""
        return 1.0 / self.block_packets


@dataclass(frozen=True)
class FecDecodeResult:
    encryptions: Tuple[Encryption, ...]
    repaired_blocks: int    # blocks fixed by parity
    lost_blocks: int        # blocks with >1 data loss (unrecoverable)

    @property
    def complete(self) -> bool:
        return self.lost_blocks == 0


class FecDecoder:
    """Recover encryptions from surviving packets, using parity to repair
    at most one lost data packet per block."""

    def decode(self, packets: Sequence[FecPacket]) -> FecDecodeResult:
        blocks: Dict[int, List[FecPacket]] = {}
        for packet in packets:
            blocks.setdefault(packet.block, []).append(packet)
        encryptions: List[Encryption] = []
        repaired = 0
        lost = 0
        for block_index in sorted(blocks):
            group = blocks[block_index]
            parity = next((p for p in group if p.is_parity), None)
            data = {p.index: p for p in group if not p.is_parity}
            expected = group[0].block_data_count
            missing = [i for i in range(expected) if i not in data]
            frames: Dict[int, bytes] = {
                i: p.raw for i, p in data.items()
            }
            if len(missing) == 1 and parity is not None:
                width = len(parity.raw)
                padded = [frames[i].ljust(width, b"\0") for i in sorted(frames)]
                frames[missing[0]] = _xor(padded + [parity.raw], width)
                repaired += 1
            elif missing:
                lost += 1
            for i in sorted(frames):
                raw = frames[i]
                (length,) = struct.unpack(">I", raw[:4])
                encryptions.extend(_deserialize(raw[4 : 4 + length]))
        return FecDecodeResult(tuple(encryptions), repaired, lost)


@dataclass(frozen=True)
class KeyPathGrant:
    """The server's unicast recovery response: every key on the member's
    ID-tree path at its current version (reference [31])."""

    user_id: Id
    keys: Tuple[Tuple[Id, int, bytes], ...]  # (key id, version, secret)
