"""Key trees and rekey messages: the modified key tree (Section 2.4), the
original Wong–Gouda–Lam baseline, and the Appendix-B cluster heuristic."""

from .keys import Encryption, RekeyMessage
from .modified_tree import ModifiedKeyTree, apply_rekey_message
from .original_tree import (
    OriginalBatchResult,
    OriginalKeyTree,
    TreeEncryption,
)
from .cluster import ClusterBatchResult, ClusterRekeyingTree, LeaderUnicast
from .array_store import ArrayClusterStore
from .recovery import (
    FecDecodeResult,
    FecDecoder,
    FecEncoder,
    FecPacket,
    KeyPathGrant,
)
from .strategies import (
    StrategyCost,
    modified_tree_strategy_costs,
    original_tree_strategy_costs,
)

__all__ = [
    "FecDecodeResult",
    "FecDecoder",
    "FecEncoder",
    "FecPacket",
    "KeyPathGrant",
    "StrategyCost",
    "modified_tree_strategy_costs",
    "original_tree_strategy_costs",
    "Encryption",
    "RekeyMessage",
    "ModifiedKeyTree",
    "apply_rekey_message",
    "OriginalKeyTree",
    "OriginalBatchResult",
    "TreeEncryption",
    "ClusterRekeyingTree",
    "ClusterBatchResult",
    "LeaderUnicast",
    "ArrayClusterStore",
]
