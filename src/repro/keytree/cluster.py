"""The cluster rekeying heuristic of Appendix B.

All users belonging to the same level-``(D-1)`` ID subtree form a *bottom
cluster*.  The user with the earliest joining time (by the key server's
clock) is the cluster leader.  Only a leader holds the keys on the path
from its u-node to the root of the modified key tree; every other user
holds just three keys — the group key, its individual key, and a pairwise
key shared with its leader.  Consequently **only leader churn triggers
group rekeying**; after a rekey, each leader unicasts the new group key to
its cluster members under the pairwise keys.

This module tracks clusters/leaders and drives an inner
:class:`~repro.keytree.modified_tree.ModifiedKeyTree` whose u-nodes are the
leaders.  The *rekey cost* reported for Fig. 12(c) is the number of
encryptions in the server's rekey message (the inner tree's batch); the
leader-to-member unicast encryptions are reported separately because they
travel at the very edge of the network and enter the Fig. 13 bandwidth
accounting for protocols P3/P4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.ids import Id, IdScheme
from .keys import RekeyMessage
from .modified_tree import ModifiedKeyTree


@dataclass(frozen=True)
class LeaderUnicast:
    """One leader's post-rekey distribution of the new group key to its
    cluster members (one pairwise-encrypted copy per member)."""

    leader: Id
    members: Tuple[Id, ...]

    @property
    def num_encryptions(self) -> int:
        return len(self.members)


@dataclass(frozen=True)
class ClusterBatchResult:
    """Outcome of one rekey interval under the cluster heuristic."""

    message: RekeyMessage
    unicasts: Tuple[LeaderUnicast, ...]

    @property
    def rekey_cost(self) -> int:
        """Server-side rekey cost: encryptions in the rekey message."""
        return self.message.rekey_cost


class ClusterRekeyingTree:
    """Modified key tree + Appendix-B cluster rekeying.

    ``shard_depth`` generalizes Appendix B's bottom clusters into the
    scale ladder's sharding unit (docs/PERFORMANCE.md, "Scale ladder"):
    a cluster is a level-``shard_depth`` ID subtree.  The paper's
    heuristic is ``shard_depth = D - 1`` (the default); the large-N
    architecture promotes shallower depths — e.g. depth 1 groups the
    top-level subtrees that the streaming rekey path processes one at a
    time with bounded working sets.
    """

    def __init__(
        self,
        scheme: IdScheme,
        crypto: bool = False,
        rng: Optional[np.random.Generator] = None,
        shard_depth: Optional[int] = None,
    ):
        if shard_depth is None:
            shard_depth = scheme.num_digits - 1
        if not 1 <= shard_depth <= scheme.num_digits - 1:
            raise ValueError(
                f"shard_depth must be in [1, {scheme.num_digits - 1}], "
                f"got {shard_depth}"
            )
        self.scheme = scheme
        self.shard_depth = shard_depth
        self._tree = ModifiedKeyTree(scheme, crypto=crypto, rng=rng)
        # Cluster prefix -> members in join order; the first is the leader.
        self._clusters: Dict[Id, List[Id]] = {}
        self._clock = 0  # the server's logical join clock

    # ------------------------------------------------------------------
    @property
    def key_tree(self) -> ModifiedKeyTree:
        """The inner modified key tree (its u-nodes are the leaders)."""
        return self._tree

    def cluster_of(self, user_id: Id) -> Id:
        return user_id.prefix(self.shard_depth)

    def leader_of(self, user_id: Id) -> Id:
        """Current leader of a user's bottom cluster."""
        return self._clusters[self.cluster_of(user_id)][0]

    def is_leader(self, user_id: Id) -> bool:
        cluster = self._clusters.get(self.cluster_of(user_id))
        return bool(cluster) and cluster[0] == user_id

    def cluster_members(self, cluster: Id) -> List[Id]:
        return list(self._clusters.get(cluster, ()))

    @property
    def num_users(self) -> int:
        return sum(len(m) for m in self._clusters.values())

    @property
    def num_clusters(self) -> int:
        return len(self._clusters)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def request_join(self, user_id: Id) -> bool:
        """Register a join; returns True iff the user became a cluster
        leader (i.e. the join incurs group rekeying)."""
        self.scheme.validate_user_id(user_id)
        self._clock += 1
        cluster = self.cluster_of(user_id)
        members = self._clusters.get(cluster)
        if members:
            if user_id in members:
                raise ValueError(f"user {user_id} already in cluster")
            members.append(user_id)
            return False
        self._clusters[cluster] = [user_id]
        self._tree.request_join(user_id)
        return True

    def request_leave(self, user_id: Id) -> bool:
        """Register a leave; returns True iff a leader left (group
        rekeying required)."""
        cluster = self.cluster_of(user_id)
        members = self._clusters.get(cluster)
        if not members or user_id not in members:
            raise ValueError(f"user {user_id} not in any cluster")
        was_leader = members[0] == user_id
        members.remove(user_id)
        if not members:
            del self._clusters[cluster]
        if was_leader:
            self._tree.request_leave(user_id)
            if members:
                # Leadership hand-off (Appendix B): the departing leader
                # passes its key-path and user records to the new leader,
                # whose u-node replaces it in the key tree.
                self._tree.request_join(members[0])
        return was_leader

    # ------------------------------------------------------------------
    def shards(self) -> Dict[Id, Tuple[Id, ...]]:
        """Cluster prefix -> members in join order (leader first) — the
        sharded membership view, in insertion order."""
        return {
            prefix: tuple(members)
            for prefix, members in self._clusters.items()
        }

    def state_digest(self) -> str:
        """Canonical blake2b over the sharded membership state: clusters
        in ascending packed-prefix order, each as ``(prefix code, member
        count, member codes in join order)`` little-endian.

        :meth:`repro.keytree.array_store.ArrayClusterStore.state_digest`
        computes the identical digest from its arrays — equal digests
        mean byte-equal shard membership, leadership included (the
        leader is the join-order head).  Raises ``ValueError`` for
        schemes whose IDs don't bit-pack.
        """
        import hashlib
        import struct

        from ..compute.packing import pack_id

        hasher = hashlib.blake2b(digest_size=16)
        keyed = []
        for prefix, members in self._clusters.items():
            packed = pack_id(prefix)
            if packed is None:
                raise ValueError(
                    f"cluster prefix {prefix} does not bit-pack"
                )
            keyed.append((packed[0], members))
        keyed.sort(key=lambda pair: pair[0])
        for prefix_code, members in keyed:
            hasher.update(struct.pack("<QQ", prefix_code, len(members)))
            for member in members:
                packed = pack_id(member)
                if packed is None:
                    raise ValueError(f"member {member} does not bit-pack")
                hasher.update(struct.pack("<Q", packed[0]))
        return hasher.hexdigest()

    # ------------------------------------------------------------------
    def process_batch(self) -> ClusterBatchResult:
        """End the rekey interval: batch-rekey the leaders' key tree and
        compute the leader unicast fan-out of the new group key."""
        message = self._tree.process_batch()
        unicasts: Tuple[LeaderUnicast, ...] = ()
        if message.rekey_cost > 0:
            unicasts = tuple(
                LeaderUnicast(members[0], tuple(members[1:]))
                for members in self._clusters.values()
                if len(members) > 1
            )
        return ClusterBatchResult(message, unicasts)
