"""Canonical perf workloads shared by the baseline driver and the bench lane.

``tools/perf_baseline.py`` times every workload here and records the
results in ``BENCH_PR2.json``; ``benchmarks/test_perf_regression.py``
re-times the cheap micro workloads and fails when a median regresses past
the committed numbers.  Keeping one registry guarantees both sides time
the *same* operation with the same inputs.

The workload definitions (seeds, sizes, repeat counts) are frozen: they
match the measurements of the pre-optimization baseline stored in
``BENCH_PR2.json``, so medians stay comparable across commits.
"""

from __future__ import annotations

import gc
import statistics
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np


def measure(fn: Callable[[], object], repeats: int, inner: int = 1) -> Dict[str, object]:
    """Median wall-clock time of ``fn`` over ``repeats`` runs.

    The collector is paused around each timed call (as pytest-benchmark
    does) so GC pauses triggered by garbage from *other* workloads'
    fixtures don't land inside the timing window."""
    times = []
    gc_was_enabled = gc.isenabled()
    gc.collect()
    try:
        for _ in range(repeats):
            if gc_was_enabled:
                gc.disable()
            t0 = time.perf_counter()
            for _ in range(inner):
                fn()
            elapsed = time.perf_counter() - t0
            if gc_was_enabled:
                gc.enable()
            times.append(elapsed / inner)
    finally:
        if gc_was_enabled:
            gc.enable()
    med = statistics.median(times)
    return {
        "median_ms": med * 1e3,
        # Best-of-N: a lower bound on the true cost, robust to ambient
        # load spikes — what the regression guard compares.
        "min_ms": min(times) * 1e3,
        "ops_per_s": (1.0 / med) if med else None,
        "repeats": repeats,
    }


def calibrate(repeats: int = 11) -> Dict[str, object]:
    """Median time of a fixed pure-Python spin, used to normalize
    committed medians for the current machine's speed.

    Timing on shared hosts drifts by tens of percent between runs; the
    regression guard scales its limits by the ratio of the current
    calibration to the one stored alongside the committed medians, so a
    globally slower machine does not read as a code regression."""

    def spin():
        acc = 0
        for i in range(200_000):
            acc += i * i
        return acc

    spin()
    return measure(spin, repeats)


@dataclass(frozen=True)
class Workload:
    """One named timed operation.

    ``setup(ctx)`` receives a shared mutable context dict (so expensive
    fixtures like a 1024-user group are built once per process) and
    returns the zero-argument callable to time.
    """

    name: str
    repeats: int
    setup: Callable[[dict], Callable[[], object]]
    group_size: Optional[int] = None
    micro: bool = True  # cheap enough for the regression lane
    # Too expensive to run implicitly (the 1M rung): baseline and bench
    # drivers skip it unless named explicitly / opted in via env.
    optin: bool = False


def _group(ctx: dict, num_users: int, seed: int = 20):
    key = ("group", num_users, seed)
    if key not in ctx:
        from ..experiments.common import build_group, build_topology

        topology = build_topology("gtitm", num_users, seed=seed)
        ctx[key] = (topology, build_group(topology, num_users, seed=seed))
    return ctx[key]


def _setup_rekey_1024(ctx: dict) -> Callable[[], object]:
    from ..core.tmesh import rekey_session

    topology, group = _group(ctx, 1024)
    return lambda: rekey_session(group.server_table, group.tables, topology)


def _setup_planned_rekey_1024(ctx: dict) -> Callable[[], object]:
    from ..core.tmesh import plan_session, rekey_session

    topology, group = _group(ctx, 1024)
    plan = plan_session(group.server_table, group.tables)
    return lambda: rekey_session(
        group.server_table, group.tables, topology, plan=plan
    )


def _setup_tmesh_128(ctx: dict) -> Callable[[], object]:
    from ..core.tmesh import rekey_session

    topology, group = _group(ctx, 128)
    return lambda: rekey_session(group.server_table, group.tables, topology)


def _setup_split_predicate(ctx: dict) -> Callable[[], object]:
    from ..core.ids import Id
    from ..core.splitting import next_hop_needs

    hop = Id([17, 3, 200, 9, 1])
    encryption_ids = [Id([17, 3]), Id([18]), Id([17, 3, 200, 9, 1]), Id([])]

    def pred():
        hits = 0
        for _ in range(250):
            for e in encryption_ids:
                hits += next_hop_needs(e, hop, 2)
        return hits

    return pred


def _rekey_message_128(ctx: dict):
    if "message128" not in ctx:
        from ..keytree.modified_tree import ModifiedKeyTree

        _, group = _group(ctx, 128)
        tree = ModifiedKeyTree(group.scheme)
        for uid in group.user_ids:
            tree.request_join(uid)
        tree.process_batch()
        rng = np.random.default_rng(20)
        for i in rng.choice(128, size=32, replace=False):
            tree.request_leave(list(group.user_ids)[int(i)])
        ctx["message128"] = tree.process_batch()
    return ctx["message128"]


def _setup_split_session(ctx: dict) -> Callable[[], object]:
    from ..core.splitting import run_split_rekey
    from ..core.tmesh import rekey_session

    topology, group = _group(ctx, 128)
    message = _rekey_message_128(ctx)
    session = rekey_session(group.server_table, group.tables, topology)
    return lambda: run_split_rekey(session, message)


def _setup_user_stress_sweep(ctx: dict) -> Callable[[], object]:
    from ..core.tmesh import rekey_session

    topology, group = _group(ctx, 1024)
    session = rekey_session(group.server_table, group.tables, topology)

    def sweep():
        total = 0
        for member in session.receipts:
            total += session.user_stress(member)
        return total

    return sweep


def _setup_modified_tree_batch(ctx: dict) -> Callable[[], object]:
    from ..core.ids import Id, PAPER_SCHEME
    from ..keytree.modified_tree import ModifiedKeyTree

    ids = [Id([a, b, 0, 0, 0]) for a in range(16) for b in range(16)]

    def batch():
        tree = ModifiedKeyTree(PAPER_SCHEME)
        for uid in ids:
            tree.request_join(uid)
        tree.process_batch()
        for uid in ids[::4]:
            tree.request_leave(uid)
        return tree.process_batch().rekey_cost

    return batch


def _setup_original_tree_batch(ctx: dict) -> Callable[[], object]:
    from ..keytree.original_tree import OriginalKeyTree

    def batch():
        tree = OriginalKeyTree(degree=4)
        tree.initialize_balanced(list(range(256)))
        for u in range(64):
            tree.request_leave(u)
        for j in range(64):
            tree.request_join(f"n{j}")
        return tree.process_batch(np.random.default_rng(0)).rekey_cost

    return batch


def _setup_id_assignment_join(ctx: dict) -> Callable[[], object]:
    topology, group = _group(ctx, 128)

    def one_join():
        outcome = group.assigner.determine_prefix(
            100,
            topology.access_rtt(100),
            topology,
            group.query,
            group.records[next(iter(group.records))],
        )
        return len(outcome.determined_prefix)

    return one_join


def _scale_world(ctx: dict, num_users: int, seed: int = 20):
    key = ("scale", num_users, seed)
    if key not in ctx:
        from .scale import build_scale_world

        ctx[key] = build_scale_world(num_users, seed=seed)
    return ctx[key]


def _setup_rekey_10k(ctx: dict) -> Callable[[], object]:
    from ..core.tmesh import rekey_session

    topology, server_table, tables = _scale_world(ctx, 10_000)
    return lambda: rekey_session(
        server_table, tables, topology, compute="reference"
    )


def _setup_rekey_10k_numpy(ctx: dict) -> Callable[[], object]:
    from ..core.tmesh import rekey_session

    topology, server_table, tables = _scale_world(ctx, 10_000)
    # Prime the one-time structure compile so the rung times the
    # steady-state replay, mirroring how the figure experiments reuse a
    # group across thousands of sessions.
    session = rekey_session(server_table, tables, topology, compute="numpy")
    session.receipts
    return lambda: rekey_session(
        server_table, tables, topology, compute="numpy"
    )


def _array_world(ctx: dict, num_users: int, seed: int = 20):
    key = ("array_world", num_users, seed)
    if key not in ctx:
        from .scale import build_array_world

        ctx[key] = build_array_world(num_users, seed=seed)
    return ctx[key]


def _setup_stream_rekey_100k(ctx: dict) -> Callable[[], object]:
    from .scale import run_streaming_rekey

    world = _array_world(ctx, 100_000)
    return lambda: run_streaming_rekey(world)


def _setup_stream_rekey_1m(ctx: dict) -> Callable[[], object]:
    from .scale import run_streaming_rekey

    world = _array_world(ctx, 1_000_000)
    return lambda: run_streaming_rekey(world)


def _setup_fig7(ctx: dict) -> Callable[[], object]:
    from ..experiments.latency_experiments import run_latency_experiment

    return lambda: run_latency_experiment(
        "Fig 7", "gtitm", 256, mode="rekey", runs=2, seed=7
    )


def _setup_build_group_256(ctx: dict) -> Callable[[], object]:
    from ..experiments.common import build_group, build_topology

    return lambda: build_group(
        build_topology("gtitm", 256, seed=20), 256, seed=20
    )


WORKLOADS: Dict[str, Workload] = {
    w.name: w
    for w in (
        Workload("rekey_session_1024", 15, _setup_rekey_1024, group_size=1024),
        Workload(
            "planned_rekey_session_1024",
            15,
            _setup_planned_rekey_1024,
            group_size=1024,
        ),
        Workload("tmesh_session_128", 15, _setup_tmesh_128, group_size=128),
        Workload("split_predicate", 30, _setup_split_predicate),
        Workload("split_session", 15, _setup_split_session),
        Workload(
            "user_stress_sweep_1024",
            7,
            _setup_user_stress_sweep,
            group_size=1024,
        ),
        Workload("modified_tree_batch", 10, _setup_modified_tree_batch),
        Workload("original_tree_batch", 10, _setup_original_tree_batch),
        Workload("id_assignment_join", 10, _setup_id_assignment_join),
        Workload(
            "rekey_session_10k",
            5,
            _setup_rekey_10k,
            group_size=10_000,
            micro=False,
        ),
        Workload(
            "rekey_session_10k_numpy",
            15,
            _setup_rekey_10k_numpy,
            group_size=10_000,
            micro=False,
        ),
        Workload(
            "rekey_session_100k_stream",
            5,
            _setup_stream_rekey_100k,
            group_size=100_000,
            micro=False,
        ),
        Workload(
            "rekey_session_1m_stream",
            3,
            _setup_stream_rekey_1m,
            group_size=1_000_000,
            micro=False,
            optin=True,
        ),
        Workload(
            "fig7_experiment", 3, _setup_fig7, group_size=256, micro=False
        ),
        Workload(
            "build_group_256",
            3,
            _setup_build_group_256,
            group_size=256,
            micro=False,
        ),
    )
}
