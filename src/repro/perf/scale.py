"""Large-group scale rungs: synthetic worlds beyond the builders' reach.

The gtitm worlds the perf workloads use top out around a thousand
members: building real neighbor tables measures quadratically many RTTs,
and a dense RTT matrix for tens of thousands of hosts would not fit in
memory.  The protocol itself has no such limits — one fan-out session is
linear in members — so the 10k rung fakes *only the construction*:

* :class:`CoordinateTopology` places every host in a plane and defines
  ``rtt = 2 * euclidean distance``.  No dense matrix is ever built
  (``one_way_delay`` stays scalar, and doubling the distance makes the
  one-way delay exactly the distance, with no rounding).
* :func:`build_scale_world` assigns clustered random IDs and derives
  *perfectly 1-consistent* K=1 tables directly from the ID trie: entry
  ``(i, j)`` of any member with prefix ``p`` (the first ``i`` digits) is
  a fixed representative of the ``p + j`` subtree.  Members sharing a
  prefix therefore share row lists — :class:`StaticPrimaryTable` holds
  one list per ``(prefix, own digit)`` pair, so the whole 10k world is
  a few MB instead of 10k full tables.

The tables quack like :class:`~repro.core.neighbor_table.NeighborTable`
exactly as far as the FORWARD fan-out reads them (``scheme``, ``owner``,
``is_server_table``, ``row_primaries``) and never mutate, so both
compute backends run them unchanged — the workload registry times
``rekey_session_10k`` on each backend and the conformance suite asserts
they stay bitwise-equal.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.ids import Id, IdScheme, NULL_ID
from ..core.neighbor_table import UserRecord
from ..net.topology import Topology

#: Digit bounds per level: 8 top-level clusters, 32 second-level, then
#: uniform.  Clustered like the paper's ID assignment (nearby users share
#: prefixes), and keeps the trie bushy at the top where fan-out happens.
SCALE_DIGIT_BOUNDS = (8, 32, 256, 256, 256)


class CoordinateTopology(Topology):
    """Hosts in a plane; ``rtt(a, b) = 2 * distance(a, b)``.

    Symmetric with a zero diagonal by construction.  The one-way delay
    (``rtt / 2``) is then *exactly* the Euclidean distance — scaling by
    2 is lossless in IEEE binary floating point — so scalar replays and
    vectorized kernels see identical floats without a dense matrix.
    """

    def __init__(self, coords: Sequence[Tuple[float, float]], access: float = 1.0):
        self._coords = [(float(x), float(y)) for x, y in coords]
        self._access = float(access)

    @property
    def num_hosts(self) -> int:
        return len(self._coords)

    def rtt(self, a: int, b: int) -> float:
        if a == b:
            return 0.0
        xa, ya = self._coords[a]
        xb, yb = self._coords[b]
        return 2.0 * math.hypot(xa - xb, ya - yb)

    def access_rtt(self, host: int) -> float:
        return self._access


class StaticPrimaryTable:
    """An immutable K=1 neighbor table defined by shared row lists.

    ``rows[i]`` is the fully materialized ``row_primaries(i)`` result:
    ``[(j, record), ...]`` sorted by ``j``, with the owner's own digit
    already skipped.  Many members share the same underlying lists (all
    members with the same prefix and own digit at a level), which is what
    makes a 10k-member world constructible in linear time.
    """

    def __init__(self, scheme: IdScheme, owner: UserRecord,
                 rows: Sequence[List[Tuple[int, UserRecord]]]):
        self.scheme = scheme
        self.owner = owner
        self.k = 1
        self._rows = rows

    @property
    def is_server_table(self) -> bool:
        return self.owner.user_id.is_null

    @property
    def num_rows(self) -> int:
        return len(self._rows)

    def row_primaries(self, i: int) -> List[Tuple[int, UserRecord]]:
        return self._rows[i]


class _TrieNode:
    __slots__ = ("children", "rep")

    def __init__(self):
        self.children: Dict[int, "_TrieNode"] = {}
        self.rep: Optional[UserRecord] = None  # first-seen user in subtree


def _scale_ids(num_users: int, rng: np.random.Generator,
               bounds: Sequence[int]) -> List[Tuple[int, ...]]:
    """``num_users`` distinct clustered IDs, deterministic in ``rng``."""
    ids: List[Tuple[int, ...]] = []
    seen = set()
    while len(ids) < num_users:
        batch = rng.integers(
            0, np.asarray(bounds), size=(num_users - len(ids), len(bounds))
        )
        for row in batch.tolist():
            digits = tuple(row)
            if digits not in seen:
                seen.add(digits)
                ids.append(digits)
    return ids


def build_scale_world(
    num_users: int,
    seed: int = 20,
    scheme: Optional[IdScheme] = None,
    span: float = 100.0,
) -> Tuple[CoordinateTopology, StaticPrimaryTable, Dict[Id, StaticPrimaryTable]]:
    """A ``(topology, server_table, tables)`` triple for ``num_users``.

    Host 0 is the key server; user ``k`` (in ID-generation order) lives
    on host ``k + 1``.  The derived tables are 1-consistent by
    construction — entry ``(i, j)`` is the same representative for every
    member sharing the first ``i`` digits — so Theorem 1 applies and one
    rekey session delivers every member exactly once.
    """
    if scheme is None:
        scheme = IdScheme(len(SCALE_DIGIT_BOUNDS), max(SCALE_DIGIT_BOUNDS))
    bounds = SCALE_DIGIT_BOUNDS[: scheme.num_digits]
    rng = np.random.default_rng(seed)
    digit_tuples = _scale_ids(num_users, rng, bounds)
    coords = rng.uniform(0.0, span, size=(num_users + 1, 2))
    topology = CoordinateTopology([tuple(c) for c in coords.tolist()])

    records = [
        UserRecord(Id(digits), host=k + 1, access_rtt=1.0)
        for k, digits in enumerate(digit_tuples)
    ]

    # ID trie with a first-seen representative per subtree.
    root = _TrieNode()
    for rec in records:
        node = root
        if node.rep is None:
            node.rep = rec
        for d in rec.user_id.digits:
            node = node.children.setdefault(d, _TrieNode())
            if node.rep is None:
                node.rep = rec

    # Shared row lists.  full_rows[node] = [(j, rep of child j)] sorted;
    # a member's row i is that list minus its own digit's entry.
    def full_row(node: _TrieNode) -> List[Tuple[int, UserRecord]]:
        return [(j, node.children[j].rep) for j in sorted(node.children)]

    num_digits = scheme.num_digits
    server = UserRecord(NULL_ID, host=0, access_rtt=0.0)
    server_table = StaticPrimaryTable(scheme, server, [full_row(root)])

    tables: Dict[Id, StaticPrimaryTable] = {}
    row_cache: Dict[Tuple[int, ...], List[Tuple[int, UserRecord]]] = {}
    for rec in records:
        digits = rec.user_id.digits
        node = root
        rows: List[List[Tuple[int, UserRecord]]] = []
        for i in range(num_digits):
            own = digits[i]
            key = digits[:i] + (own,)
            row = row_cache.get(key)
            if row is None:
                row = [(j, r) for j, r in full_row(node) if j != own]
                row_cache[key] = row
            rows.append(row)
            node = node.children[own]
        tables[rec.user_id] = StaticPrimaryTable(scheme, rec, rows)
    return topology, server_table, tables
