"""Large-group scale rungs: synthetic worlds beyond the builders' reach.

The gtitm worlds the perf workloads use top out around a thousand
members: building real neighbor tables measures quadratically many RTTs,
and a dense RTT matrix for tens of thousands of hosts would not fit in
memory.  The protocol itself has no such limits — one fan-out session is
linear in members — so the scale rungs fake *only the construction*
(docs/PERFORMANCE.md, "Scale ladder"):

* :class:`CoordinateTopology` (a :class:`~repro.net.synthetic.
  SyntheticRttTopology`) places every host in a plane and synthesizes
  ``rtt = 2 * euclidean distance`` on demand — no dense matrix, and the
  one-way delay (``rtt / 2``) is exactly the distance.
* :func:`build_scale_world` assigns clustered random IDs and derives
  *perfectly 1-consistent* K=1 tables directly from the ID trie: entry
  ``(i, j)`` of any member with prefix ``p`` (the first ``i`` digits) is
  a fixed representative of the ``p + j`` subtree.  Members sharing a
  prefix share row lists (:class:`~repro.core.neighbor_table.
  StaticPrimaryTable`), so the whole 10k world is a few MB instead of
  10k full tables.  This is the *dense object path*: real
  ``SessionResult``s, both compute backends, full verification.
* :func:`build_array_world` / :func:`run_streaming_rekey` are the
  *streaming array path*: the same world as bit-packed uint64 codes and
  a coordinate array, rekeyed one top-level shard at a time with
  bounded working sets — no per-member Python objects, which is what
  takes the ladder to 10⁶ members in well under 2 GB.

The two paths are held bitwise-equal wherever both run: in the trie
tables the unique row-``i`` forwarder with prefix ``p`` is ``rep(p)``
itself, so member ``m``'s delivering copy arrives at depth
``d = min{d >= 1 : rep(m[:d]) == m}`` from upstream ``rep(m[:d-1])``
(the server for ``d == 1``) — a pure function of the sorted code array
that :func:`run_streaming_rekey` evaluates per shard with a per-depth
arrival DP, reproducing the dense fan-out's receipts field for field.
The canonical receipt digest (:mod:`repro.compute.arraytable`) makes
the comparison one string; ``tests/test_scale_ladder.py`` and the
``sharded-scale`` invariant scenario enforce it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..compute.arraytable import (
    new_receipt_digest,
    segment_starts,
    synthesize_clustered_codes,
    update_receipt_digest,
)
from ..core.id_assignment import synthesize_clustered_ids
from ..core.ids import Id, IdScheme, NULL_ID
from ..core.neighbor_table import StaticPrimaryTable, UserRecord
from ..net.synthetic import SyntheticRttTopology
from ..verify import hooks as _verify_hooks

#: Digit bounds per level: 8 top-level clusters, 32 second-level, then
#: uniform.  Clustered like the paper's ID assignment (nearby users share
#: prefixes), and keeps the trie bushy at the top where fan-out happens.
SCALE_DIGIT_BOUNDS = (8, 32, 256, 256, 256)


class CoordinateTopology(SyntheticRttTopology):
    """The scale worlds' topology: hosts in a plane, RTTs synthesized on
    demand as ``2 * distance`` (see :class:`SyntheticRttTopology` for
    the bitwise discipline and the dense-materialization guard)."""


class _TrieNode:
    __slots__ = ("children", "rep")

    def __init__(self):
        self.children: Dict[int, "_TrieNode"] = {}
        self.rep: Optional[UserRecord] = None  # first-seen user in subtree


def _scale_ids(num_users: int, rng: np.random.Generator,
               bounds: Sequence[int]) -> List[Tuple[int, ...]]:
    """``num_users`` distinct clustered IDs, deterministic in ``rng``."""
    return synthesize_clustered_ids(num_users, rng, bounds)


def build_scale_world(
    num_users: int,
    seed: int = 20,
    scheme: Optional[IdScheme] = None,
    span: float = 100.0,
) -> Tuple[CoordinateTopology, StaticPrimaryTable, Dict[Id, StaticPrimaryTable]]:
    """A ``(topology, server_table, tables)`` triple for ``num_users``.

    Host 0 is the key server; user ``k`` (in ID-generation order) lives
    on host ``k + 1``.  The derived tables are 1-consistent by
    construction — entry ``(i, j)`` is the same representative for every
    member sharing the first ``i`` digits — so Theorem 1 applies and one
    rekey session delivers every member exactly once.
    """
    if scheme is None:
        scheme = IdScheme(len(SCALE_DIGIT_BOUNDS), max(SCALE_DIGIT_BOUNDS))
    bounds = SCALE_DIGIT_BOUNDS[: scheme.num_digits]
    rng = np.random.default_rng(seed)
    digit_tuples = _scale_ids(num_users, rng, bounds)
    coords = rng.uniform(0.0, span, size=(num_users + 1, 2))
    topology = CoordinateTopology(coords)

    records = [
        UserRecord(Id(digits), host=k + 1, access_rtt=1.0)
        for k, digits in enumerate(digit_tuples)
    ]

    # ID trie with a first-seen representative per subtree.
    root = _TrieNode()
    for rec in records:
        node = root
        if node.rep is None:
            node.rep = rec
        for d in rec.user_id.digits:
            node = node.children.setdefault(d, _TrieNode())
            if node.rep is None:
                node.rep = rec

    # Shared row lists.  full_rows[node] = [(j, rep of child j)] sorted;
    # a member's row i is that list minus its own digit's entry.
    def full_row(node: _TrieNode) -> List[Tuple[int, UserRecord]]:
        return [(j, node.children[j].rep) for j in sorted(node.children)]

    num_digits = scheme.num_digits
    server = UserRecord(NULL_ID, host=0, access_rtt=0.0)
    server_table = StaticPrimaryTable(scheme, server, [full_row(root)])

    tables: Dict[Id, StaticPrimaryTable] = {}
    row_cache: Dict[Tuple[int, ...], List[Tuple[int, UserRecord]]] = {}
    for rec in records:
        digits = rec.user_id.digits
        node = root
        rows: List[List[Tuple[int, UserRecord]]] = []
        for i in range(num_digits):
            own = digits[i]
            key = digits[:i] + (own,)
            row = row_cache.get(key)
            if row is None:
                row = [(j, r) for j, r in full_row(node) if j != own]
                row_cache[key] = row
            rows.append(row)
            node = node.children[own]
        tables[rec.user_id] = StaticPrimaryTable(scheme, rec, rows)
    return topology, server_table, tables


# ----------------------------------------------------------------------
# Streaming array path
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ArrayScaleWorld:
    """The array twin of :func:`build_scale_world`'s object world.

    ``codes[k]`` is the bit-packed ID of user ``k`` (generation order,
    all distinct) who lives on host ``k + 1``; host 0 is the key server.
    Built with the *identical* RNG consumption, so at every size where
    both worlds can be built, packing the object world's IDs reproduces
    ``codes`` exactly and the coordinates match bitwise.
    """

    scheme: IdScheme
    topology: SyntheticRttTopology
    codes: np.ndarray  # uint64, generation order
    seed: int
    span: float

    @property
    def num_users(self) -> int:
        return len(self.codes)


def build_array_world(
    num_users: int,
    seed: int = 20,
    scheme: Optional[IdScheme] = None,
    span: float = 100.0,
) -> ArrayScaleWorld:
    """The scale world as arrays only: packed codes plus coordinates.

    Peak memory is O(N) with small constants (~24 bytes per member), so
    the 1M rung fits comfortably where :func:`build_scale_world`'s
    per-member records and tables would not.
    """
    if scheme is None:
        scheme = IdScheme(len(SCALE_DIGIT_BOUNDS), max(SCALE_DIGIT_BOUNDS))
    bounds = SCALE_DIGIT_BOUNDS[: scheme.num_digits]
    rng = np.random.default_rng(seed)
    codes = synthesize_clustered_codes(num_users, rng, bounds)
    coords = rng.uniform(0.0, span, size=(num_users + 1, 2))
    topology = CoordinateTopology(coords)
    return ArrayScaleWorld(
        scheme=scheme, topology=topology, codes=codes, seed=seed, span=span
    )


@dataclass(frozen=True)
class StreamingSessionSummary:
    """Aggregates of one streaming rekey session plus its canonical
    receipt digest — everything the dense path's ``SessionResult``
    would say about delivery, without the per-member objects."""

    num_members: int
    num_receipts: int
    num_edges: int
    num_duplicates: int
    num_shards: int
    max_shard_members: int
    max_arrival: float
    level_counts: Tuple[int, ...]  # index = forwarding level, 0 unused
    digest: str


def iter_streaming_shards(
    world: ArrayScaleWorld, processing_delay: float = 0.0
) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
    """Run the rekey fan-out one top-level shard at a time, yielding the
    canonical receipt rows ``(codes, hosts, levels, upstream_hosts,
    arrivals)`` per shard, sorted by code within the shard (and globally
    across shards, since a shard is a top-digit prefix class).

    Per shard, depth-``d`` prefix segments of the sorted codes are the
    ID trie's level-``d`` subtrees; the segment's first-seen member
    (minimum generation index) is its representative.  Member ``m``'s
    receipt depth is the first ``d`` where ``m`` is its own
    representative, its upstream the depth-``(d-1)`` representative
    (the key server, host 0, at depth 1), and arrivals follow the
    per-depth DP ``(upstream_arrival + processing_delay) + distance`` —
    the exact scalar fan-out expression, evaluated vectorized.

    The working set is O(shard size): nothing about other shards is in
    memory while one is processed.
    """
    codes = world.codes
    n = len(codes)
    if n == 0:
        return
    order = np.argsort(codes, kind="stable")
    sorted_codes = codes[order]
    coords = world.topology.coords
    server_xy = coords[0]
    num_digits = world.scheme.num_digits
    top_starts = segment_starts(sorted_codes, 1)
    bounds = np.append(top_starts, n)
    for s in range(len(top_starts)):
        lo, hi = int(bounds[s]), int(bounds[s + 1])
        scodes = sorted_codes[lo:hi]
        sgen = order[lo:hi]
        shosts = (sgen + 1).astype(np.int64)
        m = hi - lo
        lvl = np.zeros(m, dtype=np.int64)
        reps_of_mine: List[Optional[np.ndarray]] = [None] * (num_digits + 1)
        for d in range(1, num_digits + 1):
            starts_d = segment_starts(scodes, d)
            sizes = np.diff(np.append(starts_d, m))
            min_gen = np.minimum.reduceat(sgen, starts_d)
            is_rep = sgen == np.repeat(min_gen, sizes)
            rep_positions = np.flatnonzero(is_rep)
            reps_of_mine[d] = np.repeat(rep_positions, sizes)
            newly = is_rep & (lvl == 0)
            lvl[newly] = d
        ups = np.full(m, -1, dtype=np.int64)
        for d in range(2, num_digits + 1):
            sel = lvl == d
            prev = reps_of_mine[d - 1]
            assert prev is not None
            ups[sel] = prev[sel]

        arr = np.empty(m, dtype=np.float64)
        xy = coords[shosts]
        for d in range(1, num_digits + 1):
            sel = np.flatnonzero(lvl == d)
            if not len(sel):
                continue
            dst = xy[sel]
            if d == 1:
                dx = server_xy[0] - dst[:, 0]
                dy = server_xy[1] - dst[:, 1]
                base = 0.0 + processing_delay
            else:
                up = ups[sel]
                src = xy[up]
                dx = src[:, 0] - dst[:, 0]
                dy = src[:, 1] - dst[:, 1]
                base = arr[up] + processing_delay
            arr[sel] = base + np.sqrt(dx * dx + dy * dy)

        up_hosts = shosts[np.maximum(ups, 0)]
        up_hosts[ups < 0] = 0  # the key server
        yield scodes, shosts, lvl, up_hosts, arr


def run_streaming_rekey(
    world: ArrayScaleWorld, processing_delay: float = 0.0
) -> StreamingSessionSummary:
    """One rekey session over the streaming array path.

    Theorem 1 holds structurally in the trie world — every member has
    exactly one delivering edge — so receipts == edges == members and
    duplicates are zero by construction; the
    :class:`~repro.verify.checkers.StreamingDeliveryChecker` re-asserts
    the aggregates when a verification context is active.  The digest is
    comparable to ``SessionResult.canonical_receipt_digest()`` from the
    dense path over the same ``(num_users, seed)``.
    """
    num_digits = world.scheme.num_digits
    level_counts = np.zeros(num_digits + 1, dtype=np.int64)
    hasher = new_receipt_digest()
    num_receipts = 0
    num_shards = 0
    max_shard = 0
    max_arrival = 0.0
    for scodes, shosts, lvl, up_hosts, arr in iter_streaming_shards(
        world, processing_delay
    ):
        num_shards += 1
        num_receipts += len(scodes)
        max_shard = max(max_shard, len(scodes))
        level_counts += np.bincount(lvl, minlength=num_digits + 1)
        if len(arr):
            max_arrival = max(max_arrival, float(arr.max()))
        update_receipt_digest(hasher, scodes, shosts, lvl, up_hosts, arr)
    summary = StreamingSessionSummary(
        num_members=world.num_users,
        num_receipts=num_receipts,
        num_edges=num_receipts,  # one delivering edge per receipt
        num_duplicates=0,
        num_shards=num_shards,
        max_shard_members=max_shard,
        max_arrival=max_arrival,
        level_counts=tuple(int(c) for c in level_counts),
        digest=hasher.hexdigest(),
    )
    ctx = _verify_hooks.ACTIVE
    if ctx is not None:
        ctx.observe_streaming(summary, expected_members=world.num_users)
    return summary
