"""Peak-RSS measurement for the memory rungs of the scale ladder.

``ru_maxrss`` is a *process-lifetime* high-water mark: once any code in
a process has touched N bytes, every later reading reports at least N.
Measuring a workload's footprint therefore requires a fresh child
process per workload — :func:`measure_peak_rss` spawns
``python -m repro.perf.rss <workload>``, the child builds the workload's
fixture, runs it once, and prints its own high-water mark as JSON.

The committed bounds live in ``BENCH_PR9.json``;
``benchmarks/test_scale_rss.py`` re-measures the 10k/100k rungs and
fails when a peak regresses past the committed number (the opt-in 1M
rung additionally asserts the < 2 GB ceiling from docs/PERFORMANCE.md).
"""

from __future__ import annotations

import json
import os
import resource
import subprocess
import sys
from typing import Dict


def peak_rss_bytes() -> int:
    """This process's peak resident set size since exec, in bytes.

    On Linux this reads ``VmHWM`` from ``/proc/self/status`` rather than
    ``getrusage``: ``ru_maxrss`` survives ``exec`` and therefore still
    holds the *forking parent's* peak (all of its pages are briefly
    resident in the child between fork and exec), which made children
    spawned from a fat pytest process report the parent's footprint.
    ``VmHWM`` lives in the ``mm`` that ``exec`` replaces, so it counts
    only this program's own allocations.  ``ru_maxrss`` is the fallback
    (kilobytes on Linux, bytes on macOS)."""
    try:
        with open("/proc/self/status") as status:
            for line in status:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return int(peak)
    return int(peak) * 1024


def measure_peak_rss(workload_name: str, timeout: float = 600.0) -> Dict[str, object]:
    """Peak RSS of one workload, measured in a fresh child process.

    Returns the child's ``{"workload", "peak_rss_bytes"}`` record.
    Raises ``RuntimeError`` when the child fails."""
    import repro

    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_dir if not existing else os.pathsep.join([src_dir, existing])
    )
    proc = subprocess.run(
        [sys.executable, "-m", "repro.perf.rss", workload_name],
        capture_output=True,
        text=True,
        env=env,
        timeout=timeout,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"RSS child for {workload_name!r} failed "
            f"(exit {proc.returncode}):\n{proc.stderr}"
        )
    # The workload may print to stdout; the record is the last line.
    line = proc.stdout.strip().splitlines()[-1]
    record = json.loads(line)
    if record.get("workload") != workload_name:
        raise RuntimeError(
            f"RSS child answered for {record.get('workload')!r}, "
            f"expected {workload_name!r}"
        )
    return record


def _child_main(workload_name: str) -> int:
    from .workloads import WORKLOADS

    workload = WORKLOADS.get(workload_name)
    if workload is None:
        print(
            f"unknown workload {workload_name!r}; known: "
            f"{', '.join(sorted(WORKLOADS))}",
            file=sys.stderr,
        )
        return 1
    ctx: dict = {}
    fn = workload.setup(ctx)
    fn()
    print(
        json.dumps(
            {"workload": workload_name, "peak_rss_bytes": peak_rss_bytes()}
        )
    )
    return 0


if __name__ == "__main__":
    if len(sys.argv) != 2:
        print("usage: python -m repro.perf.rss <workload>", file=sys.stderr)
        sys.exit(2)
    sys.exit(_child_main(sys.argv[1]))
