"""Performance helpers shared by hot paths and the benchmark harness.

Everything in this package is a drop-in replacement for a slower
general-purpose routine, constrained to produce *bitwise identical*
results — the perf-equivalence tests in ``tests/test_perf_equivalence.py``
hold each helper to that contract.
"""

from .percentile import percentile_linear

__all__ = ["percentile_linear"]
