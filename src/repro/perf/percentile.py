"""A scalar re-implementation of ``np.percentile(..., method="linear")``.

The ID-assignment protocol evaluates an F-percentile per candidate subtree
for every digit of every join (Section 3.1.3).  The pools involved hold at
most ``P = 10`` RTT samples, where ``np.percentile``'s generality (axis
handling, out-of-band NaN checks, method dispatch) costs far more than the
arithmetic itself.  This helper performs the same computation directly.

It must stay *bitwise identical* to numpy for 1-D input and scalar ``q``:
the virtual index is ``(q / 100) * (n - 1)`` and the interpolation follows
numpy's ``_lerp`` exactly, including its ``gamma >= 0.5`` rewrite
``b - (b - a) * (1 - gamma)`` that improves rounding near the upper
neighbor.  ``tests/test_perf_equivalence.py`` checks equality against
``np.percentile`` over randomized inputs.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np


def percentile_linear(values: Union[Sequence[float], np.ndarray], q: float) -> float:
    """The ``q``-th percentile (linear interpolation) of 1-D ``values``.

    Bitwise-equal to ``float(np.percentile(values, q))`` for finite input
    and ``0 <= q <= 100``.
    """
    a = np.sort(np.asarray(values, dtype=np.float64))
    n = a.shape[0]
    virtual = (q / 100.0) * (n - 1)
    lo = int(virtual)
    gamma = virtual - lo
    lo_v = a[lo]
    if gamma == 0.0:
        return float(lo_v)
    hi_v = a[lo + 1]
    diff = hi_v - lo_v
    if gamma >= 0.5:
        return float(hi_v - diff * (1.0 - gamma))
    return float(lo_v + diff * gamma)
