"""Message-level implementation of the Section-3 protocols over the
discrete event simulator: joins with real query/ping round trips, batched
interval-end announcements, wire-level T-mesh forwarding with splitting,
and table repair."""

from . import messages
from .harness import DistributedGroup, IntervalLog
from .nodes import ProtocolStats, ServerNode, UserNode

__all__ = [
    "messages",
    "DistributedGroup",
    "IntervalLog",
    "ProtocolStats",
    "ServerNode",
    "UserNode",
]
