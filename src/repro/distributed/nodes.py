"""Message-level implementation of the Section-3 protocols.

The experiment drivers compute protocol outcomes directly for speed (as
the paper's own simulator does); this module runs the same protocols as
*actual messages* over the scheduling seam (:mod:`repro.net.scheduling`)
— any registered backend drives them: the discrete event simulator, the
virtual-clock event loop, or the live asyncio service:

* a joining :class:`UserNode` determines its ID digit by digit with real
  query/response round trips (Section 3.1.1) and RTT pings measured in
  simulated time (3.1.2), decides digits with the percentile rule
  (3.1.3), and has the :class:`ServerNode` complete its ID (3.1.4);
* at the end of each rekey interval the server multicasts a
  :class:`~repro.distributed.messages.MembershipUpdate` — joined records,
  departed IDs, and the batch's rekey encryptions — over T-mesh, with
  every forwarder executing FORWARD and REKEY-MESSAGE-SPLIT on the
  message level; departing users forward that final multicast (they
  cannot decrypt the new keys it carries) and then detach;
* users repair entries emptied by departures with refill queries to
  region mates, keeping tables 1-consistent across intervals.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..core.id_assignment import complete_user_id
from ..core.id_tree import IdTree
from ..core.ids import Id, IdScheme, NULL_ID
from ..core.neighbor_table import NeighborTable, UserRecord
from ..core.splitting import split_for_next_hop
from ..keytree.modified_tree import ModifiedKeyTree
from ..net.scheduling import Transport, TransportNode
from . import messages as m


def _canonical(value):
    """Recursively rebuild ``value`` with order-independent containers
    (dicts and sets sorted by key repr) so byte comparisons of pickled
    state ignore insertion history.  Used by
    :meth:`ServerNode.key_tree_state`."""
    if isinstance(value, dict):
        return (
            "dict",
            tuple(
                sorted((repr(k), _canonical(v)) for k, v in value.items())
            ),
        )
    if isinstance(value, (set, frozenset)):
        return ("set", tuple(sorted(repr(v) for v in value)))
    if isinstance(value, (list, tuple)):
        return ("seq", tuple(_canonical(v) for v in value))
    if isinstance(value, np.random.Generator):
        return ("rng", repr(value.bit_generator.state))
    if type(value).__dict__.get("__reduce__") is not None:
        # The class controls its own pickled form (e.g. Id rebuilds from
        # digits, dropping memo caches) — canonicalize that, not the
        # live attributes, so live and restored objects compare equal.
        return (type(value).__name__, _canonical(value.__reduce__()))
    if getattr(value, "__dict__", None):
        return (type(value).__name__, _canonical(vars(value)))
    return ("leaf", repr(value))


@dataclass
class ProtocolStats:
    """Per-node message accounting (the paper analyzes the joiner's
    query cost as O(P * D * N^(1/D)))."""

    queries_sent: int = 0
    pings_sent: int = 0
    multicast_copies: int = 0
    refills_sent: int = 0
    failures_detected: int = 0
    server_retries: int = 0
    recovery_requests: int = 0
    recovered_updates: int = 0


class ServerNode(TransportNode):
    """The key server: admits users, completes IDs, batches membership
    changes, and sources the interval-end T-mesh multicast."""

    #: Everything that must survive a service restart (see
    #: :meth:`snapshot_state`).  Order matters: it is the serialization
    #: order, so snapshots of identical state are byte-identical.
    _SNAPSHOT_FIELDS = (
        "k",
        "rng",
        "id_tree",
        "records",
        "key_tree",
        "_pending_joins",
        "_pending_leaves",
        "_pending_replacements",
        "_announced",
        "_all_departed",
        "_granted",
        "_assigned_by_host",
        "_history",
        "interval",
        "_clock",
    )

    def __init__(
        self,
        network: Transport,
        host: int,
        scheme: IdScheme,
        k: int = 4,
        seed: int = 0,
    ):
        super().__init__(network, host)
        #: Legacy spelling predating the scheduling seam; same object as
        #: ``self.transport``.
        self.network = network
        self.scheme = scheme
        self.k = k
        self.rng = np.random.default_rng(seed)
        self.id_tree = IdTree(scheme)
        self.records: Dict[Id, UserRecord] = {}
        # The tree gets its own seeded generator (derived from the server
        # seed) so key material — and therefore snapshot bytes — is a
        # deterministic function of the seed across backends and runs.
        self.key_tree = ModifiedKeyTree(
            scheme, rng=np.random.default_rng((seed, 0x6B65))
        )
        self._pending_joins: List[UserRecord] = []
        self._pending_leaves: List[Id] = []
        self._pending_replacements: Dict[Id, UserRecord] = {}
        # Users already announced by a past interval-end multicast: only
        # these can appear in tables, so only these may serve as
        # bootstraps or multicast next hops (keeps Theorem-1 delivery
        # exactly-once even with joins in flight).
        self._announced: Set[Id] = set()
        # Every ID that ever left: shipped with AssignedId so a joiner
        # whose collection phases spanned an interval boundary can purge
        # records of users that departed meanwhile (in a deployment the
        # registrar validates the joiner's record set the same way).
        self._all_departed: Set[Id] = set()
        # Idempotency for the lossy key-server path: a duplicated
        # JoinRequest / NotifyPrefix (a client retry whose original
        # arrived after all) is answered with the *same* reply instead of
        # registering the host twice.
        self._granted: Dict[int, m.JoinGrant] = {}
        self._assigned_by_host: Dict[int, m.AssignedId] = {}
        # Announcement history for reference-[31] unicast recovery: a
        # member that missed an interval multicast resyncs from here.
        self._history: List[m.MembershipUpdate] = []
        self.interval = 0
        self._clock = 0

    # ------------------------------------------------------------------
    def on_message(self, src: int, payload) -> None:
        if isinstance(payload, m.JoinRequest):
            self._handle_join_request(src)
        elif isinstance(payload, m.NotifyPrefix):
            self._handle_notify(src, payload)
        elif isinstance(payload, m.LeaveRequest):
            self._handle_leave(src, payload)
        elif isinstance(payload, m.FailureNotice):
            self._handle_failure_notice(payload)
        elif isinstance(payload, m.RecoverRequest):
            self._handle_recover(src, payload)
        elif isinstance(payload, m.PingMsg):
            self.send(src, m.PongMsg(None, payload.token))

    def _handle_join_request(self, src: int) -> None:
        if src in self._granted:  # client retry: repeat the same grant
            self.send(src, self._granted[src])
            return
        if not self.records:
            record = self._register(src, self.scheme.first_user_id())
            grant = m.JoinGrant(assigned=record, bootstrap=None)
        else:
            candidates = sorted(self._announced) or sorted(self.records)
            bootstrap = self.records[
                candidates[int(self.rng.integers(0, len(candidates)))]
            ]
            grant = m.JoinGrant(assigned=None, bootstrap=bootstrap)
        self._granted[src] = grant
        self.send(src, grant)

    def _handle_notify(self, src: int, msg: m.NotifyPrefix) -> None:
        if src in self._assigned_by_host:  # client retry: same ID again
            self.send(src, self._assigned_by_host[src])
            return
        user_id = complete_user_id(self.id_tree, msg.determined_prefix, self.rng)
        record = self._register(src, user_id)
        reply = m.AssignedId(record, tuple(self._all_departed))
        self._assigned_by_host[src] = reply
        self.send(src, reply)

    def _register(self, host: int, user_id: Id) -> UserRecord:
        self._clock += 1
        record = UserRecord(
            user_id,
            host,
            access_rtt=self.network.topology.access_rtt(host),
            join_time=float(self._clock),
        )
        self.id_tree.add_user(user_id)
        self.records[user_id] = record
        self.key_tree.request_join(user_id)
        self._pending_joins.append(record)
        return record

    def _handle_leave(self, src: int, msg: m.LeaveRequest) -> None:
        if msg.user_id not in self.records:
            # Unknown leaver: a failure notice already evicted it (a
            # false positive racing its voluntary leave) and it missed
            # its own departure announcement.  Resend that announcement
            # so the stuck leaver sees its id in ``leaves`` and
            # detaches — without this it waits forever, and ``leaving``
            # blocks its recovery requests.
            for update in self._history:
                if msg.user_id in update.leaves:
                    self.send(src, m.RecoverResponse((update,)))
                    break
            return
        if msg.user_id in self._pending_leaves:
            return  # client retry of a LeaveRequest already queued
        self._pending_leaves.append(msg.user_id)
        self.key_tree.request_leave(msg.user_id)
        for record in msg.neighbor_records:
            self._pending_replacements[record.user_id] = record

    def _handle_failure_notice(self, msg: m.FailureNotice) -> None:
        """Section 3.2: a user reported a dead neighbor.  Process the
        failure as a leave at the interval end (without the leaver's own
        replacement records — it is gone)."""
        self.evict(msg.failed_user)

    def evict(self, user_id: Id) -> bool:
        """Queue a member's departure without its cooperation — the
        shared path behind failure notices and the service's
        absent-member eviction after a snapshot restore.  Returns True
        when a leave was queued (False: unknown or already pending)."""
        if user_id not in self.records or user_id in self._pending_leaves:
            return False
        self._pending_leaves.append(user_id)
        self.key_tree.request_leave(user_id)
        return True

    def _handle_recover(self, src: int, msg: m.RecoverRequest) -> None:
        """Reference-[31] recovery: unicast the announcements the member
        missed, oldest first, with encryptions Lemma-3-filtered to what
        this member can use."""
        requester = next(
            (uid for uid, r in self.records.items() if r.host == src), None
        )
        missed = tuple(
            m.MembershipUpdate(
                u.interval,
                u.joins,
                u.leaves,
                tuple(
                    e
                    for e in u.encryptions
                    if requester is not None and e.needed_by(requester)
                ),
                u.replacements,
            )
            for u in self._history
            if u.interval > msg.last_interval
        )
        if missed:
            self.send(src, m.RecoverResponse(missed))

    # ------------------------------------------------------------------
    def end_interval(self) -> m.MembershipUpdate:
        """Close the rekey interval: batch-rekey, then multicast the
        membership update + rekey message.  Joiners of this interval also
        get a direct unicast (footnote 1 of the paper) since nobody's
        table can reach them yet."""
        joins = tuple(self._pending_joins)
        leaves = tuple(self._pending_leaves)
        replacements = tuple(
            record
            for uid, record in sorted(self._pending_replacements.items())
            if uid not in set(self._pending_leaves)
        )
        self._pending_joins = []
        self._pending_leaves = []
        self._pending_replacements = {}
        rekey = self.key_tree.process_batch()
        update = m.MembershipUpdate(
            self.interval, joins, leaves, rekey.encryptions, replacements
        )
        self._history.append(update)
        self.interval += 1

        # The multicast runs over the tables as of the *previous*
        # announcement: next hops must be previously announced users
        # (this interval's joiners are in nobody's table yet).  Departing
        # users are still announced — they forward this final multicast
        # and detach on receiving it.
        server_table = self._build_server_table(self._announced)
        for user_id in leaves:
            host = self.records[user_id].host
            self._granted.pop(host, None)  # a rejoin gets a fresh grant
            self._assigned_by_host.pop(host, None)
            self.id_tree.remove_user(user_id)
            del self.records[user_id]
        self._announced -= set(leaves)
        self._announced |= {
            r.user_id for r in joins if r.user_id not in set(leaves)
        }
        self._all_departed.update(leaves)

        for _, nbr in server_table.row_primaries(0):
            self.send(
                nbr.host,
                m.MulticastMsg(
                    m.MembershipUpdate(
                        update.interval,
                        update.joins,
                        update.leaves,
                        split_for_next_hop(update.encryptions, nbr.user_id, 0),
                        update.replacements,
                    ),
                    forward_level=1,
                ),
            )
        # This interval's joiners are unreachable over the tables, so the
        # server unicasts them their (Lemma-3-filtered) share directly —
        # the paper's footnote-1 behaviour.
        for record in joins:
            self.send(
                record.host,
                m.MulticastMsg(
                    m.MembershipUpdate(
                        update.interval,
                        update.joins,
                        update.leaves,
                        tuple(
                            e
                            for e in update.encryptions
                            if e.needed_by(record.user_id)
                        ),
                        update.replacements,
                    ),
                    forward_level=self.scheme.num_digits,
                ),
            )
        return update

    def _build_server_table(self, announced: Set[Id]) -> NeighborTable:
        table = NeighborTable(
            self.scheme, UserRecord(NULL_ID, self.host), self.k
        )
        for user_id in announced:
            record = self.records.get(user_id)
            if record is not None:
                table.insert(
                    record, self.network.topology.rtt(self.host, record.host)
                )
        return table

    # ------------------------------------------------------------------
    # Snapshot / restore (service-mode graceful shutdown, docs/SERVICE.md)
    # ------------------------------------------------------------------
    SNAPSHOT_VERSION = 1

    def snapshot_state(self) -> bytes:
        """Serialize everything a restarted key server needs to resume
        this group: key tree, ID tree, member records, pending batch,
        announcement history, idempotency caches, and the RNG.  The
        scheme travels along so a mismatched restore fails loudly.

        Set-valued fields are serialized as sorted tuples (set iteration
        order depends on insertion history, which a restore does not
        replay), so snapshots of identical state are byte-identical —
        including a re-snapshot right after a restore."""
        state = {}
        for name in self._SNAPSHOT_FIELDS:
            value = getattr(self, name)
            if isinstance(value, (set, frozenset)):
                value = tuple(sorted(value, key=repr))
            state[name] = value
        payload = {
            "version": self.SNAPSHOT_VERSION,
            "scheme": (self.scheme.num_digits, self.scheme.base),
            "state": state,
        }
        return pickle.dumps(payload, protocol=4)

    def restore_state(self, blob: bytes) -> None:
        """Load a :meth:`snapshot_state` blob into this (fresh) server.
        Hosts of restored members are *not* reconnected automatically;
        the service evicts absentees (see ``RekeyService.
        evict_absent_members``) so rekeying continues over live members."""
        payload = pickle.loads(blob)
        if payload.get("version") != self.SNAPSHOT_VERSION:
            raise ValueError(
                f"snapshot version {payload.get('version')!r} != "
                f"{self.SNAPSHOT_VERSION}"
            )
        if payload["scheme"] != (self.scheme.num_digits, self.scheme.base):
            raise ValueError(
                f"snapshot scheme {payload['scheme']} does not match "
                f"server scheme ({self.scheme.num_digits}, {self.scheme.base})"
            )
        for name in self._SNAPSHOT_FIELDS:
            value = payload["state"][name]
            if isinstance(getattr(self, name), (set, frozenset)):
                value = set(value)
            setattr(self, name, value)

    def key_tree_state(self) -> bytes:
        """Canonical byte serialization of the key-tree state (sorted
        containers throughout), for byte-identity assertions across a
        snapshot/restore cycle.  Raw ``pickle`` of the tree is *not*
        canonical: set iteration order depends on insertion history, so
        two equal trees can pickle differently."""
        return pickle.dumps(_canonical(self.key_tree.__dict__), protocol=4)


@dataclass
class _Phase:
    """State of one digit-determination phase at a joining user."""

    index: int
    prefix: Id
    pools: Dict[int, Dict[Id, UserRecord]] = field(default_factory=dict)
    queried: Set[Id] = field(default_factory=set)
    pending_queries: int = 0
    awaiting_pings: Set[int] = field(default_factory=set)
    stage: str = "collect"  # collect -> measure -> done


class UserNode(TransportNode):
    """A user: joins via the real protocol, maintains its table, answers
    queries and pings, and forwards T-mesh multicasts with splitting."""

    def __init__(
        self,
        network: Transport,
        host: int,
        server_host: int,
        scheme: IdScheme,
        thresholds: Tuple[float, ...],
        k: int = 4,
        percentile: float = 90.0,
        collect_target: int = 10,
    ):
        super().__init__(network, host)
        #: Legacy spelling predating the scheduling seam; same object as
        #: ``self.transport``.
        self.network = network
        self.server_host = server_host
        self.scheme = scheme
        self.thresholds = thresholds
        self.k = k
        self.percentile = percentile
        self.collect_target = collect_target
        self.stats = ProtocolStats()

        self.user_id: Optional[Id] = None
        self.record: Optional[UserRecord] = None
        self.table: Optional[NeighborTable] = None
        self.known: Dict[Id, UserRecord] = {}
        self.measured: Dict[int, float] = {}  # host -> end-to-end RTT
        self._phase: Optional[_Phase] = None
        self._ping_sent: Dict[int, float] = {}
        self._ping_token = 0
        self.copies_received: List[int] = []  # interval numbers, one per copy
        self.encryptions_received: Dict[int, int] = {}
        self.leaving = False
        self.joined = False
        self._departed: Set[Id] = set()  # IDs announced as left
        self._leave_deferred = False  # leave requested before join finished
        #: Round-trip budget before a query/ping is written off (ms).
        self.timeout = 5000.0
        #: Retries on the key-server path (join admission, ID assignment,
        #: leave) before a lost request is accepted as fate.  The delay
        #: doubles per attempt (exponential backoff).
        self.max_server_retries = 3
        self._server_retry_events: Dict[str, object] = {}
        self._outstanding: Dict[Tuple, object] = {}  # token -> timeout Event
        self._query_seq = 0
        self._ping_timeouts: Dict[int, object] = {}
        self._unreachable: Set[int] = set()  # hosts that never answered
        # Section-3.2 liveness probing state.
        self.failure_threshold = 2  # consecutive missed pings
        self._miss_counts: Dict[Id, int] = {}
        self._probe_targets: Dict[int, UserRecord] = {}

    # ------------------------------------------------------------------
    # Outbound actions
    # ------------------------------------------------------------------
    def start_join(self) -> None:
        self._send_to_server(
            "join",
            lambda: m.JoinRequest(),
            done=lambda: self.joined or self._phase is not None,
        )

    def start_leave(self) -> None:
        """Request departure; the node keeps serving until the interval's
        final multicast delivers the update listing it.  Its neighbor
        records travel with the request so others can repair the entries
        it vacates (Silk leave).  A leave requested before the join
        protocol finished is deferred until the ID is assigned."""
        if self.user_id is None:
            self._leave_deferred = True
            return
        self.leaving = True
        neighbors = tuple(self.table.all_records()) if self.table else ()
        self._send_to_server(
            "leave",
            lambda: m.LeaveRequest(self.user_id, neighbors),
            # done once the final multicast detached us
            done=lambda: self.network.node_at(self.host) is not self,
        )

    # ------------------------------------------------------------------
    # Key-server path with retry/timeout (requests can be dropped by an
    # installed fault plan; the server handlers are idempotent)
    # ------------------------------------------------------------------
    def _send_to_server(self, key, make_msg, done, attempt: int = 0) -> None:
        self.send(self.server_host, make_msg())
        if attempt >= self.max_server_retries:
            return

        def retry() -> None:
            self._server_retry_events.pop(key, None)
            if done() or self.network.node_at(self.host) is not self:
                return
            self.stats.server_retries += 1
            self._send_to_server(key, make_msg, done, attempt + 1)

        self._server_retry_events[key] = self.scheduler.schedule(
            self.timeout * (2.0 ** attempt), retry
        )

    def _settle_server_call(self, key: str) -> None:
        event = self._server_retry_events.pop(key, None)
        if event is not None:
            event.cancel()

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------
    def on_message(self, src: int, payload) -> None:
        if isinstance(payload, m.JoinGrant):
            self._on_grant(payload)
        elif isinstance(payload, m.QueryMsg):
            self._on_query(src, payload)
        elif isinstance(payload, m.QueryResponse):
            self._on_query_response(payload)
        elif isinstance(payload, m.PingMsg):
            self.send(src, m.PongMsg(self.record, payload.token))
        elif isinstance(payload, m.PongMsg):
            self._on_pong(src, payload)
        elif isinstance(payload, m.AssignedId):
            self._on_assigned(payload)
        elif isinstance(payload, m.MulticastMsg):
            self._on_multicast(payload)
        elif isinstance(payload, m.RecoverResponse):
            self._on_recover_response(payload)

    # ------------------------------------------------------------------
    # Join protocol: phases
    # ------------------------------------------------------------------
    def _on_grant(self, grant: m.JoinGrant) -> None:
        if self.joined or self._phase is not None:
            return  # duplicate grant (a retried request was also answered)
        self._settle_server_call("join")
        if grant.assigned is not None:  # first join of the whole group
            self._finalize(grant.assigned)
            return
        self.known[grant.bootstrap.user_id] = grant.bootstrap
        self._start_phase(0, NULL_ID)

    def _start_phase(self, index: int, prefix: Id) -> None:
        phase = _Phase(index=index, prefix=prefix)
        self._phase = phase
        seeds = [r for r in self.known.values() if prefix.is_prefix_of(r.user_id)]
        for seed in seeds:
            self._absorb(phase, seed)
        if not seeds:  # nobody to ask: defer everything to the server
            self._notify_server(prefix)
            return
        seed = next(
            (s for s in seeds if s.host not in self._unreachable), seeds[0]
        )
        self._send_phase_query(phase, seed, prefix)

    def _send_phase_query(
        self, phase: _Phase, target: UserRecord, prefix: Id
    ) -> None:
        """Send one collection query with a response timeout: a silent
        responder (failed or departed) must not wedge the join."""
        self._query_seq += 1
        token = ("phase", phase.index, self._query_seq)
        phase.queried.add(target.user_id)
        phase.pending_queries += 1
        self.stats.queries_sent += 1
        self.send(target.host, m.QueryMsg(prefix, token))

        def on_timeout() -> None:
            if token not in self._outstanding:
                return  # answered in time
            del self._outstanding[token]
            self._give_up_on(target)
            if self._phase is phase and phase.stage == "collect":
                phase.pending_queries -= 1
                self._continue_collect(phase)

        self._outstanding[token] = self.scheduler.schedule(
            self.timeout, on_timeout
        )

    def _give_up_on(self, record: UserRecord) -> None:
        """Stop considering a host that never answers."""
        self._unreachable.add(record.host)
        self.known.pop(record.user_id, None)
        if self._phase is not None:
            for pool in self._phase.pools.values():
                pool.pop(record.user_id, None)

    def _absorb(self, phase: _Phase, record: UserRecord) -> None:
        if record.user_id == self.user_id:
            return
        if not phase.prefix.is_prefix_of(record.user_id):
            return
        self.known[record.user_id] = record
        digit = record.user_id[phase.index]
        phase.pools.setdefault(digit, {})[record.user_id] = record

    def _on_query_response(self, response: m.QueryResponse) -> None:
        kind = response.token[0]
        if kind == "refill":
            self._on_refill_response(response)
            return
        event = self._outstanding.pop(response.token, None)
        if event is None:
            return  # already timed out, or duplicate
        event.cancel()
        phase = self._phase
        if phase is None or response.token[1] != phase.index:
            return  # stale response from an earlier phase
        for record in response.records:
            self._absorb(phase, record)
        phase.pending_queries -= 1
        self._continue_collect(phase)

    def _continue_collect(self, phase: _Phase) -> None:
        if phase.stage != "collect":
            return
        for digit in list(phase.pools):
            pool = phase.pools[digit]
            if len(pool) < self.collect_target:
                target = next(
                    (
                        r
                        for uid, r in pool.items()
                        if uid not in phase.queried
                        and r.host not in self._unreachable
                    ),
                    None,
                )
                if target is not None:
                    # one outstanding refinement per pool per round
                    self._send_phase_query(
                        phase, target, phase.prefix.extend(digit)
                    )
        if phase.pending_queries == 0:
            self._start_measure(phase)

    def _start_measure(self, phase: _Phase) -> None:
        phase.stage = "measure"
        targets = {
            record.host
            for pool in phase.pools.values()
            for record in pool.values()
            if record.host not in self.measured
        }
        if not targets:
            self._decide(phase)
            return
        for host in targets:
            self._ping_token += 1
            token = self._ping_token
            phase.awaiting_pings.add(token)
            self._ping_sent[token] = self.scheduler.now
            self.stats.pings_sent += 1
            self.send(host, m.PingMsg(token))

            def on_timeout(token=token, host=host) -> None:
                if token not in self._ping_sent:
                    return  # pong arrived
                del self._ping_sent[token]
                self._ping_timeouts.pop(token, None)
                self._unreachable.add(host)
                if self._phase is phase and phase.stage == "measure":
                    for pool in phase.pools.values():
                        for uid in [
                            u for u, r in pool.items() if r.host == host
                        ]:
                            del pool[uid]
                    phase.awaiting_pings.discard(token)
                    if not phase.awaiting_pings:
                        self._decide(phase)

            self._ping_timeouts[token] = self.scheduler.schedule(
                self.timeout, on_timeout
            )

    def _on_pong(self, src: int, pong: m.PongMsg) -> None:
        sent = self._ping_sent.pop(pong.token, None)
        timeout_event = self._ping_timeouts.pop(pong.token, None)
        if timeout_event is not None:
            timeout_event.cancel()
        if sent is not None:
            self.measured[src] = self.scheduler.now - sent
        target = self._probe_targets.pop(pong.token, None)
        if target is not None:
            self._miss_counts.pop(target.user_id, None)  # alive again
        phase = self._phase
        if phase is None or phase.stage != "measure":
            return
        phase.awaiting_pings.discard(pong.token)
        if not phase.awaiting_pings:
            self._decide(phase)

    def _decide(self, phase: _Phase) -> None:
        phase.stage = "done"
        my_access = self.network.topology.access_rtt(self.host)
        best_digit, best_value = None, float("inf")
        for digit, pool in phase.pools.items():
            if not pool:
                continue
            rtts = [
                max(
                    0.0,
                    self.measured.get(r.host, 0.0) - my_access - r.access_rtt,
                )
                for r in pool.values()
            ]
            f = float(np.percentile(rtts, self.percentile))
            if f < best_value:
                best_digit, best_value = digit, f
        if best_digit is not None and best_value <= self.thresholds[phase.index]:
            new_prefix = phase.prefix.extend(best_digit)
            if phase.index + 1 <= self.scheme.num_digits - 2:
                self._start_phase(phase.index + 1, new_prefix)
            else:
                self._notify_server(new_prefix)
        else:
            self._notify_server(phase.prefix)

    def _notify_server(self, prefix: Id) -> None:
        self._phase = None
        self._send_to_server(
            "notify",
            lambda: m.NotifyPrefix(prefix),
            done=lambda: self.user_id is not None,
        )

    def _on_assigned(self, msg: m.AssignedId) -> None:
        if self.joined:
            return  # duplicate assignment (retry raced the original)
        self._settle_server_call("notify")
        self._departed.update(msg.departed)
        self._finalize(msg.record)

    def _finalize(self, record: UserRecord) -> None:
        self.user_id = record.user_id
        self.record = record
        self.table = NeighborTable(self.scheme, record, self.k)
        for other in self.known.values():
            self._insert(other)
        self.joined = True
        if self._leave_deferred:
            self.start_leave()

    def _insert(self, record: UserRecord) -> None:
        """Insert a record with a measured RTT (a lazy ping pair when the
        join phases never probed this host)."""
        if record.user_id == self.user_id or self.table is None:
            return
        if record.user_id in self._departed:
            return  # a stale record echoed by a racing query response
        rtt = self.measured.get(record.host)
        if rtt is None:
            rtt = self.network.topology.rtt(self.host, record.host)
            self.measured[record.host] = rtt
            self.stats.pings_sent += 1
        self.table.insert(record, rtt)

    # ------------------------------------------------------------------
    # Failure detection (Section 3.2)
    # ------------------------------------------------------------------
    def probe_neighbors(self) -> None:
        """One round of liveness pings to every neighbor in the table.
        A neighbor missing ``failure_threshold`` consecutive probe
        rounds is declared failed: its record is dropped, the entry is
        re-filled, and the key server is notified."""
        if self.table is None or self.leaving:
            return
        for record in list(self.table.all_records()):
            self._ping_token += 1
            token = self._ping_token
            self._ping_sent[token] = self.scheduler.now
            self._probe_targets[token] = record
            self.stats.pings_sent += 1
            self.send(record.host, m.PingMsg(token))

            def on_timeout(token=token, record=record) -> None:
                if token not in self._ping_sent:
                    return  # pong arrived
                del self._ping_sent[token]
                self._ping_timeouts.pop(token, None)
                self._probe_targets.pop(token, None)
                misses = self._miss_counts.get(record.user_id, 0) + 1
                self._miss_counts[record.user_id] = misses
                if misses >= self.failure_threshold:
                    self._declare_failed(record)

            self._ping_timeouts[token] = self.scheduler.schedule(
                self.timeout, on_timeout
            )

    def _declare_failed(self, record: UserRecord) -> None:
        if self.table is None or self.user_id is None:
            return
        self._miss_counts.pop(record.user_id, None)
        self._unreachable.add(record.host)
        self._departed.add(record.user_id)
        slot = self.table.slot_for(record)
        if self.table.remove(record.user_id):
            self.stats.failures_detected += 1
            self.send(
                self.server_host,
                m.FailureNotice(record.user_id, self.user_id),
            )
            if slot is not None and not self.table.entry(*slot):
                self._refill(*slot)

    # ------------------------------------------------------------------
    # Reference-[31] recovery: resync missed announcements from the server
    # ------------------------------------------------------------------
    def request_recovery(self) -> None:
        """Ask the server for every interval announcement after the last
        one this node saw.  A member whose multicast copy was dropped
        misses the whole batch — joins, leaves, and its share of the
        rekey message — and this unicast path restores all of it.  Run
        it periodically (or after an interval-number gap is observed);
        the request and response are themselves subject to the fault
        plan, so repeated rounds converge.  A *leaving* member still
        polls: once its departure is announced it receives no more
        multicasts (it is out of every table), so if it missed the
        final announcement this unicast is its only way to learn it —
        applying any recovered update while leaving detaches the node
        (:meth:`_apply_update`)."""
        if not self.joined:
            return
        # Report the last *contiguously* seen interval: a member that
        # joined mid-history holds {1} and still needs interval 0's
        # membership (collect phases run under the same lossy network).
        seen = set(self.copies_received)
        last = -1
        while last + 1 in seen:
            last += 1
        self.stats.recovery_requests += 1
        self.send(self.server_host, m.RecoverRequest(last))

    def _on_recover_response(self, response: m.RecoverResponse) -> None:
        for update in sorted(response.updates, key=lambda u: u.interval):
            if update.interval in self.copies_received:
                continue  # the multicast copy arrived after we asked
            self.copies_received.append(update.interval)
            self.encryptions_received[update.interval] = (
                self.encryptions_received.get(update.interval, 0)
                + len(update.encryptions)
            )
            self.stats.recovered_updates += 1
            self._apply_update(update)
            if self.network.node_at(self.host) is not self:
                return  # a recovered update announced our own departure

    def refill_sweep(self) -> int:
        """Anti-entropy round: issue a refill query for every empty
        table entry.  Entries go quietly empty when a lossy network
        drops the announcement that carried a joiner's record; an entry
        whose subtree really is unpopulated draws an empty response, so
        sweeping unconditionally is safe.  Returns queries sent."""
        if self.table is None or self.user_id is None or self.leaving:
            return 0
        sent = 0
        for i in range(self.scheme.num_digits):
            for j in range(self.scheme.base):
                if j == self.user_id[i]:
                    continue
                if not self.table.entry(i, j):
                    before = self.stats.refills_sent
                    self._refill(i, j)
                    sent += self.stats.refills_sent - before
        return sent

    # ------------------------------------------------------------------
    # Queries from other users
    # ------------------------------------------------------------------
    def _on_query(self, src: int, query: m.QueryMsg) -> None:
        matches: Tuple[UserRecord, ...] = ()
        if self.table is not None:
            found = [
                r
                for r in self.table.all_records()
                if query.target_prefix.is_prefix_of(r.user_id)
            ]
            if self.record is not None and query.target_prefix.is_prefix_of(
                self.record.user_id
            ):
                found.append(self.record)
            matches = tuple(found)
        self.send(src, m.QueryResponse(matches, query.token))

    # ------------------------------------------------------------------
    # T-mesh multicast: FORWARD + REKEY-MESSAGE-SPLIT on the wire
    # ------------------------------------------------------------------
    def _on_multicast(self, msg: m.MulticastMsg) -> None:
        update = msg.payload
        self.copies_received.append(update.interval)
        self.stats.multicast_copies += 1
        self.encryptions_received[update.interval] = (
            self.encryptions_received.get(update.interval, 0)
            + len(update.encryptions)
        )
        if self.copies_received.count(update.interval) > 1:
            return  # duplicate: do not forward again (Theorem 1 says this
            # cannot happen with consistent tables; counted for tests)

        # FORWARD (Fig. 2) with per-hop splitting (Fig. 5).
        level = msg.forward_level
        if self.table is not None and level < self.scheme.num_digits:
            for i in range(level, self.scheme.num_digits):
                for _, nbr in self.table.row_primaries(i):
                    self.send(
                        nbr.host,
                        m.MulticastMsg(
                            m.MembershipUpdate(
                                update.interval,
                                update.joins,
                                update.leaves,
                                split_for_next_hop(
                                    update.encryptions, nbr.user_id, i
                                ),
                                update.replacements,
                            ),
                            forward_level=i + 1,
                        ),
                    )

        # Apply the membership changes *after* forwarding, so the whole
        # multicast runs on one consistent table snapshot.
        self._apply_update(update)

    def _apply_update(self, update: m.MembershipUpdate) -> None:
        self._departed.update(update.leaves)
        if self.user_id in update.leaves or self.leaving:
            self.detach()  # the final forwarding duty is done
            return
        if self.table is None:
            return
        for record in update.joins:
            self._insert(record)
        # Remove every departed record first, then refill the emptied
        # entries — refill queries must target surviving neighbors only.
        emptied: List[Tuple[int, int]] = []
        for user_id in update.leaves:
            record = next(
                (r for r in self.table.all_records() if r.user_id == user_id),
                None,
            )
            if record is None:
                continue
            slot = self.table.slot_for(record)
            if self.table.remove(user_id) and slot is not None:
                emptied.append(slot)
        # The leavers' own neighbor records repair most vacated entries
        # immediately; refill queries cover anything still empty.
        for record in update.replacements:
            self._insert(record)
        for i, j in emptied:
            if not self.table.entry(i, j):
                self._refill(i, j)

    def _refill(self, i: int, j: int) -> None:
        """An entry went empty: ask a region mate (a neighbor sharing at
        least the first i digits) for members of that subtree."""
        target_prefix = self.user_id.prefix(i).extend(j)
        for row in range(self.scheme.num_digits - 1, i - 1, -1):
            for _, nbr in self.table.row_primaries(row):
                self.stats.refills_sent += 1
                self.send(
                    nbr.host,
                    m.QueryMsg(target_prefix, ("refill", i, j)),
                )
                return

    def _on_refill_response(self, response: m.QueryResponse) -> None:
        for record in response.records:
            self._insert(record)
