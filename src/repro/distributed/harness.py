"""Orchestration for the message-level protocol: schedule joins/leaves at
simulated times, run rekey intervals, and audit the emergent state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.id_assignment import PAPER_THRESHOLDS
from ..core.id_tree import IdTree
from ..core.ids import Id, IdScheme, PAPER_SCHEME
from ..faults.plan import FaultPlan, FaultStats
from ..net.scheduling import SchedulingBackend, create_backend
from ..net.topology import Topology
from ..trace import hooks as _trace_hooks
from ..verify import hooks as _verify_hooks
from .messages import MembershipUpdate
from .nodes import ServerNode, UserNode


@dataclass
class IntervalLog:
    """What one rekey interval announced."""

    update: MembershipUpdate
    time: float


class DistributedGroup:
    """A key server plus user nodes exchanging real protocol messages.

    Typical use::

        world = DistributedGroup(topology, server_host=n)
        world.schedule_join(host=3, at=10.0)
        world.schedule_leave_of_host(3, at=500.0)
        world.end_interval(at=512.0)
        world.run()
        assert world.check_one_consistency() == []
    """

    def __init__(
        self,
        topology: Topology,
        server_host: int,
        scheme: IdScheme = PAPER_SCHEME,
        thresholds: Tuple[float, ...] = PAPER_THRESHOLDS,
        k: int = 4,
        seed: int = 0,
        fault_plan: Optional[FaultPlan] = None,
        backend: "str | SchedulingBackend" = "simulator",
    ):
        self.scheme = scheme
        self.thresholds = thresholds
        self.k = k
        if isinstance(backend, str):
            backend = create_backend(backend, topology)
        self.backend = backend
        self.scheduler = backend.scheduler
        self.transport = backend.transport
        #: Legacy spellings predating the scheduling seam — the same
        #: objects as ``scheduler`` / ``transport``.  Kept because tests
        #: and examples read ``world.simulator.now`` / ``world.network``.
        self.simulator = self.scheduler
        self.network = self.transport
        self.transport.install_faults(fault_plan)
        self.fault_plan = fault_plan
        self.server = ServerNode(self.transport, server_host, scheme, k=k, seed=seed)
        self.users: Dict[int, UserNode] = {}
        self.intervals: List[IntervalLog] = []

    # ------------------------------------------------------------------
    def schedule_join(self, host: int, at: float) -> UserNode:
        """Create a user node and schedule its join protocol at ``at``."""
        node = UserNode(
            self.network,
            host,
            self.server.host,
            self.scheme,
            self.thresholds,
            k=self.k,
        )
        self.users[host] = node
        self.simulator.schedule_at(at, node.start_join)
        return node

    def schedule_leave_of_host(self, host: int, at: float) -> None:
        self.simulator.schedule_at(at, self.users[host].start_leave)

    def schedule_crash(self, host: int, at: float) -> None:
        """Silent failure: the node detaches without any protocol; other
        members must detect it by missed pings (Section 3.2)."""
        self.simulator.schedule_at(at, self.users[host].detach)

    def schedule_probe_round(self, at: float) -> None:
        """Every attached user runs one liveness-probe round at ``at``."""

        def fire() -> None:
            for user in self.users.values():
                if self.network.node_at(user.host) is user:
                    user.probe_neighbors()

        self.simulator.schedule_at(at, fire)

    def schedule_recovery_round(self, at: float) -> None:
        """Every attached member asks the server at ``at`` for interval
        announcements it missed (reference-[31] unicast recovery).  The
        request/response unicasts are themselves subject to any installed
        fault plan, so schedule a few rounds to converge under loss."""

        def fire() -> None:
            for user in self.users.values():
                if self.network.node_at(user.host) is user:
                    user.request_recovery()

        self.simulator.schedule_at(at, fire)

    def schedule_refill_sweep(self, at: float) -> None:
        """Every attached user runs one anti-entropy refill round at
        ``at``, re-querying region mates for any empty table entry (the
        repair path for announcements lost to an installed fault plan)."""

        def fire() -> None:
            for user in self.users.values():
                if self.network.node_at(user.host) is user:
                    user.refill_sweep()

        self.simulator.schedule_at(at, fire)

    def end_interval(self, at: float) -> None:
        """Schedule an interval end (batch rekey + announcement)."""

        def fire() -> None:
            update = self.server.end_interval()
            self.intervals.append(IntervalLog(update, self.simulator.now))
            tctx = _trace_hooks.ACTIVE
            if tctx is not None:
                tctx.observe_interval(update, self.simulator.now)

        self.simulator.schedule_at(at, fire)

    def run(self, until: Optional[float] = None) -> None:
        tctx = _trace_hooks.ACTIVE
        if tctx is None:
            self.simulator.run(until=until)
        else:
            # Snapshot the network's message pump around the drain so the
            # span carries this run's traffic, not the world's lifetime
            # totals.
            stats = self.network.stats
            before = (stats.sent, stats.delivered, stats.dropped)
            with tctx.span(
                "distributed.run", users=len(self.users)
            ) as span:
                self.simulator.run(until=until)
                span.set(
                    messages_sent=stats.sent - before[0],
                    messages_delivered=stats.delivered - before[1],
                    messages_dropped=stats.dropped - before[2],
                    intervals=len(self.intervals),
                    now_ms=self.simulator.now,
                )
            tctx.registry.inc("distributed.messages_sent", stats.sent - before[0])
            tctx.registry.inc(
                "distributed.messages_delivered", stats.delivered - before[1]
            )
            tctx.registry.inc(
                "distributed.messages_dropped", stats.dropped - before[2]
            )
        if until is None:
            # The world is quiescent (queue drained): let an installed
            # verification context audit the emergent state.  Announcement
            # unicasts are all delivered by now, so 1-consistency is a
            # theorem here — but only without injected faults, whose
            # losses legitimately leave tables stale until the recovery
            # rounds run.
            ctx = _verify_hooks.ACTIVE
            if ctx is not None and self.fault_plan is None:
                ctx.observe_distributed(self)

    def verify_invariants(self) -> None:
        """Audit the current world state with a one-shot verification
        context, raising :class:`repro.verify.InvariantViolation` on any
        broken invariant.  Unlike the automatic post-:meth:`run` hook
        this ignores the installed context and checks unconditionally."""
        from ..verify import VerificationContext

        VerificationContext(oracle=False).observe_distributed(self)

    @property
    def fault_stats(self) -> FaultStats:
        """What the installed fault plan injected (all-zero without one)."""
        if self.fault_plan is None:
            return FaultStats()
        return self.fault_plan.stats

    # ------------------------------------------------------------------
    # Audits
    # ------------------------------------------------------------------
    def active_users(self) -> List[UserNode]:
        """Users that joined and have not departed."""
        return [
            u
            for u in self.users.values()
            if u.joined and self.network.node_at(u.host) is u
        ]

    def check_one_consistency(self) -> List[str]:
        """1-consistency of the emergent tables (what Theorem 1 needs):
        for every active user, each (i, j)-entry is non-empty iff the
        corresponding ID subtree has other members, every stored record
        belongs to the right subtree, and no departed user lingers."""
        problems: List[str] = []
        active = self.active_users()
        tree = IdTree(self.scheme, [u.user_id for u in active])
        alive = {u.user_id for u in active}
        for user in active:
            table = user.table
            for i in range(self.scheme.num_digits):
                for j in range(self.scheme.base):
                    if j == user.user_id[i]:
                        if table.entry(i, j):
                            problems.append(
                                f"{user.user_id}: own-digit entry ({i},{j}) "
                                "not empty"
                            )
                        continue
                    subtree = tree.ij_subtree_root(user.user_id, i, j)
                    population = tree.subtree_size(subtree)
                    records = table.entry(i, j)
                    if population and not records:
                        problems.append(
                            f"{user.user_id}: entry ({i},{j}) empty but "
                            f"subtree has {population} members"
                        )
                    for record in records:
                        if record.user_id not in alive:
                            problems.append(
                                f"{user.user_id}: stale record "
                                f"{record.user_id} in ({i},{j})"
                            )
                        elif not subtree.is_prefix_of(record.user_id):
                            problems.append(
                                f"{user.user_id}: record {record.user_id} "
                                f"outside subtree {subtree}"
                            )
        return problems

    def delivery_report(self, interval: int) -> Dict[str, object]:
        """How one interval's multicast went: who received it, copy
        counts, and encryption loads — for Theorem-1-style assertions on
        the wire-level protocol."""
        copies = {
            u.user_id: u.copies_received.count(interval)
            for u in self.users.values()
            if u.joined
        }
        return {
            "received": {uid for uid, c in copies.items() if c >= 1},
            "duplicates": {uid: c for uid, c in copies.items() if c > 1},
            "encryptions": {
                u.user_id: u.encryptions_received.get(interval, 0)
                for u in self.users.values()
                if u.joined
            },
        }
