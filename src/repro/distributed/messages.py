"""Wire messages of the distributed protocol (Section 3).

Every step of the paper's protocol description exchanges one of these
messages over the simulated network: join admission, record queries
(Section 3.1.1), RTT pings (3.1.2), prefix notification and ID
assignment (3.1.4), the batched membership/rekey multicast, and leaves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.ids import Id
from ..core.neighbor_table import UserRecord
from ..keytree.keys import Encryption


@dataclass(frozen=True)
class JoinRequest:
    """User -> server: please admit me (the SSL mutual authentication of
    Section 3.1 is modelled by the transport)."""


@dataclass(frozen=True)
class JoinGrant:
    """Server -> user: admission reply.

    For the group's first join it directly carries the assigned ID;
    otherwise it carries the record of a user already in the group to
    bootstrap the ID-determination protocol."""

    assigned: Optional[UserRecord]
    bootstrap: Optional[UserRecord]


@dataclass(frozen=True)
class QueryMsg:
    """User -> user: return your neighbors whose IDs carry this prefix
    (Section 3.1.1).  ``token`` routes the response back to the right
    phase/purpose at the querier."""

    target_prefix: Id
    token: Tuple


@dataclass(frozen=True)
class QueryResponse:
    """User -> user: the matching neighbor records."""

    records: Tuple[UserRecord, ...]
    token: Tuple


@dataclass(frozen=True)
class PingMsg:
    """RTT probe (Section 3.1.2)."""

    token: int


@dataclass(frozen=True)
class PongMsg:
    responder_record: Optional[UserRecord]
    token: int


@dataclass(frozen=True)
class FailureNotice:
    """User -> server: a neighbor stopped answering consecutive pings
    (Section 3.2).  The server treats a confirmed failure like a leave at
    the next interval end, so every table drops the dead record."""

    failed_user: Id
    reporter: Id


@dataclass(frozen=True)
class NotifyPrefix:
    """User -> server: the digits I determined myself (step 4)."""

    determined_prefix: Id


@dataclass(frozen=True)
class AssignedId:
    """Server -> user: your complete ID (and, in a full deployment, the
    keys on your key-tree path).  ``departed`` lets the joiner purge
    records it collected of users that left while its collection phases
    were still running."""

    record: UserRecord
    departed: Tuple[Id, ...] = ()


@dataclass(frozen=True)
class LeaveRequest:
    """User -> server: I am leaving; process me at the interval end.

    As in the Silk leave protocol, the leaver supplies its neighbor
    records so that entries it leaves empty elsewhere can be re-filled:
    by its own table's 1-consistency, the leaver knows a member of every
    non-empty subtree of its regions."""

    user_id: Id
    neighbor_records: Tuple[UserRecord, ...] = ()


@dataclass(frozen=True)
class MembershipUpdate:
    """The interval-end batch: joined records, departed IDs, replacement
    records contributed by the leavers, and the (split) rekey
    encryptions.  Multicast over T-mesh; departing users keep forwarding
    this final multicast — they cannot decrypt the new keys it carries —
    and detach afterwards."""

    interval: int
    joins: Tuple[UserRecord, ...]
    leaves: Tuple[Id, ...]
    encryptions: Tuple[Encryption, ...]
    replacements: Tuple[UserRecord, ...] = ()


@dataclass(frozen=True)
class RecoverRequest:
    """User -> server: I may have missed interval announcements (a lossy
    network dropped my multicast copy, taking a whole subtree's worth of
    membership updates with it); unicast me every update after
    ``last_interval``.  This is the paper's reference-[31] fallback: the
    key server keeps the announcement history and any member can resync
    from it."""

    last_interval: int


@dataclass(frozen=True)
class RecoverResponse:
    """Server -> user: the missed updates, oldest first, with each
    update's encryptions filtered down to what the requester needs
    (Lemma 3, as for the joiner unicast)."""

    updates: Tuple[MembershipUpdate, ...]


@dataclass(frozen=True)
class MulticastMsg:
    """A T-mesh multicast copy: payload plus the forward_level field of
    Fig. 2 (and the sender's row ``s`` for the Theorem-2 splitting
    predicate applied by forwarders)."""

    payload: MembershipUpdate
    forward_level: int
