"""Project policy the rule families enforce — pure data, no logic.

The constants here encode the four runtime disciplines the reproduction
depends on (byte-deterministic replays, zero-overhead-off module-slot
hooks, the DESIGN.md layering direction, and ``fork``-safe parallel
payloads) as static-analysis policy.  Rules read these at check time, so
policy changes are one-file diffs reviewed next to DESIGN.md.
"""

from __future__ import annotations

# ----------------------------------------------------------------------
# Determinism (golden traces, fixed-seed oracle — docs/OBSERVABILITY.md,
# docs/VERIFY.md)
# ----------------------------------------------------------------------

#: Wall-clock reads, as flattened dotted call names.  ``time.perf_counter``
#: is deliberately absent: it is the sanctioned way to time *reporting*
#: (never protocol output) — see ``repro.experiments.report``.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Modules (root-relative posix paths) where wall-clock reads are allowed.
#: Empty on purpose: the one historical leak (experiments/report.py) now
#: routes through an injectable ``time.perf_counter`` clock.
WALL_CLOCK_ALLOWED: frozenset[str] = frozenset()

#: Module-global ``random.*`` functions — process-global RNG state, so a
#: call anywhere breaks seed-reproducibility for everyone downstream.
GLOBAL_RANDOM_FUNCS = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
    }
)

#: ``numpy.random`` legacy global-state functions (``np.random.seed`` and
#: friends).  ``np.random.default_rng(seed)`` is the sanctioned spelling;
#: an *argument-less* ``default_rng()`` is flagged separately because it
#: seeds from OS entropy.
GLOBAL_NP_RANDOM_FUNCS = frozenset(
    {
        "choice",
        "normal",
        "permutation",
        "rand",
        "randint",
        "randn",
        "random",
        "seed",
        "shuffle",
        "standard_normal",
        "uniform",
    }
)

#: Dotted call names that construct an RNG *instance*.  Constructing one
#: at module level — even with a seed — creates a process-wide shared
#: stream: any scenario that draws from it advances the sequence every
#: later scenario sees, so outputs stop being a function of the scenario
#: seed alone.  Generators must be built inside the scenario from its
#: seed (the ``rng = np.random.default_rng(seed)`` idiom).
RNG_CONSTRUCTORS = frozenset(
    {
        "random.Random",
        "default_rng",
        "np.random.default_rng",
        "numpy.random.default_rng",
        "np.random.RandomState",
        "numpy.random.RandomState",
        "np.random.Generator",
        "numpy.random.Generator",
    }
)

#: The only package whose modules may read OS entropy (``os.urandom``,
#: ``random.SystemRandom``): real keys are its job, everyone else must be
#: a deterministic function of a seed.
ENTROPY_PACKAGES = frozenset({"crypto"})

#: Packages whose outputs are ordering-sensitive (protocol paths feeding
#: golden traces and the differential oracle): iterating a *set* there is
#: nondeterministic across processes (hash randomization), unlike dicts,
#: whose insertion order is guaranteed.  ``net`` joined when the
#: scheduling seam (``repro.net.scheduling`` / ``repro.net.eventloop``)
#: moved message delivery onto protocol paths.
#: ``compute`` joined when the vectorized backend seam (``repro.compute``)
#: took over the FORWARD fan-out, rekey-split, and key-tree kernels.
PROTOCOL_PACKAGES = frozenset(
    {"core", "keytree", "alm", "sim", "distributed", "net", "compute"}
)

# ----------------------------------------------------------------------
# Hook discipline (zero-overhead module slots — repro.trace.hooks,
# repro.verify.hooks)
# ----------------------------------------------------------------------

#: The module-slot hook layers.  Hot-path modules may import exactly
#: these *modules* (``from ..trace import hooks``) — never names out of
#: them (binding ``ACTIVE`` or a context class snapshots the slot) and
#: never anything else from the packages (checkers/oracle/golden drag
#: protocol code into hot imports; they are loaded lazily by design).
SLOT_MODULES = frozenset({"repro.trace.hooks", "repro.verify.hooks"})

#: The packages the eager-import restriction applies to.  ``trace`` and
#: ``verify`` are free to import themselves; the top-level CLI/API
#: surface (``repro/__init__``, ``repro/__main__``) re-exports whole
#: packages legitimately.
HOT_PACKAGES = frozenset(
    {
        "alm",
        "compute",
        "core",
        "crypto",
        "distributed",
        "experiments",
        "faults",
        "keytree",
        "metrics",
        "net",
        "perf",
        "service",
        "sim",
    }
)

#: The slot attribute every instrumented call site must None-guard.
SLOT_ATTRIBUTE = "ACTIVE"

# ----------------------------------------------------------------------
# Layering (DESIGN.md §3 module inventory: protocol layers must not
# depend on orchestration layers)
# ----------------------------------------------------------------------

#: package -> packages it must never import eagerly (module level).
#: Importing a slot module (SLOT_MODULES) is exempt — that is the hook
#: discipline's sanctioned crossing.  Lazy (function-level) imports are
#: also exempt: they are the documented escape hatch the verification
#: layer itself uses to avoid cycles.
LAYER_FORBIDDEN: dict[str, frozenset[str]] = {
    # ``service`` is the live asyncio orchestration layer (docs/
    # SERVICE.md): it sits *above* net/distributed, so every protocol
    # package forbids it — the registry's lazy-import string in
    # ``repro.net.scheduling`` is the one sanctioned crossing.
    "core": frozenset(
        {"sim", "distributed", "experiments", "service", "trace", "verify"}
    ),
    "keytree": frozenset(
        {"alm", "sim", "distributed", "experiments", "service", "trace", "verify"}
    ),
    "alm": frozenset(
        {"sim", "distributed", "experiments", "service", "trace", "verify"}
    ),
    "crypto": frozenset(
        {
            "alm",
            "distributed",
            "experiments",
            "keytree",
            "metrics",
            "net",
            "service",
            "sim",
            "trace",
            "verify",
        }
    ),
    "net": frozenset(
        {"sim", "distributed", "experiments", "service", "trace", "verify"}
    ),
    # Compute backends sit beside core: they may reach into the protocol
    # layers they vectorize, never into orchestration or observability.
    "compute": frozenset(
        {"sim", "distributed", "experiments", "service", "trace", "verify", "alm"}
    ),
    "sim": frozenset(
        {"distributed", "experiments", "service", "trace", "verify"}
    ),
    "metrics": frozenset(
        {"sim", "distributed", "experiments", "service", "trace", "verify"}
    ),
    "faults": frozenset(
        {
            "alm",
            "core",
            "crypto",
            "distributed",
            "experiments",
            "keytree",
            "metrics",
            "net",
            "perf",
            "service",
            "sim",
            "trace",
            "verify",
        }
    ),
    "perf": frozenset({"distributed", "service", "trace", "verify"}),
    "distributed": frozenset({"experiments", "service"}),
    # The service layer may import net/distributed (and everything below
    # them) but never the experiment drivers — the two orchestration
    # surfaces stay siblings.
    "service": frozenset({"experiments"}),
    # The linter is a leaf like verify.report: it must analyse the tree
    # without importing it.
    "lint": frozenset(
        {
            "alm",
            "core",
            "crypto",
            "distributed",
            "experiments",
            "faults",
            "keytree",
            "metrics",
            "net",
            "perf",
            "service",
            "sim",
            "trace",
            "verify",
        }
    ),
}

# ----------------------------------------------------------------------
# Fork safety (ParallelRunner fork boundary — docs/PERFORMANCE.md)
# ----------------------------------------------------------------------

#: Attribute names that submit a payload to a worker pool.
FORK_SUBMIT_ATTRS = frozenset({"map"})

#: Modules whose classes cross (or carry payloads across) the fork
#: boundary and should declare ``__slots__``: per-instance dicts cost
#: both pickle bytes and memory at the paper's 1024-member scale.
FORK_BOUNDARY_MODULES = frozenset(
    {
        "repro/experiments/parallel.py",
        "repro/trace/spans.py",
        "repro/verify/report.py",
    }
)

# ----------------------------------------------------------------------
# Flow rules (CFG + dataflow — repro.lint.flow, docs/STATIC_ANALYSIS.md
# "Flow rules")
# ----------------------------------------------------------------------

#: relpath prefixes the await-interleaving race detector covers: the
#: live asyncio layer plus the deterministic event loop its scheduler
#: conformance tests run against.  Coroutines elsewhere (wire helpers,
#: test scaffolding) do not share mutable ``self`` state across task
#: interleavings, so the rule stays scoped to where a stale read is a
#: protocol bug.
FLOW_RACE_PATHS: tuple[str, ...] = (
    "repro/service/",
    "repro/net/eventloop.py",
)

#: relpath prefixes the resource-leak rule covers: the layer that opens
#: real sockets/streams.  Simulation transports hold no OS handles.
FLOW_RESOURCE_PATHS: tuple[str, ...] = ("repro/service/",)

#: Dotted call names (flattened) that acquire an OS-backed handle the
#: flow-resource-leak rule must see released on every CFG exit path.
FLOW_RESOURCE_ACQUIRERS = frozenset(
    {
        "asyncio.open_connection",
        "asyncio.start_server",
        "socket.socket",
        "socket.create_connection",
        "open",
    }
)

#: Method names that count as releasing a handle (direct calls on the
#: bound name).  ``async with`` / ``with`` binding releases implicitly
#: and is exempted structurally by the rule.
FLOW_RESOURCE_RELEASERS = frozenset(
    {"close", "wait_closed", "aclose", "shutdown", "abort"}
)

#: Call names that legitimately consume a coroutine object without an
#: inline ``await``: task spawners and aggregators.  A coroutine value
#: that reaches none of these and no ``await`` on any CFG path is
#: silently dropped — it never runs.
FLOW_COROUTINE_SINKS = frozenset(
    {
        "asyncio.create_task",
        "asyncio.ensure_future",
        "asyncio.gather",
        "asyncio.wait",
        "asyncio.wait_for",
        "asyncio.shield",
        "asyncio.run",
        "asyncio.run_coroutine_threadsafe",
        "create_task",
        "ensure_future",
        "gather",
    }
)
