"""The ``flow`` rule family: dataflow-backed checks over per-function
CFGs.

Four rules, all driven by the same cached per-module analysis:

``flow-await-race``
    in ``repro.service`` / ``repro.net.eventloop`` coroutines, a read of
    ``self.*`` state whose reaching write happened before an ``await``
    — with no re-validation (test read) in between — observes a value
    other tasks may have changed during the suspension.  The static
    twin of the quiescence tracking ``AsyncioScheduler`` does at
    runtime.
``flow-dropped-coroutine``
    a call to a same-module ``async def`` whose coroutine object never
    reaches an ``await`` or task sink on any path: the body silently
    never runs.
``flow-seed-taint``
    an RNG constructor in a protocol package whose seed argument
    resolves — through the def-use chain — to ``None``: the stream
    would come from OS entropy, which the statement-level rules cannot
    see across assignments.
``flow-resource-leak``
    a stream/socket acquired in ``repro.service`` that can reach the
    function exit with no ``close()`` (and no escape to an owner that
    could close it) on some path.

Rules here stay deliberately *precise over complete*: every heuristic
(escape analysis, same-module-only coroutine resolution, self-attr
scoping) errs toward silence, because a noisy commit gate gets
suppressed wholesale and then catches nothing.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .. import config
from ..modules import ModuleInfo, flatten_attribute
from ..rules import Rule
from ..violations import LintViolation
from .cfg import CFG, WRITE, FunctionNode, build_cfg
from .dataflow import (
    SEED_NONE,
    AwaitCrossing,
    Definition,
    ReachingDefinitions,
    classify_seed_expr,
    reachable_without,
)


def _own_walk(func: FunctionNode) -> Iterator[ast.AST]:
    """Walk a function's own body, not descending into nested
    function/lambda bodies (those are analysed separately)."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _is_static(func: FunctionNode) -> bool:
    for decorator in func.decorator_list:
        if flatten_attribute(decorator) == "staticmethod":
            return True
    return False


class FunctionAnalysis:
    """One function with its lazily-built CFG and dataflow results."""

    def __init__(
        self,
        func: FunctionNode,
        self_name: Optional[str],
        class_name: Optional[str],
    ) -> None:
        self.func = func
        self.self_name = self_name
        self.class_name = class_name
        self._cfg: Optional[CFG] = None
        self._rd: Optional[ReachingDefinitions] = None
        self._crossing: Optional[AwaitCrossing] = None
        self._parents: Optional[Dict[int, ast.AST]] = None

    @property
    def is_async(self) -> bool:
        return isinstance(self.func, ast.AsyncFunctionDef)

    @property
    def cfg(self) -> CFG:
        if self._cfg is None:
            self._cfg = build_cfg(self.func, self.self_name)
        return self._cfg

    @property
    def rd(self) -> ReachingDefinitions:
        if self._rd is None:
            self._rd = ReachingDefinitions(self.cfg)
        return self._rd

    @property
    def crossing(self) -> AwaitCrossing:
        if self._crossing is None:
            self._crossing = AwaitCrossing(self.cfg, self.rd)
        return self._crossing

    @property
    def parents(self) -> Dict[int, ast.AST]:
        """``id(child) -> parent`` over the whole function subtree."""
        if self._parents is None:
            parents: Dict[int, ast.AST] = {}
            for parent in ast.walk(self.func):
                for child in ast.iter_child_nodes(parent):
                    parents[id(child)] = parent
            self._parents = parents
        return self._parents

    def enclosing_stmt(self, node: ast.AST) -> Optional[ast.stmt]:
        current: Optional[ast.AST] = node
        while current is not None and not isinstance(current, ast.stmt):
            current = self.parents.get(id(current))
        return current if isinstance(current, ast.stmt) else None

    def cfg_node_of(self, stmt: ast.stmt) -> Optional[int]:
        """The first CFG node lowered from ``stmt`` — the one carrying
        its reads, whose IN set is the dataflow state the statement's
        expressions observe."""
        for node in self.cfg.nodes:
            if node.stmt is stmt:
                return node.index
        return None


class ModuleAnalysis:
    """All functions of a module with their class context, plus the
    async-name tables the coroutine rule resolves calls against."""

    def __init__(self, module: ModuleInfo) -> None:
        self.module = module
        self.functions: List[FunctionAnalysis] = []
        #: Names of ``async def``s outside any class (module level or
        #: nested in functions) — resolvable via bare ``name(...)``.
        self.plain_async: Set[str] = set()
        #: class name -> its ``async def`` method names — resolvable via
        #: ``self.name(...)`` inside that class.
        self.class_async: Dict[str, Set[str]] = {}
        self._walk(module.tree.body, None)

    def _walk(self, stmts: List[ast.stmt], class_name: Optional[str]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self_name: Optional[str] = None
                if class_name is not None and not _is_static(stmt):
                    positional = list(stmt.args.posonlyargs) + list(
                        stmt.args.args
                    )
                    if positional:
                        self_name = positional[0].arg
                self.functions.append(
                    FunctionAnalysis(stmt, self_name, class_name)
                )
                if isinstance(stmt, ast.AsyncFunctionDef):
                    if class_name is None:
                        self.plain_async.add(stmt.name)
                    else:
                        self.class_async.setdefault(class_name, set()).add(
                            stmt.name
                        )
                self._walk(stmt.body, None)
            elif isinstance(stmt, ast.ClassDef):
                self._walk(stmt.body, stmt.name)

    def resolve_async_call(
        self, call: ast.Call, fn: FunctionAnalysis
    ) -> Optional[str]:
        """The display name of the same-module coroutine this call
        creates, or ``None`` when the callee is unknown/sync."""
        target = call.func
        if isinstance(target, ast.Name) and target.id in self.plain_async:
            return target.id
        if (
            isinstance(target, ast.Attribute)
            and fn.class_name is not None
            and fn.self_name is not None
            and isinstance(target.value, ast.Name)
            and target.value.id == fn.self_name
            and target.attr in self.class_async.get(fn.class_name, set())
        ):
            return f"{fn.self_name}.{target.attr}"
        return None


#: Single-slot per-module cache.  The engine runs every rule against one
#: module before moving to the next, so the four flow rules share one
#: ModuleAnalysis build without the cache ever holding more than the
#: current module.
_CACHE: List[object] = [None, None]


def analyze(module: ModuleInfo) -> ModuleAnalysis:
    if _CACHE[0] is module:
        cached = _CACHE[1]
        assert isinstance(cached, ModuleAnalysis)
        return cached
    analysis = ModuleAnalysis(module)
    _CACHE[0] = module
    _CACHE[1] = analysis
    return analysis


# ----------------------------------------------------------------------
# flow-await-race
# ----------------------------------------------------------------------
class AwaitInterleavingRaceRule(Rule):
    """``self.*`` written, ``await``, dependent read — with no
    re-validation in between."""

    rule_id = "flow-await-race"
    family = "flow"
    citation = "docs/SERVICE.md"
    description = (
        "coroutine reads self.* state written before an await without "
        "re-validating it after the suspension; other tasks may have "
        "changed it while this one was parked"
    )

    def check(self, module: ModuleInfo) -> Iterator[LintViolation]:
        if not module.relpath.startswith(config.FLOW_RACE_PATHS):
            return
        for fn in analyze(module).functions:
            if not fn.is_async or fn.self_name is None:
                continue
            cfg = fn.cfg
            awaits = cfg.await_nodes()
            if not awaits:
                continue
            crossing = fn.crossing
            reported: Set[Tuple[str, int]] = set()
            for node in cfg.nodes:
                for access in node.reads:
                    if not access.is_self or access.is_test:
                        continue
                    stale = [
                        definition
                        for definition in crossing.stale_defs(
                            node.index, access.name
                        )
                        if definition.access.kind == WRITE
                    ]
                    if not stale:
                        continue
                    key = (access.name, id(access.node))
                    if key in reported:
                        continue
                    reported.add(key)
                    write = stale[0]
                    write_line = getattr(write.access.node, "lineno", "?")
                    between = [
                        a.stmt.lineno
                        for a in awaits
                        if a.stmt is not None
                        and hasattr(a.stmt, "lineno")
                        and reachable_without(cfg, write.node, set(), a.index)
                        and reachable_without(cfg, a.index, set(), node.index)
                    ]
                    suspension = (
                        f" (suspension at line {min(between)})"
                        if between
                        else ""
                    )
                    yield self.violation(
                        module,
                        access.node,
                        f"{access.name} may be stale: written at line "
                        f"{write_line}, then an await let other tasks "
                        f"interleave before this read{suspension}; "
                        "re-validate or recompute it after resuming",
                    )


# ----------------------------------------------------------------------
# flow-dropped-coroutine
# ----------------------------------------------------------------------
class DroppedCoroutineRule(Rule):
    """A same-module coroutine call whose value never reaches an await
    or task sink."""

    rule_id = "flow-dropped-coroutine"
    family = "flow"
    citation = "docs/SERVICE.md"
    description = (
        "calling an async def creates a coroutine object; unless it is "
        "awaited or handed to a task sink on some path, its body never "
        "runs"
    )

    def check(self, module: ModuleInfo) -> Iterator[LintViolation]:
        analysis = analyze(module)
        if not analysis.plain_async and not analysis.class_async:
            return
        for fn in analysis.functions:
            for node in _own_walk(fn.func):
                # Case 1: bare expression statement — the coroutine is
                # created and immediately dropped.
                if isinstance(node, ast.Expr) and isinstance(
                    node.value, ast.Call
                ):
                    name = analysis.resolve_async_call(node.value, fn)
                    if name is not None:
                        yield self.violation(
                            module,
                            node,
                            f"coroutine {name}(...) is created but never "
                            "awaited — the call returns a coroutine "
                            "object, it does not run the body; await it "
                            "or hand it to a task sink",
                        )
                    continue
                # Case 2: assigned to a local that is never read on any
                # path.
                if (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and isinstance(node.value, ast.Call)
                ):
                    name = analysis.resolve_async_call(node.value, fn)
                    if name is None:
                        continue
                    target = node.targets[0]
                    definition = self._definition_of(fn, target)
                    if definition is None:
                        continue
                    if not fn.rd.uses_of(definition):
                        yield self.violation(
                            module,
                            node,
                            f"coroutine {name}(...) is bound to "
                            f"'{target.id}' but never awaited or passed "
                            "on any path — its body never runs",
                        )

    @staticmethod
    def _definition_of(
        fn: FunctionAnalysis, target: ast.Name
    ) -> Optional[Definition]:
        for cfg_node, access in fn.cfg.accesses():
            if access.kind == WRITE and access.node is target:
                return Definition(access.name, cfg_node.index, access)
        return None


# ----------------------------------------------------------------------
# flow-seed-taint
# ----------------------------------------------------------------------
class SeedTaintRule(Rule):
    """RNG constructed from a seed that def-use resolves to ``None``."""

    rule_id = "flow-seed-taint"
    family = "flow"
    citation = "docs/VERIFY.md"
    description = (
        "RNG constructors in protocol packages must be seeded: a seed "
        "argument that resolves to None through the def-use chain means "
        "the stream comes from OS entropy and replays diverge"
    )

    #: ``service`` joins the protocol packages here: its scheduler seeds
    #: backend-local RNGs that feed protocol timers.
    _PACKAGES = config.PROTOCOL_PACKAGES | frozenset({"service"})

    def check(self, module: ModuleInfo) -> Iterator[LintViolation]:
        if module.package not in self._PACKAGES:
            return
        for fn in analyze(module).functions:
            for node in _own_walk(fn.func):
                if not isinstance(node, ast.Call):
                    continue
                name = flatten_attribute(node.func)
                if name not in config.RNG_CONSTRUCTORS:
                    continue
                seed = self._seed_argument(node)
                if seed is None:
                    # Argument-less constructors are the statement-level
                    # determinism rules' territory.
                    continue
                stmt = fn.enclosing_stmt(node)
                if stmt is None:
                    continue
                at_node = fn.cfg_node_of(stmt)
                if at_node is None:
                    continue
                verdict = classify_seed_expr(seed, at_node, fn.rd)
                if verdict == SEED_NONE:
                    yield self.violation(
                        module,
                        node,
                        f"{name}() receives a seed that resolves to "
                        "None along the def-use chain — the generator "
                        "would seed from OS entropy; derive the seed "
                        "from a function parameter or a non-None "
                        "constant",
                    )

    @staticmethod
    def _seed_argument(call: ast.Call) -> Optional[ast.expr]:
        if call.args:
            return call.args[0]
        for keyword in call.keywords:
            if keyword.arg == "seed":
                return keyword.value
        return None


# ----------------------------------------------------------------------
# flow-resource-leak
# ----------------------------------------------------------------------
class ResourceLeakRule(Rule):
    """A stream/socket handle that can reach the function exit live and
    unreleased."""

    rule_id = "flow-resource-leak"
    family = "flow"
    citation = "docs/SERVICE.md"
    description = (
        "streams and sockets acquired in the service layer must be "
        "closed (or escape to an owner) on every path out of the "
        "function; prefer async with"
    )

    def check(self, module: ModuleInfo) -> Iterator[LintViolation]:
        if not module.relpath.startswith(config.FLOW_RESOURCE_PATHS):
            return
        for fn in analyze(module).functions:
            for node in _own_walk(fn.func):
                if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                    continue
                value = node.value
                call = value.value if isinstance(value, ast.Await) else value
                if not isinstance(call, ast.Call):
                    continue
                name = flatten_attribute(call.func)
                if name not in config.FLOW_RESOURCE_ACQUIRERS:
                    continue
                handle = self._handle_target(node.targets[0])
                if handle is None:
                    continue
                violation = self._check_handle(module, fn, node, call, handle)
                if violation is not None:
                    yield violation

    @staticmethod
    def _handle_target(target: ast.expr) -> Optional[ast.Name]:
        """The name to track: the (single) target, or the *last* element
        of a tuple unpack — ``reader, writer = await open_connection()``
        closes through ``writer``.  Handles stored onto ``self`` outlive
        the function and are out of scope."""
        if isinstance(target, ast.Name):
            return target
        if isinstance(target, (ast.Tuple, ast.List)) and target.elts:
            last = target.elts[-1]
            if isinstance(last, ast.Name):
                return last
        return None

    def _check_handle(
        self,
        module: ModuleInfo,
        fn: FunctionAnalysis,
        assign: ast.Assign,
        call: ast.Call,
        handle: ast.Name,
    ) -> Optional[LintViolation]:
        cfg = fn.cfg
        def_index: Optional[int] = None
        blocked: Set[int] = set()
        for cfg_node, access in cfg.accesses():
            if access.name != handle.id:
                continue
            if access.kind == WRITE:
                if access.node is handle:
                    def_index = cfg_node.index
                else:
                    # Rebinding orphans the handle; past this point the
                    # name no longer tracks it — stop following.
                    blocked.add(cfg_node.index)
                continue
            use = self._classify_use(access.node, fn)
            if use in ("release", "escape"):
                blocked.add(cfg_node.index)
        if def_index is None:
            return None
        if reachable_without(cfg, def_index, blocked, cfg.exit):
            return self.violation(
                module,
                assign,
                f"'{handle.id}' ({flatten_attribute(call.func)}) can "
                "reach the function exit without close()/wait_closed() "
                "and without escaping to an owner; close it on every "
                "path (try/finally) or use async with",
            )
        return None

    @staticmethod
    def _classify_use(name_node: ast.AST, fn: FunctionAnalysis) -> str:
        """``"release"`` (a close-family method call), ``"escape"``
        (passed/returned/stored — someone else owns it now), or
        ``"use"`` (plain method call / attribute read — the handle is
        still ours to close)."""
        parent = fn.parents.get(id(name_node))
        if isinstance(parent, ast.Attribute):
            grandparent = fn.parents.get(id(parent))
            if isinstance(grandparent, ast.Call) and grandparent.func is parent:
                if parent.attr in config.FLOW_RESOURCE_RELEASERS:
                    return "release"
            return "use"
        if isinstance(parent, ast.withitem):
            # ``(async) with handle:`` — __exit__ releases it.
            return "release"
        if isinstance(parent, ast.Call):
            return "escape"
        if isinstance(parent, ast.keyword):
            return "escape"
        if isinstance(
            parent,
            (ast.Return, ast.Yield, ast.YieldFrom, ast.Starred),
        ):
            return "escape"
        if isinstance(parent, (ast.Tuple, ast.List, ast.Set, ast.Dict)):
            return "escape"
        if isinstance(parent, ast.Assign) and parent.value is name_node:
            return "escape"
        return "use"
