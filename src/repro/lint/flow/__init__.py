"""Flow-sensitive analysis for ``repro.lint``.

The statement rules in :mod:`repro.lint.rules` see one AST node at a
time; this subpackage adds the machinery to reason about *paths*:

* :mod:`repro.lint.flow.cfg` — per-function control-flow graphs with
  await points as explicit nodes;
* :mod:`repro.lint.flow.dataflow` — reaching definitions, the
  await-crossing variant the race detector uses, and def-use helpers;
* :mod:`repro.lint.flow.rules_flow` — the ``flow`` rule family built on
  top, registered alongside the statement rules in
  :func:`repro.lint.rules.all_rules`.

Like the rest of the lint package it imports nothing from the wider
``repro`` tree (DESIGN.md layering: the linter analyses without
importing).
"""

from .cfg import CFG, Access, CFGNode, build_cfg
from .dataflow import AwaitCrossing, Definition, ReachingDefinitions

__all__ = [
    "CFG",
    "CFGNode",
    "Access",
    "AwaitCrossing",
    "Definition",
    "ReachingDefinitions",
    "build_cfg",
]
