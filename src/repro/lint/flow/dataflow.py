"""Dataflow over the CFGs of :mod:`repro.lint.flow.cfg`.

Three analyses, all standard worklist fixpoints over small per-function
graphs:

* **Reaching definitions** — for every node, the set of definitions
  (writes / parameters) that reach its entry along some path.  This is
  the substrate for def-use chains: a read's *reaching defs of its own
  name* are exactly the writes it may observe.
* **Await-crossing reaching definitions** — the same lattice extended
  with one bit per definition: "has this value crossed a suspension
  point since it was written?".  An ``await`` node flips the bit on
  everything live across it; a *test* read of a ``self.*`` name clears
  it (the coroutine re-validated the state after resuming, which is the
  pattern `AsyncioScheduler.drain` uses at runtime).  The race detector
  fires on plain reads whose only reaching defs carry the bit.
* **Seed-source resolution** — a recursive classifier over def-use
  chains answering "where did this expression's value ultimately come
  from?" with one of ``{"none", "param", "const", "other"}``, used by
  the RNG seed-taint rule to follow a seed through any number of
  intermediate assignments.

Everything here is pure: no imports from the wider ``repro`` tree, no
mutation of the CFG.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .cfg import AWAIT, CFG, PARAM, Access

#: Seed-source classifications, ordered by how much we trust them.
SEED_NONE = "none"  # literally None / unseeded
SEED_PARAM = "param"  # flows from a function parameter (caller's duty)
SEED_CONST = "const"  # a non-None literal
SEED_OTHER = "other"  # attribute, call result, arithmetic, ... (opaque)


@dataclass(frozen=True, slots=True)
class Definition:
    """One write event: ``name`` was bound at CFG node ``node``."""

    name: str
    node: int
    access: Access

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Definition({self.name!r}@{self.node})"


class ReachingDefinitions:
    """Classic forward may-analysis: ``IN[n] = union(OUT[p])``,
    ``OUT[n] = gen(n) | (IN[n] - kill(n))``."""

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        self.defs: List[List[Definition]] = [[] for _ in cfg.nodes]
        for node in cfg.nodes:
            for access in node.writes:
                self.defs[node.index].append(
                    Definition(access.name, node.index, access)
                )
        self.in_sets: List[FrozenSet[Definition]] = []
        self.out_sets: List[FrozenSet[Definition]] = []
        self._solve()

    def _transfer(
        self, index: int, incoming: FrozenSet[Definition]
    ) -> FrozenSet[Definition]:
        generated = self.defs[index]
        if not generated:
            return incoming
        killed = {definition.name for definition in generated}
        kept = {d for d in incoming if d.name not in killed}
        kept.update(generated)
        return frozenset(kept)

    def _solve(self) -> None:
        cfg = self.cfg
        empty: FrozenSet[Definition] = frozenset()
        self.in_sets = [empty for _ in cfg.nodes]
        self.out_sets = [
            self._transfer(node.index, empty) for node in cfg.nodes
        ]
        worklist = [node.index for node in cfg.nodes]
        while worklist:
            index = worklist.pop()
            node = cfg.nodes[index]
            incoming: Set[Definition] = set()
            for pred in node.preds:
                incoming.update(self.out_sets[pred])
            frozen_in = frozenset(incoming)
            if frozen_in == self.in_sets[index] and self.out_sets[index]:
                # No change and already initialised with this input.
                if self._transfer(index, frozen_in) == self.out_sets[index]:
                    continue
            self.in_sets[index] = frozen_in
            out = self._transfer(index, frozen_in)
            if out != self.out_sets[index]:
                self.out_sets[index] = out
                worklist.extend(node.succs)

    def reaching(self, index: int, name: str) -> List[Definition]:
        """Definitions of ``name`` that may reach node ``index``."""
        return sorted(
            (d for d in self.in_sets[index] if d.name == name),
            key=lambda d: d.node,
        )

    def uses_of(self, definition: Definition) -> List[Tuple[int, Access]]:
        """``(node, read)`` pairs this definition may feed."""
        uses: List[Tuple[int, Access]] = []
        for node in self.cfg.nodes:
            if definition in self.in_sets[node.index]:
                for access in node.reads:
                    if access.name == definition.name:
                        uses.append((node.index, access))
        return uses


#: A definition plus the "crossed an await since written" bit.
_Crossed = Tuple[Definition, bool]


class AwaitCrossing:
    """Reaching definitions where each fact carries a *crossed* bit.

    Transfer rules, applied in node order (reads, then the node effect,
    then writes — matching the read-before-write chains the CFG builder
    emits):

    * an ``await`` node sets ``crossed=True`` on every live definition;
    * a **test** read of name *n* (branch/loop/assert condition) resets
      ``crossed=False`` on every live definition of *n* — the coroutine
      looked at the value after resuming, so downstream reads are
      considered re-validated;
    * a write of *n* kills all prior facts for *n* and generates
      ``(def, False)``.

    The lattice is the powerset of ``defs x {False, True}``; transfer is
    monotone, so the usual worklist terminates.
    """

    def __init__(self, cfg: CFG, reaching: ReachingDefinitions) -> None:
        self.cfg = cfg
        self._defs = reaching.defs
        self.in_sets: List[FrozenSet[_Crossed]] = []
        self.out_sets: List[FrozenSet[_Crossed]] = []
        self._solve()

    def _transfer(
        self, index: int, incoming: FrozenSet[_Crossed]
    ) -> FrozenSet[_Crossed]:
        node = self.cfg.nodes[index]
        facts: Set[_Crossed] = set(incoming)
        revalidated = {
            access.name
            for access in node.reads
            if access.is_test and access.is_self
        }
        if revalidated:
            facts = {
                (d, crossed and d.name not in revalidated)
                for d, crossed in facts
            }
        if node.kind == AWAIT:
            facts = {(d, True) for d, _ in facts}
        generated = self._defs[index]
        if generated:
            killed = {definition.name for definition in generated}
            facts = {f for f in facts if f[0].name not in killed}
            facts.update((definition, False) for definition in generated)
        return frozenset(facts)

    def _solve(self) -> None:
        cfg = self.cfg
        empty: FrozenSet[_Crossed] = frozenset()
        self.in_sets = [empty for _ in cfg.nodes]
        self.out_sets = [
            self._transfer(node.index, empty) for node in cfg.nodes
        ]
        worklist = [node.index for node in cfg.nodes]
        while worklist:
            index = worklist.pop()
            node = cfg.nodes[index]
            incoming: Set[_Crossed] = set()
            for pred in node.preds:
                incoming.update(self.out_sets[pred])
            frozen_in = frozenset(incoming)
            self.in_sets[index] = frozen_in
            out = self._transfer(index, frozen_in)
            if out != self.out_sets[index]:
                self.out_sets[index] = out
                worklist.extend(node.succs)

    def stale_defs(self, index: int, name: str) -> List[Definition]:
        """Definitions of ``name`` reaching node ``index`` with the
        crossed bit set — i.e. written before a suspension point with no
        re-validation since."""
        return sorted(
            {
                definition
                for definition, crossed in self.in_sets[index]
                if crossed and definition.name == name
            },
            key=lambda d: d.node,
        )


# ----------------------------------------------------------------------
# Seed-source resolution (def-use chasing for the RNG taint rule)
# ----------------------------------------------------------------------
def classify_seed_expr(
    expr: Optional[ast.expr],
    at_node: int,
    reaching: ReachingDefinitions,
    _seen: Optional[Set[Tuple[str, int]]] = None,
) -> str:
    """Where does this seed expression's value come from?

    Follows Name reads through their reaching definitions (copy chains
    like ``s = seed; t = s; Random(t)``), merging over multiple defs:
    any ``none`` wins (that path is unseeded), otherwise any ``other``
    wins (we cannot prove it), otherwise params/consts hold.
    """
    if _seen is None:
        _seen = set()
    if expr is None:
        return SEED_NONE
    if isinstance(expr, ast.Constant):
        return SEED_NONE if expr.value is None else SEED_CONST
    if isinstance(expr, ast.Name):
        defs = reaching.reaching(at_node, expr.id)
        if not defs:
            return SEED_OTHER  # global / builtin; out of scope
        verdicts = []
        for definition in defs:
            key = (definition.name, definition.node)
            if key in _seen:
                continue  # copy cycle through a loop; ignore this path
            _seen.add(key)
            if definition.access.kind == PARAM:
                verdicts.append(SEED_PARAM)
            elif definition.access.value is not None:
                verdicts.append(
                    classify_seed_expr(
                        definition.access.value,
                        definition.node,
                        reaching,
                        _seen,
                    )
                )
            else:
                verdicts.append(SEED_OTHER)
        if not verdicts:
            return SEED_OTHER
        if SEED_NONE in verdicts:
            return SEED_NONE
        if SEED_OTHER in verdicts:
            return SEED_OTHER
        return SEED_PARAM if SEED_PARAM in verdicts else SEED_CONST
    if isinstance(expr, ast.Attribute):
        # self.seed / cfg.seed: someone else's responsibility; trusted.
        return SEED_OTHER
    if isinstance(expr, (ast.BinOp, ast.UnaryOp)):
        # Arithmetic over seeds (``seed + shard``): classify operands,
        # weakest wins.
        operands = (
            [expr.left, expr.right]
            if isinstance(expr, ast.BinOp)
            else [expr.operand]
        )
        verdicts = [
            classify_seed_expr(op, at_node, reaching, _seen)
            for op in operands
        ]
        if SEED_NONE in verdicts:
            return SEED_NONE
        if SEED_OTHER in verdicts:
            return SEED_OTHER
        return SEED_PARAM if SEED_PARAM in verdicts else SEED_CONST
    if isinstance(expr, ast.IfExp):
        verdicts = [
            classify_seed_expr(expr.body, at_node, reaching, _seen),
            classify_seed_expr(expr.orelse, at_node, reaching, _seen),
        ]
        if SEED_NONE in verdicts:
            return SEED_NONE
        if SEED_OTHER in verdicts:
            return SEED_OTHER
        return SEED_PARAM if SEED_PARAM in verdicts else SEED_CONST
    return SEED_OTHER


def reachable_without(
    cfg: CFG,
    start: int,
    blocked: Set[int],
    target: int,
) -> bool:
    """Is ``target`` reachable from ``start`` along edges avoiding the
    ``blocked`` nodes?  (BFS; used by the resource-leak rule: "can the
    function exit while the handle is live and unreleased?")"""
    if start in blocked:
        return False
    seen = {start}
    frontier = [start]
    while frontier:
        index = frontier.pop()
        if index == target:
            return True
        for succ in cfg.nodes[index].succs:
            if succ not in seen and succ not in blocked:
                seen.add(succ)
                frontier.append(succ)
    return False
