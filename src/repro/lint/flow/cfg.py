"""Per-function control-flow graphs with await points as explicit nodes.

The statement-level rules in :mod:`repro.lint.rules` see one AST node at
a time; the flow rules need *paths*: "does this read sit downstream of
that write, with an ``await`` in between?".  This module lowers a
function body to a small CFG whose nodes carry the reads and writes the
dataflow pass (:mod:`repro.lint.flow.dataflow`) consumes:

* every simple statement becomes a short chain — a node carrying the
  reads of its expressions, one explicit ``await`` node per suspension
  point (``await``, ``yield``, ``yield from``, the implicit ``__anext__``
  of ``async for`` and ``__aenter__``/``__aexit__`` of ``async with``),
  then a node carrying the writes — so "crosses an await" is a pure
  graph property;
* branches, loops (with ``break``/``continue`` routing), ``try``/
  ``except``/``finally`` (handlers reachable from every node of the
  protected body; ``finally`` bodies inlined at every abrupt exit, the
  same trick compilers use), ``with``/``async with``, and ``match`` all
  lower to ordinary edges;
* accesses distinguish plain locals from instance state: ``self.attr``
  (spelled with the method's actual first parameter) becomes the
  pseudo-name ``"self.attr"`` with ``is_self=True``, which is what the
  await-interleaving race detector keys on.

The lowering is deliberately conservative where Python is dynamic:
mutations through subscripts/attribute chains are recorded as *reads* of
the base (they do not rebind), nested function bodies get their own
CFGs, and an expression's reads are ordered before its awaits before the
statement's writes (exact sub-expression interleavings are
approximated — good enough for lint, never for codegen).

Like the rest of the package this module imports nothing from the wider
``repro`` tree: it is pure ``ast``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Access kinds.
READ = "read"
WRITE = "write"
PARAM = "param"

#: Node kinds.
ENTRY = "entry"
EXIT = "exit"
STMT = "stmt"
TEST = "test"
AWAIT = "await"
EXCEPT = "except"


@dataclass(frozen=True, slots=True)
class Access:
    """One read or write of a trackable name.

    ``name`` is a plain local (``"head"``) or an instance-attribute
    pseudo-name (``"self._wall_start"``, with ``is_self=True``).
    ``is_test`` marks reads that occur in a branch/loop/assert condition
    — the race detector treats those as *re-validation* points.
    ``value`` carries the RHS expression for simple single-target writes
    (the def-use resolver follows it for copy/constant propagation);
    ``None`` means "opaque" (unpacking, ``del``, parameters, loops).
    """

    name: str
    node: ast.AST
    kind: str
    is_self: bool = False
    is_test: bool = False
    value: Optional[ast.expr] = None


@dataclass(slots=True)
class CFGNode:
    """One atomic step: reads happen before writes; ``await`` nodes mark
    the suspension itself (their operand's reads sit in the chain
    before them)."""

    index: int
    kind: str
    stmt: Optional[ast.AST]
    reads: Tuple[Access, ...] = ()
    writes: Tuple[Access, ...] = ()
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)


@dataclass(slots=True)
class CFG:
    """The lowered function: ``nodes[entry]`` holds the parameter defs,
    every path ends at ``nodes[exit]``."""

    func: FunctionNode
    self_name: Optional[str]
    nodes: List[CFGNode]
    entry: int
    exit: int

    @property
    def is_async(self) -> bool:
        return isinstance(self.func, ast.AsyncFunctionDef)

    def await_nodes(self) -> List[CFGNode]:
        return [node for node in self.nodes if node.kind == AWAIT]

    def accesses(self) -> Iterator[Tuple[CFGNode, Access]]:
        for node in self.nodes:
            for access in node.reads:
                yield node, access
            for access in node.writes:
                yield node, access


# ----------------------------------------------------------------------
# Expression scanning
# ----------------------------------------------------------------------
def scan_expression(
    expr: Optional[ast.expr],
    self_name: Optional[str],
    is_test: bool = False,
) -> Tuple[List[Access], List[ast.expr]]:
    """``(reads, suspension_points)`` of an expression.

    ``self.attr`` loads (where the base is the method's first parameter)
    are recorded as the pseudo-name, not as a read of the base name;
    every other name load is a plain read.  Lambdas are scanned
    conservatively (their parameter shadowing is ignored — extra reads
    only ever make the rules quieter).  Nested suspension operands are
    scanned before the suspension is recorded, matching evaluation
    order.
    """
    reads: List[Access] = []
    suspensions: List[ast.expr] = []
    if expr is None:
        return reads, suspensions

    def visit(node: ast.AST) -> None:
        if isinstance(node, ast.Await):
            visit(node.value)
            suspensions.append(node)
            return
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            if node.value is not None:
                visit(node.value)
            suspensions.append(node)
            return
        if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            base = node.value
            if (
                self_name is not None
                and isinstance(base, ast.Name)
                and base.id == self_name
            ):
                reads.append(
                    Access(
                        f"{self_name}.{node.attr}",
                        node,
                        READ,
                        is_self=True,
                        is_test=is_test,
                    )
                )
                return
            visit(base)
            return
        if isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Load):
                reads.append(Access(node.id, node, READ, is_test=is_test))
            return
        if isinstance(node, ast.Lambda):
            visit(node.body)
            return
        for child in ast.iter_child_nodes(node):
            visit(child)

    visit(expr)
    return reads, suspensions


def scan_target(
    target: ast.expr,
    self_name: Optional[str],
    value: Optional[ast.expr] = None,
) -> Tuple[List[Access], List[Access]]:
    """``(writes, reads)`` of an assignment target.

    Name and ``self.attr`` targets rebind (writes); subscript and
    foreign-attribute targets *mutate* — recorded as reads of their base
    so dependence tracking still sees the access without pretending the
    binding changed.  ``value`` is attached only to simple (non-unpack)
    targets.
    """
    writes: List[Access] = []
    reads: List[Access] = []

    def visit(node: ast.expr, rhs: Optional[ast.expr]) -> None:
        if isinstance(node, ast.Name):
            writes.append(Access(node.id, node, WRITE, value=rhs))
        elif isinstance(node, ast.Attribute):
            base = node.value
            if (
                self_name is not None
                and isinstance(base, ast.Name)
                and base.id == self_name
            ):
                writes.append(
                    Access(
                        f"{self_name}.{node.attr}",
                        node,
                        WRITE,
                        is_self=True,
                        value=rhs,
                    )
                )
            else:
                base_reads, _ = scan_expression(base, self_name)
                reads.extend(base_reads)
        elif isinstance(node, ast.Subscript):
            base_reads, _ = scan_expression(node.value, self_name)
            index_reads, _ = scan_expression(node.slice, self_name)
            reads.extend(base_reads)
            reads.extend(index_reads)
        elif isinstance(node, (ast.Tuple, ast.List)):
            for element in node.elts:
                visit(element, None)
        elif isinstance(node, ast.Starred):
            visit(node.value, None)

    visit(target, value)
    return writes, reads


def _is_literal_true(expr: ast.expr) -> bool:
    return isinstance(expr, ast.Constant) and expr.value is True


def _match_captures(pattern: ast.pattern) -> List[Tuple[str, ast.AST]]:
    names: List[Tuple[str, ast.AST]] = []
    for node in ast.walk(pattern):
        if isinstance(node, (ast.MatchAs, ast.MatchStar)):
            if node.name is not None:
                names.append((node.name, node))
        elif isinstance(node, ast.MatchMapping):
            if node.rest is not None:
                names.append((node.rest, node))
    return names


# ----------------------------------------------------------------------
# The builder
# ----------------------------------------------------------------------
@dataclass(slots=True)
class _LoopFrame:
    continue_target: int
    breaks: List[int]
    finally_depth: int


class _Builder:
    def __init__(self, func: FunctionNode, self_name: Optional[str]) -> None:
        self.func = func
        self.self_name = self_name
        self.nodes: List[CFGNode] = []
        self.finally_stack: List[List[ast.stmt]] = []
        self.loop_stack: List[_LoopFrame] = []
        #: Innermost active except-dispatch node: every node created
        #: while lowering a protected body gains an edge to it (any
        #: statement may raise).
        self.dispatch_stack: List[int] = []

    # -- graph primitives ----------------------------------------------
    def node(
        self,
        kind: str,
        stmt: Optional[ast.AST],
        reads: Sequence[Access] = (),
        writes: Sequence[Access] = (),
    ) -> int:
        node = CFGNode(len(self.nodes), kind, stmt, tuple(reads), tuple(writes))
        self.nodes.append(node)
        if self.dispatch_stack and kind != EXCEPT:
            self.edge(node.index, self.dispatch_stack[-1])
        return node.index

    def edge(self, src: int, dst: int) -> None:
        if dst not in self.nodes[src].succs:
            self.nodes[src].succs.append(dst)
            self.nodes[dst].preds.append(src)

    def seq(self, frontier: Sequence[int], target: int) -> None:
        for index in frontier:
            self.edge(index, target)

    # -- expression chains ---------------------------------------------
    def chain(
        self,
        frontier: List[int],
        stmt: ast.AST,
        reads: Sequence[Access],
        suspensions: Sequence[ast.expr],
        kind: str = STMT,
    ) -> List[int]:
        """Lower "evaluate these reads, then suspend at each await" to a
        node chain; returns the new frontier (the chain's last node)."""
        head = self.node(kind, stmt, reads=reads)
        self.seq(frontier, head)
        frontier = [head]
        for suspension in suspensions:
            await_node = self.node(AWAIT, suspension)
            self.seq(frontier, await_node)
            frontier = [await_node]
        return frontier

    def run_finallys(self, frontier: List[int], down_to: int = 0) -> List[int]:
        """Inline every active ``finally`` body from the innermost down
        to (not including) depth ``down_to`` — the path an abrupt exit
        (return / break / continue) actually takes."""
        saved = self.finally_stack
        for depth in range(len(saved) - 1, down_to - 1, -1):
            self.finally_stack = saved[:depth]
            frontier = self.block(saved[depth], frontier)
        self.finally_stack = saved
        return frontier

    # -- statement lowering --------------------------------------------
    def block(self, stmts: Sequence[ast.stmt], frontier: List[int]) -> List[int]:
        for stmt in stmts:
            frontier = self.stmt(stmt, frontier)
        return frontier

    def stmt(self, stmt: ast.stmt, frontier: List[int]) -> List[int]:
        self_name = self.self_name

        if isinstance(stmt, ast.Assign):
            reads, suspensions = scan_expression(stmt.value, self_name)
            writes: List[Access] = []
            rhs = stmt.value if len(stmt.targets) == 1 else None
            for target in stmt.targets:
                target_writes, target_reads = scan_target(
                    target, self_name, value=rhs
                )
                writes.extend(target_writes)
                reads = reads + target_reads
            return self._rw_chain(frontier, stmt, reads, suspensions, writes)

        if isinstance(stmt, ast.AugAssign):
            reads, suspensions = scan_expression(stmt.value, self_name)
            target_reads, _ = scan_expression(
                _as_load(stmt.target), self_name
            )
            writes, mutation_reads = scan_target(stmt.target, self_name)
            return self._rw_chain(
                frontier,
                stmt,
                reads + target_reads + mutation_reads,
                suspensions,
                writes,
            )

        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is None:
                return frontier
            reads, suspensions = scan_expression(stmt.value, self_name)
            writes, target_reads = scan_target(
                stmt.target, self_name, value=stmt.value
            )
            return self._rw_chain(
                frontier, stmt, reads + target_reads, suspensions, writes
            )

        if isinstance(stmt, ast.Expr):
            reads, suspensions = scan_expression(stmt.value, self_name)
            return self.chain(frontier, stmt, reads, suspensions)

        if isinstance(stmt, ast.Return):
            reads, suspensions = scan_expression(stmt.value, self_name)
            frontier = self.chain(frontier, stmt, reads, suspensions)
            frontier = self.run_finallys(frontier)
            self.seq(frontier, self.exit_index)
            return []

        if isinstance(stmt, ast.Raise):
            reads, suspensions = scan_expression(stmt.exc, self_name)
            if stmt.cause is not None:
                cause_reads, _ = scan_expression(stmt.cause, self_name)
                reads.extend(cause_reads)
            frontier = self.chain(frontier, stmt, reads, suspensions)
            if not self.dispatch_stack:
                # Propagates out of the function: runs the finallys,
                # then leaves.  (Inside a try, the auto edge to the
                # dispatch node already models the handler path.)
                frontier = self.run_finallys(frontier)
                self.seq(frontier, self.exit_index)
            return []

        if isinstance(stmt, (ast.Break, ast.Continue)):
            if not self.loop_stack:
                return frontier  # malformed source; stay permissive
            frame = self.loop_stack[-1]
            marker = self.node(STMT, stmt)
            self.seq(frontier, marker)
            routed = self.run_finallys([marker], down_to=frame.finally_depth)
            if isinstance(stmt, ast.Break):
                frame.breaks.extend(routed)
            else:
                self.seq(routed, frame.continue_target)
            return []

        if isinstance(stmt, ast.If):
            reads, suspensions = scan_expression(
                stmt.test, self_name, is_test=True
            )
            frontier = self.chain(frontier, stmt, reads, suspensions, kind=TEST)
            body = self.block(stmt.body, list(frontier))
            orelse = self.block(stmt.orelse, list(frontier))
            return body + orelse

        if isinstance(stmt, ast.While):
            reads, suspensions = scan_expression(
                stmt.test, self_name, is_test=True
            )
            head = self.node(TEST, stmt, reads=reads)
            self.seq(frontier, head)
            tail = [head]
            for suspension in suspensions:
                await_node = self.node(AWAIT, suspension)
                self.seq(tail, await_node)
                tail = [await_node]
            frame = _LoopFrame(head, [], len(self.finally_stack))
            self.loop_stack.append(frame)
            body = self.block(stmt.body, list(tail))
            self.seq(body, head)
            self.loop_stack.pop()
            normal = [] if _is_literal_true(stmt.test) else list(tail)
            if stmt.orelse:
                normal = self.block(stmt.orelse, normal)
            return frame.breaks + normal

        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            reads, suspensions = scan_expression(stmt.iter, self_name)
            frontier = self.chain(frontier, stmt, reads, suspensions)
            if isinstance(stmt, ast.AsyncFor):
                # The implicit ``__anext__`` await, taken every
                # iteration: the loop's back edge re-enters here.
                anext = self.node(AWAIT, stmt)
                self.seq(frontier, anext)
                loop_entry = anext
            else:
                loop_entry = self.node(STMT, stmt)
                self.seq(frontier, loop_entry)
            target_writes, target_reads = scan_target(stmt.target, self_name)
            head = self.node(
                TEST, stmt, reads=target_reads, writes=target_writes
            )
            self.edge(loop_entry, head)
            frame = _LoopFrame(loop_entry, [], len(self.finally_stack))
            self.loop_stack.append(frame)
            body = self.block(stmt.body, [head])
            self.seq(body, loop_entry)
            self.loop_stack.pop()
            normal = [loop_entry]
            if stmt.orelse:
                normal = self.block(stmt.orelse, normal)
            return frame.breaks + normal

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                reads, suspensions = scan_expression(
                    item.context_expr, self_name
                )
                frontier = self.chain(frontier, stmt, reads, suspensions)
                if isinstance(stmt, ast.AsyncWith):
                    enter = self.node(AWAIT, stmt)
                    self.seq(frontier, enter)
                    frontier = [enter]
                if item.optional_vars is not None:
                    writes, target_reads = scan_target(
                        item.optional_vars, self_name, value=item.context_expr
                    )
                    bind = self.node(
                        STMT, stmt, reads=target_reads, writes=writes
                    )
                    self.seq(frontier, bind)
                    frontier = [bind]
            frontier = self.block(stmt.body, frontier)
            if isinstance(stmt, ast.AsyncWith):
                leave = self.node(AWAIT, stmt)
                self.seq(frontier, leave)
                frontier = [leave]
            return frontier

        if isinstance(stmt, ast.Try):
            return self._try(stmt, frontier)

        if isinstance(stmt, ast.Match):
            reads, suspensions = scan_expression(stmt.subject, self_name)
            frontier = self.chain(frontier, stmt, reads, suspensions)
            exits: List[int] = []
            for case in stmt.cases:
                captures = [
                    Access(name, node, WRITE)
                    for name, node in _match_captures(case.pattern)
                ]
                guard_reads, _ = scan_expression(
                    case.guard, self_name, is_test=True
                )
                arm = self.node(
                    TEST, case, reads=guard_reads, writes=captures
                )
                self.seq(frontier, arm)
                exits.extend(self.block(case.body, [arm]))
            return exits + list(frontier)  # no case matched

        if isinstance(stmt, ast.Assert):
            reads, suspensions = scan_expression(
                stmt.test, self_name, is_test=True
            )
            if stmt.msg is not None:
                msg_reads, _ = scan_expression(stmt.msg, self_name)
                reads.extend(msg_reads)
            return self.chain(frontier, stmt, reads, suspensions, kind=TEST)

        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            reads: List[Access] = []
            for decorator in stmt.decorator_list:
                decorator_reads, _ = scan_expression(decorator, self_name)
                reads.extend(decorator_reads)
            for default in list(stmt.args.defaults) + [
                d for d in stmt.args.kw_defaults if d is not None
            ]:
                default_reads, _ = scan_expression(default, self_name)
                reads.extend(default_reads)
            writes = [Access(stmt.name, stmt, WRITE)]
            return self._rw_chain(frontier, stmt, reads, [], writes)

        if isinstance(stmt, ast.ClassDef):
            writes = [Access(stmt.name, stmt, WRITE)]
            return self._rw_chain(frontier, stmt, [], [], writes)

        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            writes = []
            for alias in stmt.names:
                bound = alias.asname or alias.name.split(".")[0]
                if bound != "*":
                    writes.append(Access(bound, stmt, WRITE))
            return self._rw_chain(frontier, stmt, [], [], writes)

        if isinstance(stmt, ast.Delete):
            writes = []
            reads = []
            for target in stmt.targets:
                target_writes, target_reads = scan_target(target, self_name)
                writes.extend(target_writes)
                reads.extend(target_reads)
            return self._rw_chain(frontier, stmt, reads, [], writes)

        # Pass / Global / Nonlocal / anything exotic: a plain step.
        marker = self.node(STMT, stmt)
        self.seq(frontier, marker)
        return [marker]

    def _rw_chain(
        self,
        frontier: List[int],
        stmt: ast.AST,
        reads: Sequence[Access],
        suspensions: Sequence[ast.expr],
        writes: Sequence[Access],
    ) -> List[int]:
        if not suspensions:
            merged = self.node(STMT, stmt, reads=reads, writes=writes)
            self.seq(frontier, merged)
            return [merged]
        frontier = self.chain(frontier, stmt, reads, suspensions)
        store = self.node(STMT, stmt, writes=writes)
        self.seq(frontier, store)
        return [store]

    def _try(self, stmt: ast.Try, frontier: List[int]) -> List[int]:
        dispatch = self.node(EXCEPT, stmt)
        has_finally = bool(stmt.finalbody)
        if has_finally:
            self.finally_stack.append(stmt.finalbody)
        self.dispatch_stack.append(dispatch)
        body = self.block(stmt.body, frontier)
        self.dispatch_stack.pop()
        body = self.block(stmt.orelse, body)
        handler_exits: List[int] = []
        for handler in stmt.handlers:
            reads: List[Access] = []
            if handler.type is not None:
                reads, _ = scan_expression(handler.type, self.self_name)
            writes = (
                [Access(handler.name, handler, WRITE)] if handler.name else []
            )
            head = self.node(STMT, handler, reads=reads, writes=writes)
            self.edge(dispatch, head)
            handler_exits.extend(self.block(handler.body, [head]))
        if has_finally:
            self.finally_stack.pop()
        normal = body + handler_exits
        if has_finally:
            normal = self.block(stmt.finalbody, normal)
            if not stmt.handlers:
                # try/finally with no handlers: the exception path runs
                # the finally then keeps propagating.
                unhandled = self.block(stmt.finalbody, [dispatch])
                if self.dispatch_stack:
                    self.seq(unhandled, self.dispatch_stack[-1])
                else:
                    self.seq(unhandled, self.exit_index)
        return normal

    # -- entry point ---------------------------------------------------
    def build(self) -> CFG:
        args = self.func.args
        params: List[Access] = []
        for arg in (
            list(args.posonlyargs)
            + list(args.args)
            + ([args.vararg] if args.vararg else [])
            + list(args.kwonlyargs)
            + ([args.kwarg] if args.kwarg else [])
        ):
            params.append(Access(arg.arg, arg, PARAM))
        entry = self.node(ENTRY, self.func, writes=params)
        self.exit_index = self.node(EXIT, self.func)
        frontier = self.block(self.func.body, [entry])
        self.seq(frontier, self.exit_index)
        return CFG(
            func=self.func,
            self_name=self.self_name,
            nodes=self.nodes,
            entry=entry,
            exit=self.exit_index,
        )


# _Builder assigns exit_index in build() before lowering any statement;
# declaring it here keeps the attribute contract visible.
_Builder.exit_index = -1  # type: ignore[attr-defined]


def _as_load(target: ast.expr) -> ast.expr:
    """A Load-context copy of an AugAssign target (``x += 1`` reads x)."""
    clone = ast.copy_location(
        ast.parse(ast.unparse(target), mode="eval").body, target
    )
    ast.fix_missing_locations(clone)
    return clone


def build_cfg(func: FunctionNode, self_name: Optional[str] = None) -> CFG:
    """Lower ``func`` to its control-flow graph.

    ``self_name`` is the name of the instance parameter when ``func`` is
    a method (normally ``"self"``); accesses through it become
    ``is_self`` pseudo-names.
    """
    return _Builder(func, self_name).build()
