"""Inline suppression directives.

A violation can be silenced in place with::

    something_flagged()  # lint: disable=rule-id -- why this is safe

or, when the justification does not fit on the code line, on a
comment-only line immediately above it::

    # lint: disable=rule-id,other-rule -- why this is safe
    something_flagged()

The justification (the text after ``--``) is **required**: a directive
without one does not suppress anything and is itself reported as a
``lint-suppress`` violation, so "disable and move on" is never silent.
The policy (and when to prefer the baseline instead) is documented in
``docs/STATIC_ANALYSIS.md``.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass

#: ``# lint: disable=a,b -- justification``
DIRECTIVE_RE = re.compile(
    r"#\s*lint:\s*disable=([A-Za-z0-9_,\- ]+?)\s*(?:--\s*(.*\S))?\s*$"
)


@dataclass(frozen=True, slots=True)
class Suppression:
    """One parsed directive."""

    line: int                     # line the directive comment sits on
    rules: frozenset[str]         # rule ids it names
    justification: str            # "" when missing

    @property
    def justified(self) -> bool:
        return bool(self.justification.strip())


def parse_directives(source: str) -> list[Suppression]:
    """Every ``lint: disable`` directive in ``source``, via the tokenizer
    (so directives inside string literals are not mistaken for comments)."""
    directives: list[Suppression] = []
    tokens = tokenize.generate_tokens(io.StringIO(source).readline)
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = DIRECTIVE_RE.search(token.string)
        if match is None:
            continue
        rules = frozenset(
            part.strip() for part in match.group(1).split(",") if part.strip()
        )
        if not rules:
            continue
        directives.append(
            Suppression(token.start[0], rules, match.group(2) or "")
        )
    return directives


class SuppressionIndex:
    """Per-file lookup: does a (line, rule) pair have a justified
    directive covering it?

    A directive covers its own line; a directive on a comment-only line
    additionally covers the next line (the standard spelling for long
    justifications).
    """

    def __init__(self, source: str) -> None:
        self.directives = parse_directives(source)
        lines = source.splitlines()
        self._by_line: dict[int, list[Suppression]] = {}
        for directive in self.directives:
            self._by_line.setdefault(directive.line, []).append(directive)
            text = (
                lines[directive.line - 1]
                if directive.line - 1 < len(lines)
                else ""
            )
            if text.lstrip().startswith("#"):
                self._by_line.setdefault(directive.line + 1, []).append(
                    directive
                )

    def covering(self, line: int, rule: str) -> Suppression | None:
        """The first directive naming ``rule`` at ``line`` (justified or
        not — the engine decides what an unjustified one means)."""
        for directive in self._by_line.get(line, []):
            if rule in directive.rules:
                return directive
        return None

    def naked(self) -> list[Suppression]:
        """Directives missing the required justification."""
        return [d for d in self.directives if not d.justified]
