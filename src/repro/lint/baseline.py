"""The committed baseline of grandfathered findings.

A baseline entry fingerprints a violation as ``(rule, path, stripped
source line)`` plus an occurrence count — deliberately *not* the line
number, so grandfathered findings survive unrelated edits above them.
When the offending source line itself is deleted or fixed, the
fingerprint no longer matches anything and ``--baseline-write`` shrinks
the file; the gate never lets the baseline grow silently, because
``tools/lint.py`` exits 2 on any violation the baseline does not cover.

The file format is sorted, indented JSON so diffs review like code.
"""

from __future__ import annotations

import json
from pathlib import Path

from .violations import LintViolation, sort_key

BASELINE_VERSION = 1

Fingerprint = tuple[str, str, str]  # (rule, path, stripped source)


def fingerprint(violation: LintViolation) -> Fingerprint:
    return (violation.rule, violation.path, violation.source)


def count_fingerprints(
    violations: list[LintViolation],
) -> dict[Fingerprint, int]:
    counts: dict[Fingerprint, int] = {}
    for violation in violations:
        key = fingerprint(violation)
        counts[key] = counts.get(key, 0) + 1
    return counts


class Baseline:
    """Fingerprint counts loaded from (or destined for) a baseline file."""

    def __init__(self, counts: dict[Fingerprint, int] | None = None) -> None:
        self.counts: dict[Fingerprint, int] = dict(counts or {})

    def __len__(self) -> int:
        return sum(self.counts.values())

    # ------------------------------------------------------------------
    @classmethod
    def from_violations(cls, violations: list[LintViolation]) -> "Baseline":
        return cls(count_fingerprints(violations))

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls()
        payload = json.loads(path.read_text(encoding="utf-8"))
        if payload.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version in {path}: "
                f"{payload.get('version')!r}"
            )
        counts: dict[Fingerprint, int] = {}
        for entry in payload.get("entries", []):
            key = (entry["rule"], entry["path"], entry["source"])
            counts[key] = counts.get(key, 0) + int(entry.get("count", 1))
        return cls(counts)

    def save(self, path: Path) -> None:
        entries = [
            {"rule": rule, "path": file, "source": source, "count": count}
            for (rule, file, source), count in sorted(self.counts.items())
        ]
        payload = {"version": BASELINE_VERSION, "entries": entries}
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    # ------------------------------------------------------------------
    def split(
        self, violations: list[LintViolation]
    ) -> tuple[list[LintViolation], list[LintViolation]]:
        """Partition into ``(baselined, new)``.

        For each fingerprint the baseline absorbs up to its recorded
        count of occurrences (in report order); any excess — and any
        fingerprint it has never seen — is new and gates the run.
        """
        remaining = dict(self.counts)
        baselined: list[LintViolation] = []
        new: list[LintViolation] = []
        for violation in sorted(violations, key=sort_key):
            key = fingerprint(violation)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                baselined.append(violation)
            else:
                new.append(violation)
        return baselined, new
