"""The analysis engine: walk a tree, run the rule visitors, apply
suppressions and the baseline, report.

Mirrors the verification layer's shape on purpose: rules are to source
patterns what :mod:`repro.verify.checkers` are to runtime behaviour, and
a :class:`LintResult` plays the role of a batch of
:class:`~repro.verify.report.ViolationReport` records.  The engine
imports nothing from the rest of ``repro`` (enforced by its own
``layering-import`` rule), so it can analyse a broken tree it could
never import.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Sequence

from .baseline import Baseline
from .modules import ModuleInfo
from .rules import Rule, all_rules
from .suppress import SuppressionIndex
from .violations import ERROR, LintViolation, sort_key

#: Meta-rule ids emitted by the engine itself (not suppressible).
SUPPRESS_RULE = "lint-suppress"
PARSE_RULE = "lint-parse"

_SKIP_DIRS = frozenset({"__pycache__"})


@dataclass(slots=True)
class LintResult:
    """Everything one run produced, pre-sorted for deterministic output."""

    violations: list[LintViolation] = field(default_factory=list)
    suppressed: list[LintViolation] = field(default_factory=list)
    baselined: list[LintViolation] = field(default_factory=list)
    new: list[LintViolation] = field(default_factory=list)
    files_scanned: int = 0

    def summary(self) -> str:
        return (
            f"scanned {self.files_scanned} file(s): "
            f"{len(self.violations)} finding(s), "
            f"{len(self.suppressed)} suppressed, "
            f"{len(self.baselined)} baselined, "
            f"{len(self.new)} new"
        )


def iter_source_files(root: Path) -> Iterator[Path]:
    """Every ``.py`` file under ``root``, skipping caches and
    ``egg-info`` build residue, in sorted order for stable reports."""
    for path in sorted(root.rglob("*.py")):
        parts = path.relative_to(root).parts
        if any(part in _SKIP_DIRS or part.endswith(".egg-info") for part in parts):
            continue
        yield path


class LintEngine:
    """Runs ``rules`` over every module under each root.

    A *root* is a directory that contains the top-level package dir
    (``src`` for the real tree; the fixture trees under
    ``tests/lint_fixtures`` have the same shape so the package-sensitive
    rules exercise identically).
    """

    def __init__(
        self,
        roots: Sequence[Path],
        rules: Sequence[Rule] | None = None,
        only: Sequence[Path] | None = None,
    ) -> None:
        self.roots = [Path(root) for root in roots]
        self.rules: list[Rule] = list(rules) if rules is not None else all_rules()
        #: When set, restrict the scan to these files (resolved paths) —
        #: the ``tools/lint.py --changed`` diff-scoped mode.  Files
        #: outside the roots are simply never reached.
        self.only: frozenset[Path] | None = (
            frozenset(Path(p).resolve() for p in only)
            if only is not None
            else None
        )

    # ------------------------------------------------------------------
    def iter_modules(self) -> Iterator[ModuleInfo | LintViolation]:
        """Parsed modules, or a ``lint-parse`` violation for files the
        compiler rejects (a lint pass must not die on the tree it is
        diagnosing)."""
        for root in self.roots:
            for path in iter_source_files(root):
                if self.only is not None and path.resolve() not in self.only:
                    continue
                try:
                    yield ModuleInfo.parse(path, root)
                except SyntaxError as exc:
                    yield LintViolation(
                        rule=PARSE_RULE,
                        severity=ERROR,
                        discipline="meta",
                        citation="the tree must parse before it can be linted",
                        path=path.relative_to(root).as_posix(),
                        line=exc.lineno or 1,
                        col=(exc.offset or 1) - 1,
                        message=f"syntax error: {exc.msg}",
                    )

    def _check_module(
        self, module: ModuleInfo
    ) -> tuple[list[LintViolation], list[LintViolation]]:
        """``(kept, suppressed)`` findings for one module."""
        index = SuppressionIndex(module.source)
        kept: list[LintViolation] = []
        suppressed: list[LintViolation] = []
        for rule in self.rules:
            for violation in rule.check(module):
                directive = index.covering(violation.line, violation.rule)
                if directive is not None and directive.justified:
                    suppressed.append(violation)
                else:
                    kept.append(violation)
        for directive in index.naked():
            kept.append(
                LintViolation(
                    rule=SUPPRESS_RULE,
                    severity=ERROR,
                    discipline="meta",
                    citation="docs/STATIC_ANALYSIS.md suppression policy",
                    path=module.relpath,
                    line=directive.line,
                    col=0,
                    message=(
                        "suppression without justification: append "
                        "`-- <why this is safe>`; an unjustified directive "
                        "suppresses nothing"
                    ),
                    source=module.source_line(directive.line),
                )
            )
        return kept, suppressed

    # ------------------------------------------------------------------
    def run(self, baseline: Baseline | None = None) -> LintResult:
        result = LintResult()
        for item in self.iter_modules():
            if isinstance(item, LintViolation):
                result.violations.append(item)
                continue
            result.files_scanned += 1
            kept, suppressed = self._check_module(item)
            result.violations.extend(kept)
            result.suppressed.extend(suppressed)
        result.violations.sort(key=sort_key)
        result.suppressed.sort(key=sort_key)
        if baseline is None:
            baseline = Baseline()
        result.baselined, result.new = baseline.split(result.violations)
        return result


def check_source(
    source: str,
    relpath: str = "repro/core/snippet.py",
    rules: Sequence[Rule] | None = None,
) -> list[LintViolation]:
    """Lint a source string as if it lived at ``relpath`` under the root
    — the unit-test entry point for single-rule assertions."""
    rel = Path(relpath)
    parts = list(rel.with_suffix("").parts)
    is_package = parts[-1] == "__init__"
    if is_package:
        parts = parts[:-1]
    module = ModuleInfo(
        path=rel,
        relpath=rel.as_posix(),
        module=".".join(parts),
        package=parts[1] if len(parts) >= 2 else "<top>",
        is_package=is_package,
        tree=ast.parse(source, filename=relpath),
        source=source,
        lines=source.splitlines(),
    )
    engine = LintEngine([], rules=rules)
    kept, _suppressed = engine._check_module(module)
    return sorted(kept, key=sort_key)
