"""API-hygiene rules: mutable default arguments and bare ``except``.

Mutable defaults alias state across calls — in a codebase whose tests
replay identical scenarios back-to-back, a leaked default list is a
determinism bug wearing an API-design hat.  Bare ``except`` swallows
``KeyboardInterrupt``/``SystemExit`` and, worse here, the
:class:`~repro.verify.report.InvariantViolation` batches the
verification layer raises through hot paths.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..modules import ModuleInfo
from ..violations import LintViolation
from . import Rule

_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, (ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CALLS
    return False


class MutableDefaultRule(Rule):
    rule_id = "api-mutable-default"
    family = "api"
    citation = "shared-state defaults break replay isolation"
    description = "mutable default argument"

    def check(self, module: ModuleInfo) -> Iterator[LintViolation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                default
                for default in node.args.kw_defaults
                if default is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    yield self.violation(
                        module,
                        default,
                        f"mutable default argument in `{node.name}()`; "
                        "default to None and create the container inside",
                    )


class BareExceptRule(Rule):
    rule_id = "api-bare-except"
    family = "api"
    citation = (
        "bare except swallows InvariantViolation and KeyboardInterrupt"
    )
    description = "bare `except:` clause"

    def check(self, module: ModuleInfo) -> Iterator[LintViolation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.violation(
                    module,
                    node,
                    "bare `except:`; name the exception type (it would "
                    "swallow InvariantViolation batches and Ctrl-C alike)",
                )
