"""Hook-discipline rules.

The tracing and verification layers hang off single module-level slots
(``repro.trace.hooks.ACTIVE``, ``repro.verify.hooks.ACTIVE``) so that
hot paths pay one attribute load per session when observability is off.
Two source patterns break that contract:

* importing anything other than the ``hooks`` module itself from
  ``repro.trace`` / ``repro.verify`` at module level — binding ``ACTIVE``
  or a context class snapshots the slot, and importing checkers/oracle/
  golden drags protocol code into hot imports (they are lazy by design);
* calling through the slot without a ``None`` guard — the zero-overhead
  "off" state *is* ``None``, so an unguarded call crashes the first
  untraced run.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..config import HOT_PACKAGES, SLOT_ATTRIBUTE, SLOT_MODULES
from ..modules import ModuleInfo, eager_imports
from ..violations import LintViolation
from . import Rule

_HOOK_PACKAGES = ("repro.trace", "repro.verify")


class HookEagerImportRule(Rule):
    """Hot-path modules may import exactly the slot modules — as modules
    (``from ..trace import hooks as _trace_hooks``), never names out of
    them."""

    rule_id = "hook-eager-import"
    family = "hooks"
    citation = (
        "zero-overhead module-slot hooks (repro.trace.hooks, "
        "repro.verify.hooks docstrings)"
    )
    description = (
        "eager import from repro.trace/repro.verify other than the hooks "
        "module itself"
    )

    def check(self, module: ModuleInfo) -> Iterator[LintViolation]:
        if module.package not in HOT_PACKAGES:
            return
        for imported in eager_imports(module):
            target = imported.target
            if not target.startswith(_HOOK_PACKAGES):
                continue
            if isinstance(imported.node, ast.Import):
                if target in SLOT_MODULES:
                    continue  # `import repro.trace.hooks` keeps module access
            elif target in _HOOK_PACKAGES and all(
                name == "hooks" for name in imported.names
            ):
                continue  # `from ..trace import hooks [as _trace_hooks]`
            if target in SLOT_MODULES:
                detail = (
                    "binds names out of the hooks module; import the module "
                    "itself so ACTIVE is read through the live slot"
                )
            else:
                detail = (
                    "drags non-hook trace/verify code into a hot-path "
                    "import; checkers, oracle, and golden load lazily by "
                    "design"
                )
            yield self.violation(
                module,
                imported.node,
                f"eager import of `{target}` from `{module.module}` {detail}",
            )


def _none_guard_names(function: ast.AST) -> set[str]:
    """Names the function None-tests anywhere (``x is None`` /
    ``x is not None`` / ``if x`` / ``if not x`` / ``while x``)."""
    guarded: set[str] = set()
    for node in ast.walk(function):
        if isinstance(node, ast.Compare):
            operands = [node.left, *node.comparators]
            has_none = any(
                isinstance(op, ast.Constant) and op.value is None
                for op in operands
            )
            if has_none and any(
                isinstance(op, (ast.Is, ast.IsNot)) for op in node.ops
            ):
                for operand in operands:
                    if isinstance(operand, ast.Name):
                        guarded.add(operand.id)
        elif isinstance(node, (ast.If, ast.While, ast.IfExp)):
            test = node.test
            if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
                test = test.operand
            if isinstance(test, ast.Name):
                guarded.add(test.id)
    return guarded


def _functions(tree: ast.Module) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


class HookUnguardedRule(Rule):
    """Every read of a hook slot must land in a local that is
    ``None``-guarded before use; calling straight through
    ``hooks.ACTIVE.method(...)`` crashes every un-instrumented run."""

    rule_id = "hook-unguarded"
    family = "hooks"
    citation = "None is the zero-overhead off state (repro.trace.hooks)"
    description = "use of a hook slot without a None guard"

    def check(self, module: ModuleInfo) -> Iterator[LintViolation]:
        for function in _functions(module.tree):
            yield from self._check_function(module, function)

    def _check_function(
        self, module: ModuleInfo, function: ast.AST
    ) -> Iterator[LintViolation]:
        slot_vars: set[str] = set()
        for node in ast.walk(function):
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Attribute
            ):
                if node.value.attr == SLOT_ATTRIBUTE:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            slot_vars.add(target.id)
        guarded = _none_guard_names(function)
        unguarded = slot_vars - guarded
        for node in ast.walk(function):
            # Direct chain: hooks.ACTIVE.method(...) — never guardable.
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Attribute)
                and node.value.attr == SLOT_ATTRIBUTE
                and isinstance(node.value.ctx, ast.Load)
            ):
                yield self.violation(
                    module,
                    node,
                    f"direct use of `{SLOT_ATTRIBUTE}.{node.attr}` without "
                    "a None guard; read the slot into a local and test "
                    "`is not None` first",
                )
            # Attribute use (or call) of a slot-assigned local in a
            # function that never None-tests it.
            elif (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id in unguarded
                and isinstance(node.ctx, ast.Load)
            ):
                yield self.violation(
                    module,
                    node,
                    f"`{node.value.id}` holds a hook slot read but is "
                    "never None-guarded in this function; the off state "
                    "is None",
                )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in unguarded
            ):
                yield self.violation(
                    module,
                    node,
                    f"`{node.func.id}` holds a hook slot read but is "
                    "called without a None guard; the off state is None",
                )
