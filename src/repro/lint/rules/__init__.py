"""Rule registry: one class per enforced pattern, grouped in families.

A rule is a stateless visitor over one parsed module; it yields
:class:`~repro.lint.violations.LintViolation` records and never mutates
anything.  Families mirror the four runtime disciplines plus API
hygiene:

``determinism``
    wall clocks, global/unseeded RNGs, OS entropy, set-iteration order
    (docs/VERIFY.md, docs/OBSERVABILITY.md);
``hooks``
    the zero-overhead module-slot discipline of ``repro.trace.hooks`` /
    ``repro.verify.hooks``;
``layering``
    the DESIGN.md §3 dependency direction;
``fork``
    picklability and ``__slots__`` across the ``ParallelRunner`` fork
    boundary (docs/PERFORMANCE.md);
``api``
    mutable default arguments, bare ``except``;
``flow``
    the CFG/dataflow rules of :mod:`repro.lint.flow` — await-
    interleaving races, dropped coroutines, RNG seed taint, and
    resource leaks (docs/STATIC_ANALYSIS.md "Flow rules").
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..modules import ModuleInfo
from ..violations import ERROR, LintViolation


class Rule:
    """Base class: subclasses set the metadata and implement
    :meth:`check`."""

    rule_id: str = ""
    family: str = ""
    severity: str = ERROR
    citation: str = ""
    description: str = ""

    def check(self, module: ModuleInfo) -> Iterator[LintViolation]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def violation(
        self, module: ModuleInfo, node: ast.AST, message: str
    ) -> LintViolation:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return LintViolation(
            rule=self.rule_id,
            severity=self.severity,
            discipline=self.family,
            citation=self.citation,
            path=module.relpath,
            line=line,
            col=col,
            message=message,
            source=module.source_line(line),
        )


def all_rules() -> list[Rule]:
    """Every shipped rule, instantiated, in stable id order."""
    from .determinism import (
        ModuleRngStateRule,
        SetIterationOrderRule,
        UnseededRandomRule,
        UrandomOutsideCryptoRule,
        WallClockRule,
    )
    from .forksafety import ForkSlotsRule, ForkUnpicklableRule
    from .hookdiscipline import HookEagerImportRule, HookUnguardedRule
    from .hygiene import BareExceptRule, MutableDefaultRule
    from .layering import LayeringImportRule
    from ..flow.rules_flow import (
        AwaitInterleavingRaceRule,
        DroppedCoroutineRule,
        ResourceLeakRule,
        SeedTaintRule,
    )

    rules: list[Rule] = [
        WallClockRule(),
        UnseededRandomRule(),
        ModuleRngStateRule(),
        UrandomOutsideCryptoRule(),
        SetIterationOrderRule(),
        HookEagerImportRule(),
        HookUnguardedRule(),
        LayeringImportRule(),
        ForkUnpicklableRule(),
        ForkSlotsRule(),
        MutableDefaultRule(),
        BareExceptRule(),
        AwaitInterleavingRaceRule(),
        DroppedCoroutineRule(),
        SeedTaintRule(),
        ResourceLeakRule(),
    ]
    return sorted(rules, key=lambda rule: rule.rule_id)


def select_rules(patterns: list[str] | None) -> list[Rule]:
    """Rules whose id or family matches one of ``patterns`` (all rules
    when ``patterns`` is falsy)."""
    rules = all_rules()
    if not patterns:
        return rules
    wanted = {pattern.strip() for pattern in patterns if pattern.strip()}
    selected = [
        rule
        for rule in rules
        if rule.rule_id in wanted or rule.family in wanted
    ]
    unknown = wanted - {rule.rule_id for rule in rules} - {
        rule.family for rule in rules
    }
    if unknown:
        raise ValueError(f"unknown rule or family: {', '.join(sorted(unknown))}")
    return selected
