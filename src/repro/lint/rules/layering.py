"""Layering rule: the DESIGN.md §3 dependency direction, as an import
DAG check.

Protocol layers (``core``/``keytree``/``alm``/``crypto``/``net``) must
not import orchestration layers (``sim``/``distributed``/
``experiments``/``trace``/``verify``): the paper's contribution has to
stay runnable — and testable — without the simulator, the distributed
harness, or the observability stack.  The full package->forbidden map
lives in :data:`repro.lint.config.LAYER_FORBIDDEN`; the hook slot
modules are the one sanctioned crossing.
"""

from __future__ import annotations

from typing import Iterator

from ..config import LAYER_FORBIDDEN, SLOT_MODULES
from ..modules import ModuleInfo, eager_imports
from ..violations import LintViolation
from . import Rule


class LayeringImportRule(Rule):
    rule_id = "layering-import"
    family = "layering"
    citation = "DESIGN.md §3 module inventory (dependency direction)"
    description = (
        "eager import from a forbidden layer (see "
        "repro.lint.config.LAYER_FORBIDDEN)"
    )

    def check(self, module: ModuleInfo) -> Iterator[LintViolation]:
        forbidden = LAYER_FORBIDDEN.get(module.package)
        if not forbidden:
            return
        for imported in eager_imports(module):
            target = imported.target
            if not target.startswith("repro.") or target in SLOT_MODULES:
                continue
            target_package = target.split(".")[1]
            if target_package not in forbidden:
                continue
            # `from ..trace import hooks` resolves to the package; the
            # bound name decides whether it is the sanctioned slot import.
            if (
                f"{target}.hooks" in SLOT_MODULES
                and imported.names
                and all(name == "hooks" for name in imported.names)
            ):
                continue
            yield self.violation(
                module,
                imported.node,
                f"`{module.package}` must not import `{target_package}` "
                f"(got `{target}`): protocol layers stay independent of "
                "orchestration layers",
            )
