"""Determinism rules.

Every replay artifact in this reproduction — golden traces, the
fixed-seed differential oracle, bitwise perf equivalence — is a promise
that the same seed produces the same bytes.  These rules catch the
source patterns that silently break it: wall-clock reads, process-global
or OS-entropy-seeded RNGs, and set iteration on protocol paths.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..config import (
    ENTROPY_PACKAGES,
    GLOBAL_NP_RANDOM_FUNCS,
    GLOBAL_RANDOM_FUNCS,
    PROTOCOL_PACKAGES,
    RNG_CONSTRUCTORS,
    WALL_CLOCK_ALLOWED,
    WALL_CLOCK_CALLS,
)
from ..modules import ModuleInfo, flatten_attribute
from ..violations import LintViolation
from . import Rule


def _module_imports(module: ModuleInfo, name: str) -> bool:
    """Does the module ``import name`` (or ``import name as ...``)
    anywhere?  Used to tell the stdlib ``random`` module apart from a
    local variable that happens to share the name."""
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == name or alias.name.startswith(name + "."):
                    return True
    return False


class WallClockRule(Rule):
    """No ``time.time`` / ``time.monotonic`` / ``datetime.now`` (and
    kin): simulated time is the only clock protocol code may read, and
    report timing must go through an injectable ``time.perf_counter``
    (see ``repro.experiments.report``)."""

    rule_id = "determinism-wall-clock"
    family = "determinism"
    citation = "byte-deterministic replays (docs/OBSERVABILITY.md, docs/VERIFY.md)"
    description = (
        "wall-clock read; use simulated time, or an injectable "
        "time.perf_counter clock for report timing"
    )

    def check(self, module: ModuleInfo) -> Iterator[LintViolation]:
        if module.relpath in WALL_CLOCK_ALLOWED:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = flatten_attribute(node.func)
            if dotted in WALL_CLOCK_CALLS:
                yield self.violation(
                    module,
                    node,
                    f"wall-clock read `{dotted}()` — nondeterministic "
                    "input to a byte-deterministic pipeline; route timing "
                    "through an injectable time.perf_counter clock",
                )


class UnseededRandomRule(Rule):
    """No process-global or entropy-seeded RNGs: every random draw must
    come from a ``random.Random(seed)`` / ``np.random.default_rng(seed)``
    instance threaded from the scenario seed."""

    rule_id = "determinism-unseeded-rng"
    family = "determinism"
    citation = "fixed-seed oracle suite (docs/VERIFY.md)"
    description = (
        "global random.* call, unseeded Random()/default_rng(), or "
        "np.random global-state function"
    )

    def check(self, module: ModuleInfo) -> Iterator[LintViolation]:
        has_random = _module_imports(module, "random")
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = flatten_attribute(node.func)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if (
                has_random
                and len(parts) == 2
                and parts[0] == "random"
                and parts[1] in GLOBAL_RANDOM_FUNCS
            ):
                yield self.violation(
                    module,
                    node,
                    f"`{dotted}()` uses the process-global RNG; draw from "
                    "a random.Random(seed) threaded from the scenario seed",
                )
            elif dotted == "random.Random" and not node.args and not node.keywords:
                yield self.violation(
                    module,
                    node,
                    "`random.Random()` without a seed draws from OS "
                    "entropy; pass the scenario seed",
                )
            elif (
                parts[-2:] == ["random", "default_rng"]
                and not node.args
                and not node.keywords
            ):
                yield self.violation(
                    module,
                    node,
                    "`default_rng()` without a seed draws from OS entropy; "
                    "pass the scenario seed",
                )
            elif (
                len(parts) >= 3
                and parts[-2] == "random"
                and parts[0] in ("np", "numpy")
                and parts[-1] in GLOBAL_NP_RANDOM_FUNCS
            ):
                yield self.violation(
                    module,
                    node,
                    f"`{dotted}()` touches numpy's global RNG state; use "
                    "a np.random.default_rng(seed) Generator",
                )


def _module_level_calls(tree: ast.Module) -> Iterator[ast.Call]:
    """Every ``Call`` node that executes at import time: module body and
    class bodies, but nothing inside a function or lambda (those run per
    call, where a locally constructed Generator is the sanctioned
    idiom)."""

    def walk(node: ast.AST) -> Iterator[ast.Call]:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            if isinstance(child, ast.Call):
                yield child
            yield from walk(child)

    yield from walk(tree)


class ModuleRngStateRule(Rule):
    """No RNG instances at module scope: a module-global Generator —
    *seeded or not* — is one shared stream for the whole process, so a
    draw in one scenario shifts what every later scenario sees.  Build
    the Generator inside the scenario from its seed instead."""

    rule_id = "determinism-module-rng"
    family = "determinism"
    citation = "fixed-seed oracle suite (docs/VERIFY.md)"
    description = (
        "RNG instance constructed at module level (process-shared stream)"
    )

    def check(self, module: ModuleInfo) -> Iterator[LintViolation]:
        for node in _module_level_calls(module.tree):
            dotted = flatten_attribute(node.func)
            if dotted in RNG_CONSTRUCTORS:
                yield self.violation(
                    module,
                    node,
                    f"`{dotted}(...)` at module level creates a process-"
                    "shared random stream; scenarios drawing from it "
                    "perturb each other — construct the generator inside "
                    "the scenario from its seed",
                )


class UrandomOutsideCryptoRule(Rule):
    """OS entropy is for real keys only: ``os.urandom`` /
    ``random.SystemRandom`` outside ``repro.crypto`` makes a scenario
    unreplayable."""

    rule_id = "determinism-urandom"
    family = "determinism"
    citation = "repro.crypto is the entropy boundary (DESIGN.md §3)"
    description = "os.urandom / SystemRandom outside repro.crypto"

    def check(self, module: ModuleInfo) -> Iterator[LintViolation]:
        if module.package in ENTROPY_PACKAGES:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = flatten_attribute(node.func)
            if dotted == "os.urandom" or (
                dotted is not None and dotted.endswith("SystemRandom")
            ):
                yield self.violation(
                    module,
                    node,
                    f"`{dotted}` reads OS entropy outside repro.crypto; "
                    "protocol code must be a deterministic function of "
                    "its seed",
                )


def _is_set_expression(node: ast.expr) -> bool:
    if isinstance(node, ast.Set):
        return True
    if isinstance(node, ast.SetComp):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # set algebra (a | b, a - b, ...) — only flag when a side is
        # syntactically a set, otherwise this matches integer arithmetic.
        return _is_set_expression(node.left) or _is_set_expression(node.right)
    return False


class SetIterationOrderRule(Rule):
    """Iterating a set in a protocol package feeds hash-randomized order
    into paths whose outputs are order-sensitive (golden traces, rekey
    message layout).  Dicts are fine — insertion order is guaranteed —
    so the fix is usually ``sorted(...)`` or keeping a dict."""

    rule_id = "determinism-set-order"
    family = "determinism"
    citation = "ordering-sensitive protocol output (docs/OBSERVABILITY.md)"
    description = "iteration over a set in a protocol package"

    def check(self, module: ModuleInfo) -> Iterator[LintViolation]:
        if module.package not in PROTOCOL_PACKAGES:
            return
        for node in ast.walk(module.tree):
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iters.extend(gen.iter for gen in node.generators)
            for candidate in iters:
                if _is_set_expression(candidate):
                    yield self.violation(
                        module,
                        candidate,
                        "iterating a set yields hash-randomized order on a "
                        "protocol path; wrap in sorted(...) or keep an "
                        "insertion-ordered dict",
                    )
