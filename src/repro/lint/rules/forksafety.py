"""Fork-safety rules.

:class:`repro.experiments.parallel.ParallelRunner` fans tasks over a
``fork``-based process pool; results and exceptions cross the boundary
by pickle.  A lambda or nested function handed to ``.map`` works in the
serial degradation path and then dies with ``PicklingError`` the first
time the pool actually forks — the classic "passes on my laptop" bug.
Classes that live on the boundary should also declare ``__slots__``:
per-instance dicts cost pickle bytes and memory at the paper's
1024-member scale (``Span`` already follows this).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..config import FORK_BOUNDARY_MODULES, FORK_SUBMIT_ATTRS
from ..modules import ModuleInfo
from ..violations import WARNING, LintViolation
from . import Rule


def _nested_defs(function: ast.AST) -> set[str]:
    """Names of functions defined *inside* ``function`` (one level is
    enough: any nesting makes them unpicklable)."""
    nested: set[str] = set()
    for node in ast.walk(function):
        if node is function:
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            nested.add(node.name)
    return nested


class ForkUnpicklableRule(Rule):
    rule_id = "fork-unpicklable"
    family = "fork"
    citation = "ParallelRunner fork boundary (docs/PERFORMANCE.md)"
    description = (
        "lambda or nested function submitted to a worker pool .map()"
    )

    def check(self, module: ModuleInfo) -> Iterator[LintViolation]:
        scopes: list[ast.AST] = [module.tree]
        scopes.extend(
            node
            for node in ast.walk(module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        for scope in scopes:
            nested = (
                _nested_defs(scope) if scope is not module.tree else set()
            )
            for node in ast.walk(scope):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in FORK_SUBMIT_ATTRS
                ):
                    continue
                candidates = list(node.args) + [
                    kw.value for kw in node.keywords
                ]
                for argument in candidates:
                    if isinstance(argument, ast.Lambda):
                        yield self.violation(
                            module,
                            argument,
                            "lambda submitted to a worker-pool map(); "
                            "lambdas do not pickle across fork — use a "
                            "module-level callable",
                        )
                    elif (
                        isinstance(argument, ast.Name)
                        and argument.id in nested
                    ):
                        yield self.violation(
                            module,
                            argument,
                            f"nested function `{argument.id}` submitted to "
                            "a worker-pool map(); closures do not pickle "
                            "across fork — hoist it to module level",
                        )


def _declares_slots(cls: ast.ClassDef) -> bool:
    for statement in cls.body:
        if isinstance(statement, ast.Assign):
            for target in statement.targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
        elif isinstance(statement, ast.AnnAssign):
            target = statement.target
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    for decorator in cls.decorator_list:
        if isinstance(decorator, ast.Call):
            name = decorator.func
            dotted = (
                name.id
                if isinstance(name, ast.Name)
                else name.attr
                if isinstance(name, ast.Attribute)
                else ""
            )
            if dotted == "dataclass":
                for keyword in decorator.keywords:
                    if (
                        keyword.arg == "slots"
                        and isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is True
                    ):
                        return True
    return False


def _is_exception_class(cls: ast.ClassDef) -> bool:
    for base in cls.bases:
        name = (
            base.id
            if isinstance(base, ast.Name)
            else base.attr
            if isinstance(base, ast.Attribute)
            else ""
        )
        if name in ("Exception", "BaseException") or name.endswith(
            ("Error", "Exception", "Warning")
        ):
            return True
    return False


class ForkSlotsRule(Rule):
    rule_id = "fork-slots"
    family = "fork"
    severity = WARNING
    citation = (
        "fork-boundary payload size (docs/PERFORMANCE.md; Span in "
        "repro.trace.spans is the template)"
    )
    description = (
        "class in a fork-boundary module without __slots__ "
        "(exception classes exempt — BaseException carries a dict)"
    )

    def check(self, module: ModuleInfo) -> Iterator[LintViolation]:
        if module.relpath not in FORK_BOUNDARY_MODULES:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if _is_exception_class(node):
                continue
            if not _declares_slots(node):
                yield self.violation(
                    module,
                    node,
                    f"class `{node.name}` crosses (or carries payloads "
                    "across) the fork boundary without __slots__; declare "
                    "them (or dataclass(slots=True))",
                )
