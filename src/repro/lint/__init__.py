"""Project-specific static analysis: the runtime disciplines, enforced
at commit time.

PRs 1–4 built four disciplines the reproduction depends on — byte-
deterministic replays (golden traces, the fixed-seed differential
oracle), zero-overhead-off module-slot hooks, the DESIGN.md layering
direction, and fork-safe parallel payloads — and enforced them at
*runtime*.  This package enforces them *statically*: an AST pass over
``src/repro`` with one rule family per discipline (plus API hygiene),
structured :class:`~repro.lint.violations.LintViolation` reports
mirroring ``repro.verify``'s shape, inline suppressions that require a
justification, and a committed baseline for grandfathered findings.

Entry points:

* ``python tools/lint.py`` — the gate (exit 2 on any new violation);
* ``pytest -q -m lint`` — the conformance lane (rule fixtures, canaries,
  baseline/suppression mechanics);
* :func:`check_source` — lint a snippet in-process (used by the tests).

The catalog, suppression policy, and baseline workflow are documented in
``docs/STATIC_ANALYSIS.md``.  Like ``repro.verify.report``, this package
imports nothing from the rest of ``repro`` — it must be able to analyse
a tree it could never import.
"""

from __future__ import annotations

from .baseline import Baseline
from .engine import LintEngine, LintResult, check_source
from .rules import Rule, all_rules, select_rules
from .violations import ERROR, WARNING, LintViolation

__all__ = [
    "Baseline",
    "ERROR",
    "LintEngine",
    "LintResult",
    "LintViolation",
    "Rule",
    "WARNING",
    "all_rules",
    "check_source",
    "select_rules",
]
