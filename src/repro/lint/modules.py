"""Parsed-module model and shared AST helpers for the rule visitors."""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator


@dataclass(slots=True)
class ModuleInfo:
    """One parsed source module under the scanned root.

    ``relpath`` uses posix separators relative to the root (the directory
    containing the top-level ``repro`` package dir); ``module`` is the
    dotted import name (``repro.core.tmesh``; packages drop the
    ``__init__`` suffix); ``package`` is the first-level subpackage
    (``core``) or ``<top>`` for ``repro/__init__.py`` and
    ``repro/__main__.py``.
    """

    path: Path
    relpath: str
    module: str
    package: str
    is_package: bool
    tree: ast.Module
    source: str
    lines: list[str]

    def source_line(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    @classmethod
    def parse(cls, path: Path, root: Path) -> "ModuleInfo":
        rel = path.relative_to(root)
        relpath = rel.as_posix()
        parts = list(rel.with_suffix("").parts)
        is_package = parts[-1] == "__init__"
        if is_package:
            parts = parts[:-1]
        module = ".".join(parts)
        package = parts[1] if len(parts) >= 2 else "<top>"
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        return cls(
            path=path,
            relpath=relpath,
            module=module,
            package=package,
            is_package=is_package,
            tree=tree,
            source=source,
            lines=source.splitlines(),
        )


def flatten_attribute(node: ast.expr) -> str | None:
    """``a.b.c`` as ``"a.b.c"``; ``None`` when the chain is not built
    purely from names (calls, subscripts, ...)."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


@dataclass(frozen=True, slots=True)
class EagerImport:
    """One module-level import, with its target resolved to a dotted
    absolute name (relative imports resolved against the module)."""

    node: ast.stmt
    target: str                    # e.g. "repro.trace"
    names: tuple[str, ...]         # bound names for ImportFrom, () for Import


def _is_type_checking_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _resolve_relative(module: ModuleInfo, node: ast.ImportFrom) -> str:
    """Absolute dotted target of a (possibly relative) ``from`` import."""
    if node.level == 0:
        return node.module or ""
    # The package the module lives in: a package __init__ *is* its
    # package; a plain module's package is its parent.
    base = module.module.split(".")
    if not module.is_package:
        base = base[:-1]
    up = node.level - 1
    if up:
        base = base[: len(base) - up] if up <= len(base) else []
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base)


def eager_imports(module: ModuleInfo) -> Iterator[EagerImport]:
    """Module-level (eager) imports, skipping ``if TYPE_CHECKING:``
    blocks — those never execute at runtime, so they cannot violate the
    import-time disciplines.  Function-level imports are deliberately
    excluded: lazy loading is the documented escape hatch the hook and
    verification layers use to break cycles."""

    def walk(statements: list[ast.stmt]) -> Iterator[EagerImport]:
        for statement in statements:
            if isinstance(statement, ast.Import):
                for alias in statement.names:
                    yield EagerImport(statement, alias.name, ())
            elif isinstance(statement, ast.ImportFrom):
                target = _resolve_relative(module, statement)
                names = tuple(alias.name for alias in statement.names)
                yield EagerImport(statement, target, names)
            elif isinstance(statement, ast.If):
                if _is_type_checking_test(statement.test):
                    yield from walk(statement.orelse)
                else:
                    yield from walk(statement.body)
                    yield from walk(statement.orelse)
            elif isinstance(statement, ast.Try):
                yield from walk(statement.body)
                for handler in statement.handlers:
                    yield from walk(handler.body)
                yield from walk(statement.orelse)
                yield from walk(statement.finalbody)

    yield from walk(module.tree.body)
