"""Structured lint findings.

Every rule in :mod:`repro.lint.rules` reduces a broken discipline to one
or more :class:`LintViolation` records — deliberately the same shape as
:class:`repro.verify.report.ViolationReport`: which rule fired, which
discipline/citation it enforces, where, and a human-readable message.
The runtime layer reports *observed* invariant breaks; this layer reports
the *source patterns* that would eventually cause them.

This module imports nothing from the rest of the package (same leaf
discipline as ``repro.verify.report``) so tools and tests can use the
report types without dragging the engine along.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Severity levels.  Both gate ``tools/lint.py`` (a new violation of any
#: severity exits 2); the level records how certain the rule is that the
#: finding is a real discipline break rather than a smell.
ERROR = "error"
WARNING = "warning"

SEVERITIES = (ERROR, WARNING)


@dataclass(frozen=True, slots=True)
class LintViolation:
    """One discipline break, pinned to its rule, citation, and location.

    ``path`` is the file path relative to the scanned root (posix
    separators, so fingerprints are platform-stable); ``source`` is the
    stripped text of the offending line — the baseline mechanism keys on
    it so grandfathered findings survive unrelated line drift.
    """

    rule: str                 # e.g. "determinism-wall-clock"
    severity: str             # ERROR or WARNING
    discipline: str           # e.g. "determinism"
    citation: str             # which document/contract the rule enforces
    path: str                 # root-relative posix path
    line: int                 # 1-based
    col: int                  # 0-based, as reported by ast
    message: str              # human-readable description
    source: str = ""          # stripped source line

    def render(self) -> str:
        head = (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity}] {self.message}"
        )
        parts = [head, f"  discipline: {self.discipline} ({self.citation})"]
        if self.source:
            parts.append(f"  > {self.source}")
        return "\n".join(parts)

    def location(self) -> str:
        return f"{self.path}:{self.line}"


def sort_key(violation: LintViolation) -> tuple[str, int, int, str]:
    """Deterministic report order: by file, then position, then rule."""
    return (violation.path, violation.line, violation.col, violation.rule)
