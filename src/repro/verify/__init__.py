"""Pluggable invariant verification for the rekeying reproduction.

The package has three layers:

* :mod:`repro.verify.report` — structured :class:`ViolationReport` /
  :class:`InvariantViolation` records;
* :mod:`repro.verify.checkers` and :mod:`repro.verify.oracle` — the
  invariant predicates (Theorem 1, Lemmas 1-3, Definition 3, Section
  2.4) and the brute-force differential replay;
* :mod:`repro.verify.hooks` — the opt-in runtime context the hot paths
  consult (``with verification(): ...`` or ``--verify`` on the CLI).

Only the report and hook layers are imported eagerly: ``repro.core``
imports this package from inside ``tmesh``, and the checker/oracle
modules import ``repro.core`` back, so they resolve lazily on first
attribute access.
"""

from .hooks import (
    VerificationContext,
    active,
    install,
    uninstall,
    verification,
)
from .report import InvariantViolation, ViolationReport

_LAZY = {
    "Checker": "checkers",
    "ExactlyOnceChecker": "checkers",
    "ForwardPrefixChecker": "checkers",
    "KConsistencyChecker": "checkers",
    "KeyIdResolutionChecker": "checkers",
    "StreamingDeliveryChecker": "checkers",
    "TreeAgreementChecker": "checkers",
    "default_session_checkers": "checkers",
    "DifferentialOracle": "oracle",
}

__all__ = [
    "InvariantViolation",
    "ViolationReport",
    "VerificationContext",
    "active",
    "install",
    "uninstall",
    "verification",
    *_LAZY,
]


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    value = getattr(import_module(f".{module_name}", __name__), name)
    globals()[name] = value
    return value
