"""Differential oracle: replay a T-mesh session against a brute-force
reference multicast and diff the outcomes.

Theorem 1's proof argument is structural: with 1-consistent tables the
delivery tree of a multicast is *uniquely determined by the tables* —
each member has exactly one upstream forwarder, independent of network
delays.  The reference implementation below exploits that: a naive BFS
over the tables (no event queue, no heap, no fast-path tricks) computes
the same receipts, overlay edges, forwarding levels, and arrival times
that :func:`repro.core.tmesh.run_multicast` and
:class:`repro.core.tmesh.SessionPlan` produce.  Any divergence means
either the tables were not 1-consistent or an optimized runner drifted
from the paper's FORWARD semantics — exactly what a conformance gate
must catch after hot-path rewrites.

Arrival times are accumulated with the same floating-point operation
order the event loop uses (``(now + processing_delay) + delay``), so the
diff can demand bitwise equality by default.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from ..core.ids import Id
from ..core.neighbor_table import NeighborTable
from ..core.tmesh import OverlayEdge, Receipt, SessionResult
from ..net.topology import Topology
from .report import ViolationReport


class DifferentialOracle:
    """Brute-force replay + structured diff for T-mesh sessions.

    ``time_tolerance`` bounds the acceptable absolute difference in
    arrival times; the default ``0.0`` demands bitwise equality, which
    the production runners meet because both sides accumulate delays in
    the same order over the same values.
    """

    name = "differential-oracle"
    citation = "Theorem 1 (delivery-tree uniqueness)"

    def __init__(self, time_tolerance: float = 0.0):
        self.time_tolerance = time_tolerance

    # ------------------------------------------------------------------
    def reference(
        self,
        sender_table: NeighborTable,
        tables: Dict[Id, NeighborTable],
        topology: Topology,
        processing_delay: float = 0.0,
    ) -> SessionResult:
        """The naive BFS multicast over 1-consistent tables.

        Walks the unique delivery tree in breadth-first order, scanning
        every ``(i, j)`` slot with plain :meth:`NeighborTable.primary`
        calls — deliberately sharing no code with the optimized runners.
        """
        sender = sender_table.owner
        result = SessionResult(sender=sender.user_id, sender_host=sender.host)
        receipts = result.receipts
        edges = result.edges
        duplicates = result.duplicate_copies
        one_way = topology.one_way_delay
        seen = {sender.user_id}
        # (record, table, forward level, arrival time at the record)
        queue = deque([(sender, sender_table, 0, 0.0)])
        while queue:
            record, table, level, now = queue.popleft()
            if table is None:
                continue
            scheme = table.scheme
            if level >= scheme.num_digits:
                continue
            rows = (0,) if table.is_server_table else range(level, scheme.num_digits)
            base = now + processing_delay
            for i in rows:
                for j in range(scheme.base):
                    nbr = table.primary(i, j)
                    if nbr is None:
                        continue
                    arrival = base + one_way(record.host, nbr.host)
                    edges.append(
                        OverlayEdge(
                            record.user_id,
                            nbr.user_id,
                            record.host,
                            nbr.host,
                            i,
                            now,
                            arrival,
                        )
                    )
                    nbr_id = nbr.user_id
                    if nbr_id in seen:
                        # A second copy: under 1-consistency this never
                        # happens; record it so the diff (and the
                        # exactly-once checker) flags the table state.
                        duplicates[nbr_id] = duplicates.get(nbr_id, 0) + 1
                        continue
                    seen.add(nbr_id)
                    receipts[nbr_id] = Receipt(
                        nbr_id, nbr.host, arrival, i + 1, record.user_id
                    )
                    queue.append((nbr, tables.get(nbr_id), i + 1, arrival))
        return result

    # ------------------------------------------------------------------
    def diff(
        self, observed: SessionResult, reference: SessionResult
    ) -> List[str]:
        """Human-readable differences between two sessions (empty when
        they agree on receipts, edges, forwarding levels, and times)."""
        problems: List[str] = []
        tol = self.time_tolerance
        if observed.sender != reference.sender:
            problems.append(
                f"sender mismatch: {observed.sender} vs {reference.sender}"
            )
        got, want = set(observed.receipts), set(reference.receipts)
        for member in sorted(want - got):
            problems.append(f"receipt missing for {member}")
        for member in sorted(got - want):
            problems.append(f"unexpected receipt for {member}")
        for member in sorted(got & want):
            o, r = observed.receipts[member], reference.receipts[member]
            if o.forward_level != r.forward_level:
                problems.append(
                    f"{member}: forwarding level {o.forward_level} "
                    f"!= reference {r.forward_level}"
                )
            if o.upstream != r.upstream:
                problems.append(
                    f"{member}: upstream {o.upstream} != reference {r.upstream}"
                )
            if o.host != r.host:
                problems.append(
                    f"{member}: host {o.host} != reference {r.host}"
                )
            if abs(o.arrival_time - r.arrival_time) > tol:
                problems.append(
                    f"{member}: arrival {o.arrival_time!r} != reference "
                    f"{r.arrival_time!r}"
                )
        if observed.duplicate_copies != reference.duplicate_copies:
            problems.append(
                f"duplicate copies {dict(observed.duplicate_copies)} != "
                f"reference {dict(reference.duplicate_copies)}"
            )
        problems.extend(self._diff_edges(observed, reference))
        return problems

    def _diff_edges(
        self, observed: SessionResult, reference: SessionResult
    ) -> List[str]:
        def edge_key(e: OverlayEdge) -> Tuple:
            return (e.src, e.dst, e.src_host, e.dst_host, e.send_level)

        got = sorted(observed.edges, key=edge_key)
        want = sorted(reference.edges, key=edge_key)
        if len(got) != len(want):
            return [f"edge count {len(got)} != reference {len(want)}"]
        problems: List[str] = []
        tol = self.time_tolerance
        for o, r in zip(got, want):
            if edge_key(o) != edge_key(r):
                problems.append(
                    f"edge {o.src}->{o.dst}@{o.send_level} != reference "
                    f"{r.src}->{r.dst}@{r.send_level}"
                )
            elif (
                abs(o.send_time - r.send_time) > tol
                or abs(o.arrival_time - r.arrival_time) > tol
            ):
                problems.append(
                    f"edge {o.src}->{o.dst}@{o.send_level}: times "
                    f"({o.send_time!r}, {o.arrival_time!r}) != reference "
                    f"({r.send_time!r}, {r.arrival_time!r})"
                )
            if len(problems) >= 20:  # keep reports readable
                problems.append("... further edge differences suppressed")
                break
        return problems

    # ------------------------------------------------------------------
    def check(
        self,
        session: SessionResult,
        sender_table: NeighborTable,
        tables: Dict[Id, NeighborTable],
        topology: Topology,
        processing_delay: float = 0.0,
        seed: Optional[int] = None,
        repro: Optional[str] = None,
    ) -> List[ViolationReport]:
        """Replay ``session``'s inputs through the reference and report
        every divergence as a structured violation."""
        reference = self.reference(
            sender_table, tables, topology, processing_delay
        )
        return [
            ViolationReport(
                checker=self.name,
                citation=self.citation,
                detail=problem,
                seed=seed,
                repro=repro,
            )
            for problem in self.diff(session, reference)
        ]
