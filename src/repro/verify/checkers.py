"""Invariant checkers for the paper's theorems, lemmas, and definitions.

Each checker turns one of the paper's proof obligations into a runtime
predicate over live simulation state:

* :class:`ExactlyOnceChecker` — Theorem 1: with 1-consistent tables and
  no losses, every member other than the sender receives exactly one
  copy of a T-mesh multicast.
* :class:`ForwardPrefixChecker` — Lemmas 1–2: the users downstream of a
  level-``i`` member are exactly the members sharing its first ``i``
  digits.
* :class:`KConsistencyChecker` — Definition 3: every ``(i,j)``-entry
  holds ``min(K, m)`` neighbors of the right ID subtree.
* :class:`TreeAgreementChecker` — Section 2.4: the modified key tree's
  node set mirrors the ID tree induced by its users exactly.
* :class:`KeyIdResolutionChecker` — Section 2.4 / Lemma 3: the key-ID
  identification scheme makes every encryption of a rekey payload
  resolvable through the key-ID sets of the members that need it.

Checkers return lists of :class:`~repro.verify.report.ViolationReport`
(empty when the invariant holds); they never raise themselves — raising
is the hook layer's job, so callers can also use them as passive audits.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from ..core.id_tree import IdTree
from ..core.ids import Id, IdScheme
from ..core.neighbor_table import NeighborTable, check_k_consistency
from ..core.tmesh import SessionResult
from .report import ViolationReport


class Checker:
    """Base class: a named invariant with its paper citation."""

    name: str = "checker"
    citation: str = ""

    def _report(
        self,
        detail: str,
        offending: Iterable[Id] = (),
        seed: Optional[int] = None,
        repro: Optional[str] = None,
    ) -> ViolationReport:
        return ViolationReport(
            checker=self.name,
            citation=self.citation,
            detail=detail,
            offending_ids=tuple(str(i) for i in offending),
            seed=seed,
            repro=repro,
        )


# ----------------------------------------------------------------------
# Session-level checkers
# ----------------------------------------------------------------------
class ExactlyOnceChecker(Checker):
    """Theorem 1: exactly one delivered copy per member (sender aside)."""

    name = "exactly-once"
    citation = "Theorem 1"

    def check(
        self,
        session: SessionResult,
        expected_members: Iterable[Id],
        seed: Optional[int] = None,
        repro: Optional[str] = None,
    ) -> List[ViolationReport]:
        reports: List[ViolationReport] = []
        expected = {m for m in expected_members if m != session.sender}
        received = set(session.receipts)
        missing = expected - received
        if missing:
            reports.append(
                self._report(
                    f"{len(missing)} member(s) received no copy",
                    sorted(missing),
                    seed,
                    repro,
                )
            )
        extra = received - expected
        if extra:
            reports.append(
                self._report(
                    f"{len(extra)} non-member(s) received the message",
                    sorted(extra),
                    seed,
                    repro,
                )
            )
        duplicated = {m: c for m, c in session.duplicate_copies.items() if c}
        if duplicated:
            worst = max(duplicated.values())
            reports.append(
                self._report(
                    f"{len(duplicated)} member(s) received duplicate copies "
                    f"(up to {worst} extra)",
                    sorted(duplicated),
                    seed,
                    repro,
                )
            )
        return reports


class ForwardPrefixChecker(Checker):
    """Lemmas 1–2: downstream users of a level-``i`` member are exactly
    the members sharing its first ``i`` digits.

    Under a lossy transport only Lemma 1 (downstream ⇒ prefix sharer)
    remains a theorem — subtrees behind a dropped copy are missing, so
    Lemma 2's converse is checked only when ``lossless=True``.

    Fast path.  The reference sweep below is O(members · edges) for
    Lemma 1 plus O(members²) for Lemma 2 — fine at the paper's 1024,
    prohibitive at the scale ladder's 10k rung.  :meth:`check` first
    tries to *prove the session clean* with vectorized aggregates over
    bit-packed ID codes (:meth:`_fast_clean`):

    * every delivery-tree edge's child strictly deepens level and shares
      the parent's level-prefix — by induction along root-to-leaf paths
      this implies Lemma 1 for every (member, descendant) pair;
    * per member, the delivery subtree size minus one equals the count
      of *other* receipt holders sharing its level-prefix — combined
      with Lemma 1 (inclusion) equal cardinality forces set equality,
      which is Lemma 2.

    A clean fast verdict is therefore exactly the reference sweep's
    clean verdict.  Anything else — an aggregate mismatch, unpackable
    IDs, a member with several delivering edges — falls back to the
    reference sweep, so violation reports are produced by the original
    loop and stay message-identical (the same pattern as
    ``repro.net.topology.validate_rtt_matrix``).  ``force_scan=True``
    skips the fast path (used by the equivalence tests).
    """

    name = "forward-prefix"
    citation = "Lemmas 1-2"

    def check(
        self,
        session: SessionResult,
        lossless: bool = True,
        seed: Optional[int] = None,
        repro: Optional[str] = None,
        force_scan: bool = False,
    ) -> List[ViolationReport]:
        if not force_scan and self._fast_clean(session, lossless):
            return []
        return self._scan(session, lossless, seed, repro)

    def _fast_clean(self, session: SessionResult, lossless: bool) -> bool:
        """True iff the session is *provably* clean by the vectorized
        aggregates; False means "run the reference sweep", not "dirty"."""
        try:
            import numpy as np

            from ..compute.packing import MASKS, pack_id
        except ImportError:  # pragma: no cover - numpy is a hard dep
            return False
        receipts = session.receipts
        n = len(receipts)
        if n == 0:
            return True
        members = list(receipts)
        num_digits = len(members[0].digits)
        index: Dict[Id, int] = {}
        codes = np.empty(n, dtype=np.uint64)
        levels = np.empty(n, dtype=np.int64)
        for i, member in enumerate(members):
            packed = pack_id(member)
            if packed is None or packed[1] != num_digits:
                return False  # unpackable or ragged lengths: let the sweep decide
            index[member] = i
            codes[i] = packed[0]
            levels[i] = receipts[member].forward_level
        if levels.min() < 0 or levels.max() > num_digits:
            return False
        # Delivery-tree parents, derived from *edges* exactly as the
        # reference's downstream_users does: an edge is a tree edge iff
        # it is the receiver's delivering copy.
        parent = np.full(n, -1, dtype=np.int64)  # -1: no tree parent among members
        sender = session.sender
        for e in session.edges:
            receipt = receipts.get(e.dst)
            if receipt is None or receipt.upstream != e.src:
                continue
            child = index[e.dst]
            if parent[child] != -1:
                return False  # several delivering edges: not a tree, sweep decides
            if e.src == sender:
                continue  # the sender holds no receipt; no Lemma obligations
            src = index.get(e.src)
            if src is None:
                return False  # tree edge from a non-member non-sender
            parent[child] = src
        # Lemma 1, edge-locally: child deepens level and shares the
        # parent's level-prefix.  Induction extends it to all descendants.
        child_sel = np.flatnonzero(parent >= 0)
        if len(child_sel):
            par = parent[child_sel]
            deepens = levels[child_sel] > levels[par]
            shares = ((codes[child_sel] ^ codes[par]) & MASKS[levels[par]]) == 0
            if not bool(np.all(deepens & shares)):
                return False
        if not lossless:
            return True
        # Lemma 2: per member, subtree size - 1 == count of other
        # receipt holders sharing its level-prefix.  Children strictly
        # deepen levels (checked above), so accumulating in decreasing
        # level order sees every child before its parent.
        sizes = np.ones(n, dtype=np.int64)
        for i in np.argsort(levels, kind="stable")[::-1].tolist():
            p = parent[i]
            if p >= 0:
                sizes[p] += sizes[i]
        sharers = np.empty(n, dtype=np.int64)
        for level in np.unique(levels).tolist():
            sel = np.flatnonzero(levels == level)
            masked = codes & MASKS[level]
            ordered = np.sort(masked)
            own = masked[sel]
            lo = np.searchsorted(ordered, own, side="left")
            hi = np.searchsorted(ordered, own, side="right")
            sharers[sel] = (hi - lo) - 1  # excluding the member itself
        return bool(np.all(sizes - 1 == sharers))

    def _scan(
        self,
        session: SessionResult,
        lossless: bool,
        seed: Optional[int],
        repro: Optional[str],
    ) -> List[ViolationReport]:
        """The reference member-by-member sweep; the fast path's dirty
        verdicts defer here so reports never change wording."""
        reports: List[ViolationReport] = []
        receipts = session.receipts
        for member, receipt in receipts.items():
            level = receipt.forward_level
            downstream = set(session.downstream_users(member))
            for down in downstream:
                if not down.shares_prefix(member, level):
                    reports.append(
                        self._report(
                            f"{down} is downstream of level-{level} member "
                            f"{member} but does not share its first "
                            f"{level} digits",
                            (member, down),
                            seed,
                            repro,
                        )
                    )
            if not lossless:
                continue
            for other in receipts:
                if other == member or other in downstream:
                    continue
                if other.shares_prefix(member, level):
                    reports.append(
                        self._report(
                            f"{other} shares the first {level} digits of "
                            f"level-{level} member {member} but is not "
                            f"downstream of it",
                            (member, other),
                            seed,
                            repro,
                        )
                    )
        return reports


# ----------------------------------------------------------------------
# Table-level checker
# ----------------------------------------------------------------------
class KConsistencyChecker(Checker):
    """Definition 3, applied to a full set of user tables."""

    name = "k-consistency"
    citation = "Definition 3"

    def check(
        self,
        tables: Dict[Id, NeighborTable],
        id_tree: IdTree,
        k: int,
        seed: Optional[int] = None,
        repro: Optional[str] = None,
    ) -> List[ViolationReport]:
        return [
            self._report(problem, (), seed, repro)
            for problem in check_k_consistency(tables, id_tree, k)
        ]


# ----------------------------------------------------------------------
# Key-tree checkers
# ----------------------------------------------------------------------
class TreeAgreementChecker(Checker):
    """Section 2.4: the modified key tree grows horizontally with fixed
    height ``D`` and its node set equals the ID tree of its users."""

    name = "tree-agreement"
    citation = "Section 2.4"

    def check(
        self,
        key_tree,
        seed: Optional[int] = None,
        repro: Optional[str] = None,
    ) -> List[ViolationReport]:
        reports: List[ViolationReport] = []
        expected = IdTree(key_tree.scheme, key_tree.user_ids)
        key_nodes = set(key_tree.node_ids())
        id_nodes = set(expected.node_ids())
        ghost = key_nodes - id_nodes
        if ghost:
            reports.append(
                self._report(
                    f"{len(ghost)} key-tree node(s) have no ID-tree "
                    "counterpart",
                    sorted(ghost),
                    seed,
                    repro,
                )
            )
        missing = id_nodes - key_nodes
        if missing:
            reports.append(
                self._report(
                    f"{len(missing)} ID-tree node(s) hold no key",
                    sorted(missing),
                    seed,
                    repro,
                )
            )
        return reports


class KeyIdResolutionChecker(Checker):
    """Section 2.4 / Lemma 3: the identification scheme must let every
    member resolve the rekey payload against its key-ID set.

    Three obligations over one rekey message:

    * every encryption's ID (its encrypting key's ID) is an existing
      ID-tree node, i.e. lies in at least one member's key-ID set;
    * every encryption is needed by at least one member (no orphan
      ciphertext rides the multicast);
    * for every updated key and every member whose ID it prefixes, some
      encryption delivers that key under a key of the member's own
      key-ID set — the member can actually recover everything on its
      path.
    """

    name = "key-id-resolution"
    citation = "Section 2.4 / Lemma 3"

    def check(
        self,
        message,
        user_ids: Iterable[Id],
        scheme: IdScheme,
        seed: Optional[int] = None,
        repro: Optional[str] = None,
    ) -> List[ViolationReport]:
        reports: List[ViolationReport] = []
        users = list(user_ids)
        tree = IdTree(scheme, users)
        for enc in message.encryptions:
            if not tree.has_node(enc.encrypting_key_id):
                reports.append(
                    self._report(
                        f"encryption {enc.encrypting_key_id} is keyed by a "
                        "non-existent ID-tree node: no member's key-ID set "
                        "contains it",
                        (enc.encrypting_key_id, enc.new_key_id),
                        seed,
                        repro,
                    )
                )
            elif not any(enc.needed_by(u) for u in users):
                reports.append(
                    self._report(
                        f"encryption {enc.encrypting_key_id} is needed by "
                        "no member (orphan ciphertext)",
                        (enc.encrypting_key_id,),
                        seed,
                        repro,
                    )
                )
        # Recovery closure: every updated key reaches every member whose
        # path it lies on, through a key that member holds.
        new_keys: Set[Id] = {enc.new_key_id for enc in message.encryptions}
        by_new: Dict[Id, List[Id]] = {}
        for enc in message.encryptions:
            by_new.setdefault(enc.new_key_id, []).append(enc.encrypting_key_id)
        for key_id in sorted(new_keys, key=lambda n: (len(n), n.digits)):
            for user in users:
                if not key_id.is_prefix_of(user):
                    continue
                if not any(
                    enc_id.is_prefix_of(user) for enc_id in by_new[key_id]
                ):
                    reports.append(
                        self._report(
                            f"member {user} needs updated key {key_id} but "
                            "no encryption delivers it under a key of the "
                            "member's key-ID set",
                            (user, key_id),
                            seed,
                            repro,
                        )
                    )
        return reports


class StreamingDeliveryChecker(Checker):
    """Theorem 1 over a streaming rekey session's aggregates.

    The streaming path (:func:`repro.perf.scale.run_streaming_rekey`)
    never materializes per-member receipts, so the exactly-once claim is
    checked on its conservation laws: every member accounted for, one
    delivering edge per receipt, zero duplicates, and per-level receipt
    counts that sum to the total.  The member-for-member equivalence
    with the dense path is enforced separately through the canonical
    receipt digest (:mod:`repro.compute.arraytable`).
    """

    name = "streaming-delivery"
    citation = "Theorem 1"

    def check(
        self,
        summary,
        expected_members: Optional[int] = None,
        seed: Optional[int] = None,
        repro: Optional[str] = None,
    ) -> List[ViolationReport]:
        reports: List[ViolationReport] = []
        if expected_members is not None and summary.num_members != expected_members:
            reports.append(
                self._report(
                    f"summary covers {summary.num_members} member(s), "
                    f"expected {expected_members}",
                    (),
                    seed,
                    repro,
                )
            )
        if summary.num_receipts != summary.num_members:
            reports.append(
                self._report(
                    f"{summary.num_receipts} receipt(s) for "
                    f"{summary.num_members} member(s)",
                    (),
                    seed,
                    repro,
                )
            )
        if summary.num_duplicates:
            reports.append(
                self._report(
                    f"{summary.num_duplicates} duplicate copies delivered",
                    (),
                    seed,
                    repro,
                )
            )
        if summary.num_edges != summary.num_receipts:
            reports.append(
                self._report(
                    f"{summary.num_edges} delivering edge(s) for "
                    f"{summary.num_receipts} receipt(s)",
                    (),
                    seed,
                    repro,
                )
            )
        if sum(summary.level_counts) != summary.num_receipts:
            reports.append(
                self._report(
                    f"per-level counts sum to {sum(summary.level_counts)}, "
                    f"not {summary.num_receipts}",
                    (),
                    seed,
                    repro,
                )
            )
        if summary.level_counts and summary.level_counts[0]:
            reports.append(
                self._report(
                    f"{summary.level_counts[0]} receipt(s) at forwarding "
                    "level 0 (only the sender may sit there)",
                    (),
                    seed,
                    repro,
                )
            )
        return reports


def default_session_checkers() -> List[Checker]:
    """The checkers the hook layer runs against every observed session."""
    return [ExactlyOnceChecker(), ForwardPrefixChecker()]
