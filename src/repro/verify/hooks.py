"""Hook layer: opt-in runtime verification with zero overhead when off.

A single module-level slot, :data:`ACTIVE`, holds the installed
:class:`VerificationContext` (or ``None``).  Instrumented call sites —
:func:`repro.core.tmesh.run_multicast`, :class:`repro.core.tmesh.
SessionPlan`, :class:`repro.distributed.harness.DistributedGroup`,
:func:`repro.experiments.common.build_group` — read the slot once per
session/group and do nothing further when it is ``None``, so the bench
lane pays one attribute load per *session*, never per event.

Typical use::

    from repro.verify import verification

    with verification(seed=7) as ctx:
        run_latency_experiment(...)        # every session auto-checked
    print(ctx.sessions_checked)

or, for CLI surfaces, ``python -m repro fig 7 --verify``.

Checker and oracle modules are imported lazily inside the context so the
hot modules can import this one without dragging protocol code along
(and without import cycles).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional

from .report import InvariantViolation, ViolationReport

#: The installed context; hot paths read this directly.
ACTIVE: Optional["VerificationContext"] = None


def active() -> Optional["VerificationContext"]:
    """The installed :class:`VerificationContext`, or ``None``."""
    return ACTIVE


def install(context: "VerificationContext") -> "VerificationContext":
    """Install a context; raises if one is already active."""
    global ACTIVE
    if ACTIVE is not None:
        raise RuntimeError("a VerificationContext is already installed")
    ACTIVE = context
    return context


def uninstall() -> None:
    global ACTIVE
    ACTIVE = None


@contextmanager
def verification(**kwargs) -> Iterator["VerificationContext"]:
    """``with verification(...):`` — install a fresh context for the
    duration of the block."""
    context = install(VerificationContext(**kwargs))
    try:
        yield context
    finally:
        uninstall()


class VerificationContext:
    """Runs the checker suite against everything the hooks observe.

    ``seed`` tags every report (sessions themselves are deterministic
    functions of their scenario seed, so the tag is the repro key);
    ``oracle=True`` additionally replays each fault-free session against
    :class:`~repro.verify.oracle.DifferentialOracle`'s brute-force
    reference.  ``raise_on_violation=False`` turns the context into a
    passive collector (reports accumulate in :attr:`reports`).
    """

    def __init__(
        self,
        seed: Optional[int] = None,
        oracle: bool = True,
        raise_on_violation: bool = True,
        repro_hint: Optional[str] = None,
        time_tolerance: float = 0.0,
    ):
        from .checkers import (
            ExactlyOnceChecker,
            ForwardPrefixChecker,
            KConsistencyChecker,
            KeyIdResolutionChecker,
            StreamingDeliveryChecker,
            TreeAgreementChecker,
        )
        from .oracle import DifferentialOracle

        self.seed = seed
        self.raise_on_violation = raise_on_violation
        self.repro_hint = repro_hint
        self.reports: List[ViolationReport] = []
        self.sessions_checked = 0
        self.groups_checked = 0
        self.rekeys_checked = 0
        self.worlds_checked = 0
        self._exactly_once = ExactlyOnceChecker()
        self._prefix = ForwardPrefixChecker()
        self._k_consistency = KConsistencyChecker()
        self._tree_agreement = TreeAgreementChecker()
        self._key_resolution = KeyIdResolutionChecker()
        self._streaming = StreamingDeliveryChecker()
        self._oracle = (
            DifferentialOracle(time_tolerance) if oracle else None
        )

    # ------------------------------------------------------------------
    def _repro(self, what: str) -> str:
        if self.repro_hint:
            return self.repro_hint
        seed = "?" if self.seed is None else self.seed
        return (
            f"with repro.verify.verification(seed={seed}): "
            f"re-run the {what} scenario (deterministic in its seed)"
        )

    def _emit(self, reports: List[ViolationReport], context: str) -> None:
        if not reports:
            return
        self.reports.extend(reports)
        if self.raise_on_violation:
            raise InvariantViolation(reports, context)

    # ------------------------------------------------------------------
    # Observation points (called by the instrumented hot paths)
    # ------------------------------------------------------------------
    def observe_session(
        self,
        session,
        sender_table,
        tables,
        topology,
        processing_delay: float = 0.0,
        lossless: bool = True,
    ) -> None:
        """Check one finished T-mesh session.

        ``lossless=False`` marks sessions run under failures, backups, or
        an injected fault plan: there only Lemma 1 remains a theorem, so
        exactly-once, Lemma 2, and the oracle replay are skipped (NACK
        repair restores the delivery contract at the reliable layer,
        where the conformance tests assert it separately).
        """
        self.sessions_checked += 1
        repro = self._repro("session")
        reports: List[ViolationReport] = []
        if lossless:
            reports.extend(
                self._exactly_once.check(
                    session, tables.keys(), self.seed, repro
                )
            )
        reports.extend(
            self._prefix.check(session, lossless, self.seed, repro)
        )
        if lossless and self._oracle is not None:
            reports.extend(
                self._oracle.check(
                    session,
                    sender_table,
                    tables,
                    topology,
                    processing_delay,
                    self.seed,
                    repro,
                )
            )
        self._emit(reports, f"session from {session.sender}")

    def observe_streaming(
        self, summary, expected_members: Optional[int] = None
    ) -> None:
        """Check one streaming rekey session's aggregates (the scale
        ladder's array path, :func:`repro.perf.scale.run_streaming_rekey`)
        against Theorem 1's conservation laws."""
        self.sessions_checked += 1
        reports = self._streaming.check(
            summary, expected_members, self.seed, self._repro("streaming")
        )
        self._emit(
            reports, f"streaming session of {summary.num_members} member(s)"
        )

    def observe_group(self, group) -> None:
        """Check a :class:`repro.core.membership.Group`'s emergent tables
        against Definition 3."""
        self.groups_checked += 1
        reports = self._k_consistency.check(
            group.tables, group.id_tree, group.k, self.seed,
            self._repro("group"),
        )
        self._emit(reports, f"group of {group.num_users} users")

    def observe_tables(self, tables, id_tree, k: int) -> None:
        """Check a bare table set (static worlds, fixtures)."""
        self.groups_checked += 1
        reports = self._k_consistency.check(
            tables, id_tree, k, self.seed, self._repro("tables")
        )
        self._emit(reports, f"{len(tables)} neighbor tables")

    def observe_key_tree(self, key_tree) -> None:
        """Check Section 2.4's structural agreement for a modified key
        tree."""
        reports = self._tree_agreement.check(
            key_tree, self.seed, self._repro("key tree")
        )
        self._emit(reports, f"key tree of {key_tree.num_users} users")

    def observe_rekey(self, message, user_ids, scheme) -> None:
        """Check one rekey message against the identification scheme."""
        self.rekeys_checked += 1
        reports = self._key_resolution.check(
            message, user_ids, scheme, self.seed, self._repro("rekey")
        )
        self._emit(reports, f"rekey interval {message.interval}")

    def observe_distributed(self, world) -> None:
        """Check a quiescent :class:`~repro.distributed.harness.
        DistributedGroup`: emergent 1-consistency plus duplicate-free
        interval delivery."""
        self.worlds_checked += 1
        repro = self._repro("distributed")
        reports = [
            ViolationReport(
                checker="one-consistency",
                citation="Definition 3 (K=1) / Theorem 1",
                detail=problem,
                seed=self.seed,
                repro=repro,
            )
            for problem in world.check_one_consistency()
        ]
        for index in range(len(world.intervals)):
            duplicates = world.delivery_report(index)["duplicates"]
            if duplicates:
                reports.append(
                    ViolationReport(
                        checker="exactly-once",
                        citation="Theorem 1",
                        detail=(
                            f"interval {index}: duplicate rekey copies "
                            f"at {len(duplicates)} member(s)"
                        ),
                        offending_ids=tuple(
                            str(uid) for uid in sorted(duplicates)
                        ),
                        seed=self.seed,
                        repro=repro,
                    )
                )
        self._emit(reports, "distributed group")

    # ------------------------------------------------------------------
    def summary(self) -> str:
        return (
            f"verified {self.sessions_checked} session(s), "
            f"{self.groups_checked} table set(s), "
            f"{self.rekeys_checked} rekey message(s), "
            f"{self.worlds_checked} distributed world(s): "
            f"{len(self.reports)} violation(s)"
        )
