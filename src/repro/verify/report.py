"""Structured invariant-violation reports.

Every checker in :mod:`repro.verify` reduces a failed proof obligation to
one or more :class:`ViolationReport` records: which checker fired, which
paper statement it enforces, the offending IDs, the session seed, and a
minimal repro snippet.  :class:`InvariantViolation` carries a batch of
reports across any boundary — including ``fork``-based worker processes,
whose exceptions must survive a pickle round-trip intact (see
``tests/test_parallel_failures.py``).

This module deliberately imports nothing from the rest of the package so
the hot paths (``repro.core.tmesh``) can import the hook layer without
touching protocol code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple


@dataclass(frozen=True, slots=True)
class ViolationReport:
    """One broken invariant, pinned to its paper citation and context.

    ``offending_ids`` are stringified :class:`~repro.core.ids.Id` values
    (strings keep the report self-contained and trivially picklable);
    ``seed`` is the session/scenario seed when the caller knows it, and
    ``repro`` is a minimal snippet (or command line) that reproduces the
    violating scenario.
    """

    checker: str                       # e.g. "exactly-once"
    citation: str                      # e.g. "Theorem 1"
    detail: str                        # human-readable description
    offending_ids: Tuple[str, ...] = ()
    seed: Optional[int] = None
    repro: Optional[str] = None

    def render(self) -> str:
        parts = [f"[{self.checker}] ({self.citation}) {self.detail}"]
        if self.offending_ids:
            parts.append(f"  offending IDs: {', '.join(self.offending_ids)}")
        if self.seed is not None:
            parts.append(f"  seed: {self.seed}")
        if self.repro:
            parts.append(f"  repro: {self.repro}")
        return "\n".join(parts)


def _render_reports(reports: Sequence[ViolationReport], context: str) -> str:
    head = f"{len(reports)} invariant violation(s)"
    if context:
        head += f" in {context}"
    return "\n".join([head] + [r.render() for r in reports])


class InvariantViolation(Exception):
    """A batch of invariant violations, raised by the verification layer.

    The exception pickles by reconstructing itself from its reports, so a
    violation raised inside a forked :class:`~repro.experiments.parallel.
    ParallelRunner` worker reaches the parent with every report intact.
    """

    def __init__(
        self,
        reports: Iterable[ViolationReport],
        context: str = "",
    ):
        self.reports: Tuple[ViolationReport, ...] = tuple(reports)
        self.context = context
        super().__init__(_render_reports(self.reports, context))

    def __reduce__(self):
        return (type(self), (self.reports, self.context))

    @property
    def checkers(self) -> Tuple[str, ...]:
        """Names of the checkers that fired, in report order."""
        return tuple(r.checker for r in self.reports)
