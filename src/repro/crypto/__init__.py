"""Stdlib-only authenticated symmetric crypto used by the secure-group
application layer and the key trees."""

from .cipher import (
    AuthenticationError,
    auth_tag,
    decrypt,
    encrypt,
    generate_key,
    verify_tag,
)
from .keystore import KeyStore

__all__ = [
    "AuthenticationError",
    "auth_tag",
    "decrypt",
    "encrypt",
    "generate_key",
    "verify_tag",
    "KeyStore",
]
