"""Symmetric crypto primitives (stdlib-only, but real keyed crypto).

The paper treats encryption as a black box: the key server encrypts new
keys under old keys (``{k'}_k`` — an *encryption*), users and the server
encrypt unicast traffic under individual keys, and group data is encrypted
under the group key.  This module provides those operations with an
authenticated stream cipher built from SHA-256 in counter mode plus an
HMAC-SHA256 tag (encrypt-then-MAC).  It is not meant to compete with AES —
the point is that the reproduced system actually *enforces* key possession:
a member without the right key cannot read a payload, which the test suite
exercises for forward/backward secrecy of rekey batches.
"""

from __future__ import annotations

import hashlib
import hmac
import os
import struct

_TAG_LEN = 32
_NONCE_LEN = 16
_BLOCK = 32  # SHA-256 digest size


class AuthenticationError(Exception):
    """Raised when a ciphertext fails authentication (wrong key or
    tampered payload)."""


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """SHA-256 counter-mode keystream: H(key || nonce || counter)."""
    out = bytearray()
    counter = 0
    while len(out) < length:
        out.extend(
            hashlib.sha256(key + nonce + struct.pack(">Q", counter)).digest()
        )
        counter += 1
    return bytes(out[:length])


def _split_key(key: bytes) -> tuple:
    """Derive independent encryption and MAC keys from one secret."""
    enc = hashlib.sha256(b"enc" + key).digest()
    mac = hashlib.sha256(b"mac" + key).digest()
    return enc, mac


def generate_key(rng=None) -> bytes:
    """A fresh 32-byte symmetric key.

    Pass a ``numpy`` Generator (or any object with ``bytes(n)``) for
    deterministic simulation keys; defaults to ``os.urandom``.
    """
    if rng is None:
        return os.urandom(_BLOCK)
    if hasattr(rng, "bytes"):
        return rng.bytes(_BLOCK)
    raise TypeError(f"unsupported rng {rng!r}")


def encrypt(key: bytes, plaintext: bytes, rng=None) -> bytes:
    """Authenticated encryption: ``nonce || ciphertext || tag``."""
    enc_key, mac_key = _split_key(key)
    nonce = generate_key(rng)[:_NONCE_LEN]
    stream = _keystream(enc_key, nonce, len(plaintext))
    ciphertext = bytes(a ^ b for a, b in zip(plaintext, stream))
    body = nonce + ciphertext
    tag = hmac.new(mac_key, body, hashlib.sha256).digest()
    return body + tag


def decrypt(key: bytes, blob: bytes) -> bytes:
    """Inverse of :func:`encrypt`; raises :class:`AuthenticationError` on
    a wrong key or tampered blob."""
    if len(blob) < _NONCE_LEN + _TAG_LEN:
        raise AuthenticationError("ciphertext too short")
    enc_key, mac_key = _split_key(key)
    body, tag = blob[:-_TAG_LEN], blob[-_TAG_LEN:]
    expected = hmac.new(mac_key, body, hashlib.sha256).digest()
    if not hmac.compare_digest(tag, expected):
        raise AuthenticationError("bad authentication tag")
    nonce, ciphertext = body[:_NONCE_LEN], body[_NONCE_LEN:]
    stream = _keystream(enc_key, nonce, len(ciphertext))
    return bytes(a ^ b for a, b in zip(ciphertext, stream))


def auth_tag(key: bytes, message: bytes) -> bytes:
    """Plain HMAC tag — used for the mutual-authentication handshake that
    stands in for the paper's SSL step."""
    return hmac.new(_split_key(key)[1], message, hashlib.sha256).digest()


def verify_tag(key: bytes, message: bytes, tag: bytes) -> bool:
    return hmac.compare_digest(auth_tag(key, message), tag)
