"""Per-member key storage and key wrapping.

A member's key store holds the keys the paper says it holds: its
individual key, the group key, and — depending on role — auxiliary keys on
its ID-tree path, or a pairwise key with its cluster leader (Appendix B).
Keys are looked up by ``(key_id, version)``, where ``key_id`` is an
ID-tree node ID and ``version`` increments whenever the key server changes
the key at that node.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from ..core.ids import Id
from . import cipher


class KeyStore:
    """Versioned symmetric keys held by one member."""

    def __init__(self) -> None:
        self._keys: Dict[Tuple[Id, int], bytes] = {}
        self._latest: Dict[Id, int] = {}

    def put(self, key_id: Id, version: int, secret: bytes) -> None:
        self._keys[(key_id, version)] = secret
        if version >= self._latest.get(key_id, -1):
            self._latest[key_id] = version

    def get(self, key_id: Id, version: Optional[int] = None) -> bytes:
        """The secret for a key; ``version=None`` means latest held."""
        if version is None:
            version = self._latest[key_id]
        return self._keys[(key_id, version)]

    def has(self, key_id: Id, version: Optional[int] = None) -> bool:
        if version is None:
            return key_id in self._latest
        return (key_id, version) in self._keys

    def latest_version(self, key_id: Id) -> Optional[int]:
        return self._latest.get(key_id)

    def key_ids(self) -> Iterable[Id]:
        return self._latest.keys()

    def drop(self, key_id: Id) -> None:
        """Forget every version of a key (a member discards path keys it is
        no longer entitled to, e.g. after losing cluster leadership)."""
        self._latest.pop(key_id, None)
        for key in [k for k in self._keys if k[0] == key_id]:
            del self._keys[key]

    # ------------------------------------------------------------------
    # Key wrapping
    # ------------------------------------------------------------------
    def wrap(self, wrapping_id: Id, secret: bytes, rng=None) -> bytes:
        """Encrypt ``secret`` under the latest key named ``wrapping_id`` —
        produces the payload of a paper ``{k'}_k`` encryption."""
        return cipher.encrypt(self.get(wrapping_id), secret, rng=rng)

    def unwrap(self, wrapping_id: Id, version: int, blob: bytes) -> bytes:
        """Decrypt a wrapped key with the held key ``(wrapping_id,
        version)``; raises ``KeyError`` if the key is not held and
        :class:`~repro.crypto.cipher.AuthenticationError` on a mismatch."""
        return cipher.decrypt(self._keys[(wrapping_id, version)], blob)
