"""Live asyncio service mode (docs/SERVICE.md).

The protocol stack from :mod:`repro.distributed` running as a
long-lived service: the ``"asyncio"`` scheduling backend
(:mod:`repro.service.aio`), a stream transport that carries
:mod:`repro.distributed.messages` over real localhost sockets
(:mod:`repro.service.transport`), the :class:`RekeyService` server
wrapper (:mod:`repro.service.server`), and the seeded soak/chaos
harness (:mod:`repro.service.soak`) driven by ``tools/soak.py``.

Layering: this package sits *above* the protocol packages — it imports
:mod:`repro.net` and :mod:`repro.distributed`; nothing below may import
it (the ``"asyncio"`` entry in the backend registry is a lazy string,
not an import).
"""

from .aio import AsyncioScheduler, asyncio_backend
from .server import RekeyService
from .soak import PROFILES, ChurnProfile, ScrapeLoop, SoakHarness, SoakReport
from .transport import StreamTransport
from .wire import Hello, decode_body, encode_frame, read_frame

__all__ = [
    "AsyncioScheduler",
    "asyncio_backend",
    "RekeyService",
    "StreamTransport",
    "SoakHarness",
    "SoakReport",
    "ScrapeLoop",
    "ChurnProfile",
    "PROFILES",
    "Hello",
    "encode_frame",
    "decode_body",
    "read_frame",
]
