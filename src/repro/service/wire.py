"""Framing and codec for the live service's streams.

Frames are length-prefixed pickles of ``(src, dst, payload)`` triples
where ``payload`` is one of the :mod:`repro.distributed.messages`
dataclasses (or the :class:`Hello` control message an endpoint sends
first).  Decoding goes through a restricted unpickler that only resolves
names from this project, numpy, and builtins — the usual hygiene for a
pickle wire format, and a loud failure on corrupt frames.
"""

from __future__ import annotations

import asyncio
import io
import pickle
import struct
from dataclasses import dataclass
from typing import Any, Optional, Tuple

#: Frames larger than this are treated as corruption, not data.
MAX_FRAME = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")

#: Module prefixes the unpickler will resolve classes from.
ALLOWED_PREFIXES = ("repro.", "numpy", "builtins")


@dataclass(frozen=True)
class Hello:
    """First frame on every endpoint connection: which host this
    stream carries traffic for."""

    host: int


class RestrictedUnpickler(pickle.Unpickler):
    def find_class(self, module: str, name: str) -> Any:
        if module in ("numpy", "builtins") or module.startswith(
            ALLOWED_PREFIXES
        ):
            return super().find_class(module, name)
        raise pickle.UnpicklingError(
            f"frame references forbidden global {module}.{name}"
        )


def encode_frame(src: int, dst: int, payload: Any) -> bytes:
    body = pickle.dumps((src, dst, payload), protocol=4)
    if len(body) > MAX_FRAME:
        raise ValueError(f"frame of {len(body)} bytes exceeds {MAX_FRAME}")
    return _HEADER.pack(len(body)) + body


def decode_body(body: bytes) -> Tuple[int, int, Any]:
    triple = RestrictedUnpickler(io.BytesIO(body)).load()
    if not (isinstance(triple, tuple) and len(triple) == 3):
        raise pickle.UnpicklingError(f"malformed frame: {type(triple)}")
    return triple


async def read_frame(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[int, int, Any]]:
    """Read one frame; None on a clean EOF at a frame boundary."""
    try:
        header = await reader.readexactly(_HEADER.size)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise ValueError(f"frame of {length} bytes exceeds {MAX_FRAME}")
    try:
        body = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    return decode_body(body)
