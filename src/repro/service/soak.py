"""Seeded soak/chaos harness over the live service (docs/SERVICE.md).

One :class:`SoakHarness` run is a sequence of *cycles*.  Each cycle is
one rekey interval's worth of seeded workload — joins and leaves drawn
from a churn profile, optional chaos (fault-plan crash windows paired
with silent node crashes), the protocol's probe/recovery/refill rounds —
drained to quiescence.  Every ``checkpoint_every`` cycles the harness
converges (repeating recovery rounds until tables are 1-consistent and
every member holds every announced interval) and runs the
:meth:`~repro.service.server.RekeyService.checkpoint` invariant audit.
A scrape loop snapshots the metrics registry each cycle (Prometheus
text + JSONL, optionally written via :mod:`repro.metrics.export`).
The run ends with a graceful shutdown and a state snapshot; with
``restart_at_cycle`` set, the harness additionally restarts mid-run
from a live snapshot and proves the key-tree state survived
byte-identically.

Churn profiles (all rates are per-interval expectations, modulated per
cycle):

* ``steady`` — constant join/leave pressure;
* ``flash-crowd`` — a quiet baseline with 12x bursts two cycles out of
  every eight (the flash crowd arrives, then churns out);
* ``diurnal`` — a cosine day/night cycle with period 12 cycles.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..faults.plan import FaultPlan
from ..net.topology import Topology
from ..trace import hooks as _trace_hooks
from .server import RekeyService, expected_intervals


@dataclass(frozen=True)
class ChurnProfile:
    """Per-interval workload rates plus their cycle modulation."""

    name: str
    join_rate: float
    leave_rate: float
    modulation: str  # "steady" | "flash" | "diurnal"

    def multiplier(self, cycle: int) -> float:
        if self.modulation == "flash":
            return 12.0 if cycle % 8 in (3, 4) else 0.5
        if self.modulation == "diurnal":
            return 0.25 + 1.75 * (
                0.5 - 0.5 * math.cos(2.0 * math.pi * cycle / 12.0)
            )
        return 1.0


PROFILES: Dict[str, ChurnProfile] = {
    "steady": ChurnProfile("steady", 2.0, 1.5, "steady"),
    "flash-crowd": ChurnProfile("flash-crowd", 1.0, 0.8, "flash"),
    "diurnal": ChurnProfile("diurnal", 2.0, 1.8, "diurnal"),
}


class ScrapeLoop:
    """Collects live metrics snapshots from the active trace context —
    Prometheus text and normalized JSONL — and optionally writes them
    through :mod:`repro.metrics.export`.  Also the fixture the
    metrics-under-concurrency tests drive mid-session."""

    def __init__(self, out_dir: Optional[str] = None):
        self.out_dir = out_dir
        self.prometheus_snapshots: List[str] = []
        self.jsonl_snapshots: List[List[str]] = []

    def scrape(self) -> str:
        tctx = _trace_hooks.ACTIVE
        if tctx is None:
            return ""
        text = tctx.registry.to_prometheus_text()
        self.prometheus_snapshots.append(text)
        self.jsonl_snapshots.append(list(tctx.registry.jsonl_lines()))
        if self.out_dir is not None:
            from ..metrics.export import write_prometheus

            write_prometheus(
                str(Path(self.out_dir) / "metrics.prom"), tctx.registry
            )
        return text


@dataclass
class SoakReport:
    """What one soak run did and found."""

    cycles: int = 0
    joins: int = 0
    leaves: int = 0
    crashes: int = 0
    intervals: int = 0
    checkpoints: int = 0
    convergence_rounds: int = 0
    restarts: int = 0
    restart_state_match: bool = True
    events: int = 0
    frames_sent: int = 0
    frames_delivered: int = 0
    messages_sent: int = 0
    messages_dropped: int = 0
    scrapes: int = 0
    snapshot_bytes: int = 0
    active_members: int = 0
    violations: List[str] = field(default_factory=list)

    def render(self) -> str:
        lines = [
            f"cycles={self.cycles} intervals={self.intervals} "
            f"checkpoints={self.checkpoints} "
            f"(+{self.convergence_rounds} convergence rounds)",
            f"workload: {self.joins} joins, {self.leaves} leaves, "
            f"{self.crashes} crashes; {self.active_members} members active "
            f"at shutdown",
            f"engine: {self.events} events, {self.messages_sent} messages "
            f"({self.messages_dropped} dropped), "
            f"{self.frames_sent} frames over streams "
            f"({self.frames_delivered} delivered)",
            f"scrapes={self.scrapes} snapshot={self.snapshot_bytes}B "
            f"restarts={self.restarts} "
            f"restart_state_match={self.restart_state_match}",
        ]
        if self.violations:
            lines.append(f"VIOLATIONS ({len(self.violations)}):")
            lines.extend(f"  {v}" for v in self.violations)
        else:
            lines.append("zero verify violations at every checkpoint")
        return "\n".join(lines)


def chaos_plan(
    seed: int, drop_rate: float = 0.03, delay_rate: float = 0.1
) -> FaultPlan:
    """The default soak fault plan: background loss plus jittery links.
    Crash windows are added live, per cycle, by the harness (they must
    line up with the silently crashing node)."""
    plan = FaultPlan(seed=seed)
    if drop_rate > 0:
        plan.drop(rate=drop_rate)
    if delay_rate > 0:
        plan.delay(rate=delay_rate, jitter=30.0)
    return plan


class SoakHarness:
    """Drive a :class:`RekeyService` with seeded churn and chaos."""

    #: Convergence rounds per checkpoint before the audit must pass.
    MAX_CONVERGENCE_ROUNDS = 8

    def __init__(
        self,
        topology: Topology,
        server_host: int,
        seed: int = 7,
        profile: str = "steady",
        interval_ms: float = 512.0,
        checkpoint_every: int = 4,
        chaos: bool = False,
        drop_rate: float = 0.03,
        crash_every: int = 6,
        realtime: bool = True,
        time_scale: float = 1e-5,
        use_sockets: bool = True,
        scrape_dir: Optional[str] = None,
        snapshot_path: Optional[str] = None,
        restart_at_cycle: Optional[int] = None,
        metrics_http: bool = False,
    ):
        self.topology = topology
        self.server_host = server_host
        self.seed = seed
        self.profile = PROFILES[profile]
        self.interval_ms = interval_ms
        self.checkpoint_every = checkpoint_every
        self.chaos = chaos
        self.crash_every = crash_every
        self.realtime = realtime
        self.time_scale = time_scale
        self.use_sockets = use_sockets
        self.snapshot_path = snapshot_path
        self.restart_at_cycle = restart_at_cycle
        self.metrics_http = metrics_http
        self.plan = chaos_plan(seed, drop_rate=drop_rate) if chaos else None
        self.rng = np.random.default_rng(seed)
        self.scrape_loop = ScrapeLoop(scrape_dir)
        self.report = SoakReport()
        self._events_base = 0
        self.service = self._build_service(snapshot=None)

    def _build_service(self, snapshot: Optional[bytes]) -> RekeyService:
        return RekeyService(
            self.topology,
            self.server_host,
            seed=self.seed,
            fault_plan=self.plan,
            realtime=self.realtime,
            time_scale=self.time_scale,
            use_sockets=self.use_sockets,
            snapshot=snapshot,
        )

    # ------------------------------------------------------------------
    def run(
        self,
        seconds: Optional[float] = None,
        cycles: Optional[int] = None,
    ) -> SoakReport:
        """Soak until the wall-clock budget (``seconds``, measured with
        the sanctioned reporting clock) or the cycle budget runs out —
        at least one cycle always runs.  Returns the report; verify
        violations are collected per checkpoint (and also leave the run
        marked failed) rather than aborting the soak."""
        if seconds is None and cycles is None:
            cycles = 1
        service = self.service
        service.start()
        if self.metrics_http:
            service.start_metrics_http()
        started = time.perf_counter()
        cycle = 0
        while True:
            if cycles is not None and cycle >= cycles:
                break
            if (
                seconds is not None
                and cycle > 0
                and time.perf_counter() - started >= seconds
            ):
                break
            self._run_cycle(cycle)
            if (cycle + 1) % self.checkpoint_every == 0:
                self._checkpoint()
            self.report.scrapes += 1 if self.scrape_loop.scrape() else 0
            if self.restart_at_cycle == cycle:
                self._restart()
            cycle += 1
        self.report.cycles = cycle
        self._checkpoint()
        self.report.scrapes += 1 if self.scrape_loop.scrape() else 0
        self._harvest_engine_counters()
        self.report.active_members = len(self.service.world.active_users())
        blob = self.service.shutdown(self.snapshot_path)
        self.report.snapshot_bytes = len(blob)
        return self.report

    # ------------------------------------------------------------------
    def _free_hosts(self) -> List[int]:
        transport = self.service.transport
        return [
            h
            for h in range(self.topology.num_hosts)
            if h != self.server_host and transport.node_at(h) is None
        ]

    def _active_hosts(self) -> List[int]:
        return sorted(u.host for u in self.service.world.active_users())

    def _pick(self, pool: List[int], count: int) -> List[int]:
        if count <= 0 or not pool:
            return []
        count = min(count, len(pool))
        picked = self.rng.choice(len(pool), size=count, replace=False)
        return [pool[i] for i in sorted(int(i) for i in picked)]

    def _run_cycle(self, cycle: int) -> None:
        service = self.service
        interval = self.interval_ms
        mult = self.profile.multiplier(cycle)
        join_hosts = self._pick(
            self._free_hosts(), int(self.rng.poisson(self.profile.join_rate * mult))
        )
        # Bootstrap pressure: never let the group die out entirely.
        if not self._active_hosts() and not join_hosts:
            join_hosts = self._pick(self._free_hosts(), 2)
        leave_hosts = self._pick(
            self._active_hosts(),
            int(self.rng.poisson(self.profile.leave_rate * mult)),
        )
        for host in join_hosts:
            service.join(host, delay=float(self.rng.uniform(0, 0.6 * interval)))
            self.report.joins += 1
        for host in leave_hosts:
            service.leave(host, delay=float(self.rng.uniform(0, 0.6 * interval)))
            self.report.leaves += 1
        if (
            self.chaos
            and self.crash_every > 0
            and cycle % self.crash_every == self.crash_every - 1
        ):
            victims = self._pick(
                [h for h in self._active_hosts() if h not in leave_hosts], 1
            )
            for host in victims:
                at = float(self.rng.uniform(0.1 * interval, 0.5 * interval))
                # The declarative crash window makes in-flight traffic to
                # the victim drop; the scheduled detach is the crash.
                self.plan.crash(
                    host,
                    at=service.scheduler.now + at,
                    until=service.scheduler.now + at + 64 * interval,
                )
                service.crash(host, delay=at)
                self.report.crashes += 1
        service.probe_round(delay=0.7 * interval)
        service.recovery_round(delay=0.8 * interval)
        service.refill_sweep(delay=0.85 * interval)
        service.end_interval(delay=interval)
        self.report.intervals += 1
        service.drain()

    # ------------------------------------------------------------------
    def _gaps(self) -> Tuple[List[str], int]:
        """Outstanding inconsistencies: 1-consistency problems plus the
        count of members still missing announced intervals."""
        world = self.service.world
        problems = world.check_one_consistency()
        expected = expected_intervals(world)
        missing = sum(
            1
            for u in world.active_users()
            if expected.get(u.user_id, set()) - set(u.copies_received)
        )
        return problems, missing

    def _checkpoint(self) -> None:
        """Converge, then audit.  Under chaos the protocol's own repair
        machinery (probe -> failure notice -> eviction, reference-[31]
        recovery, refill sweeps) needs bounded extra rounds before the
        invariants are theorems again; each round is protocol traffic,
        not oracle intervention."""
        service = self.service
        interval = self.interval_ms
        # Convergence applies in both regimes: a join whose protocol
        # straddled an interval boundary leaves tables legitimately
        # unconverged until the next announcement; under chaos the same
        # loop also gives probe/recovery/refill repair time to land.
        # Ordering matters: any pending announcement flushes FIRST and
        # the recovery round runs after it, so the newest interval's
        # multicast — itself droppable — has its repair path inside the
        # same round (an end_interval at the tail would mint a fresh
        # announcement with no recovery behind it, and the loop would
        # chase its own gaps).  Probe evictions queued this round are
        # announced by the next round's flush.
        for _ in range(self.MAX_CONVERGENCE_ROUNDS):
            service.drain()
            problems, missing = self._gaps()
            if not problems and not missing:
                break
            self.report.convergence_rounds += 1
            server = service.world.server
            if (
                server._pending_joins
                or server._pending_leaves
                or server._pending_replacements
            ):
                service.end_interval(delay=0.05 * interval)
                self.report.intervals += 1
            service.probe_round(delay=0.1 * interval)
            service.probe_round(delay=0.4 * interval)
            service.recovery_round(delay=0.7 * interval)
            service.refill_sweep(delay=0.8 * interval)
            service.drain()
        service.drain()
        try:
            service.checkpoint()
            self.report.checkpoints += 1
        except Exception as exc:  # InvariantViolation: record, keep soaking
            self.report.violations.append(str(exc))

    # ------------------------------------------------------------------
    def _harvest_engine_counters(self) -> None:
        scheduler = self.service.scheduler
        transport = self.service.transport
        self.report.events = self._events_base + scheduler.events_processed
        self.report.frames_sent += transport.frames_sent
        self.report.frames_delivered += transport.frames_delivered
        self.report.messages_sent += transport.stats.sent
        self.report.messages_dropped += transport.stats.dropped

    def _restart(self) -> None:
        """Graceful shutdown mid-soak, then resume a fresh service from
        the snapshot: the key-tree state must survive byte-identically
        (canonical serialization), absent members are evicted, and the
        soak continues against the restarted service."""
        old = self.service
        old.drain()
        pre_state = old.world.server.key_tree_state()
        pre_interval = old.world.server.interval
        self._harvest_engine_counters()
        blob = old.shutdown()
        self._events_base = self.report.events
        service = self._build_service(snapshot=blob)
        post_state = service.world.server.key_tree_state()
        if post_state != pre_state:
            self.report.restart_state_match = False
            self.report.violations.append(
                "restart: restored key-tree state differs from snapshot"
            )
        if service.world.server.interval != pre_interval:
            self.report.violations.append(
                "restart: interval counter did not survive the snapshot"
            )
        service.start()
        if self.metrics_http:
            service.start_metrics_http()
        service.evict_absent_members()
        service.end_interval(delay=self.interval_ms)
        self.report.intervals += 1
        self.service = service
        service.drain()
        self.report.restarts += 1
