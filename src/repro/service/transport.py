"""The live transport: the shared delivery fabric with stream egress.

:class:`StreamTransport` keeps everything about
:class:`repro.net.scheduling.Transport` — the fault plan is consulted at
send time, topology delay schedules the dispatch, crash windows and
detach checks run at terminal delivery — and changes exactly one step:
when the due message's destination has a registered stream, the dispatch
writes a frame to that stream instead of calling the node directly.  The
far side's reader feeds :meth:`StreamTransport.ingress`, which funnels
into the same terminal delivery.  Hosts without a stream (the key server
itself, or a fallback run without sockets) deliver in-process, so the
protocol is indifferent to which hosts are "really" remote.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, TYPE_CHECKING

from ..net.scheduling import Transport
from .wire import encode_frame

if TYPE_CHECKING:  # pragma: no cover - typing only
    import asyncio

    from ..faults.plan import FaultPlan
    from ..net.topology import Topology
    from .aio import AsyncioScheduler


class StreamTransport(Transport):
    """Transport whose dispatch step crosses a real asyncio stream."""

    def __init__(self, scheduler: "AsyncioScheduler", topology: "Topology"):
        super().__init__(scheduler, topology)
        #: host -> hub-side writer for that host's endpoint connection.
        self.writers: Dict[int, "asyncio.StreamWriter"] = {}
        self.frames_sent = 0
        self.frames_delivered = 0
        #: Dispatches that fell back to in-process delivery because the
        #: destination had no live stream.
        self.local_deliveries = 0

    # ------------------------------------------------------------------
    def register_stream(
        self, host: int, writer: "asyncio.StreamWriter"
    ) -> None:
        """Route subsequent traffic for ``host`` over ``writer``."""
        self.writers[host] = writer
        self.scheduler.io_bound = True

    def unregister_stream(self, host: int) -> None:
        self.writers.pop(host, None)

    # ------------------------------------------------------------------
    def _dispatch(
        self, src: int, dst: int, payload: Any, plan: Optional["FaultPlan"]
    ) -> None:
        writer = self.writers.get(dst)
        if writer is None or writer.is_closing():
            if writer is not None:
                self.writers.pop(dst, None)
            self.local_deliveries += 1
            self._deliver(src, dst, payload, plan)
            return
        self.scheduler.io_started()
        self.frames_sent += 1
        writer.write(encode_frame(src, dst, payload))

    def ingress(self, src: int, dst: int, payload: Any) -> None:
        """A frame arrived on ``dst``'s endpoint stream.  Terminal
        delivery runs against the *currently installed* fault plan (the
        plan object is process-shared, so for the single-plan service
        this matches the captured-plan semantics of the base fabric)."""
        try:
            self._deliver(src, dst, payload, self.fault_plan)
        finally:
            self.frames_delivered += 1
            self.scheduler.io_finished()
