"""The ``"asyncio"`` scheduling backend: a real asyncio event loop
behind the :class:`repro.net.scheduling.Scheduler` contract.

Two drive modes, one timer queue:

* **Deterministic (default).**  Timers fire in ``(when, sequence)``
  order with virtual timestamps — byte-identical to the ``"simulator"``
  and ``"eventloop"`` backends, which is how the backend passes the
  cross-backend conformance lane (``pytest -q -m conformance``)
  unchanged.  Without streams attached no asyncio loop is even spun up:
  the drain is a plain heap loop, so conformance-scale tests do not leak
  event-loop file descriptors.
* **Realtime (``realtime=True``).**  The drain paces timers against the
  wall clock (``time_scale`` real seconds per virtual unit) through a
  real ``asyncio`` loop, yielding between callbacks so stream readers
  and writers interleave — the live service mode (docs/SERVICE.md).
  ``clock == "wall"`` advertises the capability: exact-time assertions
  degrade to lower bounds (see :func:`repro.net.scheduling.clock_of`),
  they are never skipped.

The scheduler also tracks ``inflight`` — frames a
:class:`repro.service.transport.StreamTransport` has written to a socket
but not yet dispatched on arrival — so a drain with an empty timer queue
waits for the wire to go quiet before declaring quiescence.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
from typing import Any, Callable, List, Optional

import numpy as np

from ..net.eventloop import TimerHandle
from ..net.scheduling import SchedulingBackend, Transport, register_backend
from ..trace import hooks as _trace_hooks


class AsyncioScheduler:
    """A :class:`~repro.net.scheduling.Scheduler` driven by asyncio."""

    def __init__(
        self,
        seed: int = 0,
        realtime: bool = False,
        time_scale: float = 1e-3,
        stall_timeout: float = 5.0,
    ):
        self.seed = seed
        #: Pace timers against the wall clock instead of collapsing
        #: virtual time (the live-service mode).
        self.realtime = realtime
        #: Real seconds per virtual time unit (the protocol's unit is
        #: milliseconds, so 1e-3 is true realtime and 1e-4 is 10x).
        self.time_scale = time_scale
        #: Real seconds to wait on a silent wire (inflight frames whose
        #: connection died) before a drain gives up.
        self.stall_timeout = stall_timeout
        #: Clock capability flag (:func:`repro.net.scheduling.clock_of`).
        self.clock = "wall" if realtime else "virtual"
        self.now = 0.0
        self._heap: List[TimerHandle] = []
        self._seq = itertools.count()
        self.events_processed = 0
        #: backend-local randomness, a deterministic function of ``seed``
        self.rng = np.random.default_rng(seed)
        #: Frames written to a stream but not yet dispatched on arrival.
        self.inflight = 0
        #: Set by :class:`~repro.service.transport.StreamTransport` once
        #: any stream is attached: drains then yield to the loop between
        #: callbacks so socket IO interleaves with timers.
        self.io_bound = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._owns_loop = False
        self._wakeup: Optional[asyncio.Event] = None
        self._wall_start: Optional[float] = None
        self._draining = False

    # ------------------------------------------------------------------
    # The Scheduler interface
    # ------------------------------------------------------------------
    def schedule(
        self, delay: float, action: Callable[[], None]
    ) -> TimerHandle:
        """Run ``action`` after ``delay`` virtual time units."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.now + delay, action)

    def schedule_at(
        self, time: float, action: Callable[[], None]
    ) -> TimerHandle:
        if time < self.now:
            raise ValueError(
                f"cannot schedule at {time}, current time is {self.now}"
            )
        handle = TimerHandle(time, next(self._seq), action)
        heapq.heappush(self._heap, handle)
        self._kick()
        return handle

    def step(self) -> bool:
        """Run the next pending timer; False when the queue is empty."""
        handle = self._peek()
        if handle is None:
            return False
        heapq.heappop(self._heap)
        self._fire(handle)
        return True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Drain timers (same contract as every backend: stop when the
        queue empties, virtual time passes ``until``, or ``max_events``
        ran; advance ``now`` to ``until`` when the queue drains early).
        Emits the backend-independent ``sim.run`` span when traced."""
        tctx = _trace_hooks.ACTIVE
        if tctx is None:
            return self._run(until, max_events)
        with tctx.span("sim.run") as span:
            executed = self._run(until, max_events)
            span.set(events=executed, now_ms=self.now)
        tctx.registry.inc("sim.events", executed)
        return executed

    @property
    def pending(self) -> int:
        return sum(1 for h in self._heap if not h._cancelled)

    # ------------------------------------------------------------------
    # asyncio-compatible spellings (mirror repro.net.eventloop.EventLoop)
    # ------------------------------------------------------------------
    def time(self) -> float:
        """The loop's clock (``asyncio.AbstractEventLoop.time``)."""
        return self.now

    def call_soon(self, callback: Callable[..., None], *args: Any) -> TimerHandle:
        """Schedule ``callback(*args)`` at the current instant; it runs
        after everything already queued for this instant (FIFO)."""
        return self.call_at(self.now, callback, *args)

    def call_later(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> TimerHandle:
        if args:
            return self.schedule(delay, lambda: callback(*args))
        return self.schedule(delay, callback)

    def call_at(
        self, when: float, callback: Callable[..., None], *args: Any
    ) -> TimerHandle:
        if args:
            return self.schedule_at(when, lambda: callback(*args))
        return self.schedule_at(when, callback)

    # ------------------------------------------------------------------
    # Live-service surface
    # ------------------------------------------------------------------
    def run_coro(self, coro: "Any") -> Any:
        """Run a coroutine to completion on this scheduler's loop — the
        sync entry point the service uses for connection setup/teardown."""
        return self._ensure_loop().run_until_complete(coro)

    def io_started(self) -> None:
        """A frame went onto the wire (StreamTransport egress)."""
        self.inflight += 1

    def io_finished(self) -> None:
        """A frame came off the wire (or its connection died)."""
        self.inflight -= 1
        self._kick()

    @property
    def quiescent(self) -> bool:
        """No pending timers and nothing on the wire."""
        return self.pending == 0 and self.inflight == 0

    def close(self) -> None:
        """Release the private asyncio loop (if one was created)."""
        if (
            self._loop is not None
            and self._owns_loop
            and not self._loop.is_closed()
        ):
            self._loop.close()
        self._loop = None

    async def drain(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Coroutine drain: the async twin of :meth:`run`, with realtime
        pacing and waits for inflight stream frames.  Timers still fire
        strictly in ``(when, sequence)`` order; ingress dispatches run in
        the gaps where the drain awaits."""
        self._ensure_loop()
        if self._draining:
            raise RuntimeError("scheduler is already draining")
        self._draining = True
        self._wakeup = asyncio.Event()
        if self.realtime:
            self._wall_start = self._loop.time() - self.now * self.time_scale
        executed = 0
        stalled = 0.0
        try:
            while True:
                if max_events is not None and executed >= max_events:
                    break
                head = self._peek()
                if head is None:
                    if self.inflight > 0:
                        # Empty queue but frames on the wire: let reader
                        # tasks run.  A wire silent past stall_timeout
                        # means a dead connection; give up rather than
                        # hang (io_finished was missed by a peer crash).
                        if await self._pause(0.05):
                            stalled = 0.0
                        else:
                            stalled += 0.05
                            if stalled >= self.stall_timeout:
                                break
                        continue
                    break
                stalled = 0.0
                if until is not None and head.when > until:
                    break
                if self.realtime:
                    # lint: disable=flow-await-race -- single-drain invariant: the _draining guard makes this coroutine the only writer of _wall_start until the finally reset, so it cannot change across the pacing awaits
                    target = self._wall_start + head.when * self.time_scale
                    delay = target - self._loop.time()
                    if delay > 0:
                        # Pace; an early wakeup (new timer or ingress)
                        # re-evaluates which timer is due first.
                        await self._pause(delay)
                        continue
                heapq.heappop(self._heap)
                self._fire(head)
                executed += 1
                if self.io_bound:
                    await asyncio.sleep(0)
        finally:
            self._draining = False
            self._wakeup = None
            self._wall_start = None
        head = self._peek()
        if until is not None and (head is None or head.when > until):
            self.now = max(self.now, until)
        return executed

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _run(self, until: Optional[float], max_events: Optional[int]) -> int:
        if self.realtime or self.io_bound or self.inflight:
            return self.run_coro(self.drain(until, max_events))
        # Pure virtual-clock drain: no asyncio machinery, no loop fds —
        # byte-identical to repro.net.eventloop.EventLoop._drain.
        executed = 0
        while self._heap:
            if max_events is not None and executed >= max_events:
                break
            head = self._heap[0]
            if head._cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and head.when > until:
                break
            heapq.heappop(self._heap)
            self._fire(head)
            executed += 1
        if until is not None and (not self._heap or self._heap[0].when > until):
            self.now = max(self.now, until)
        return executed

    def _peek(self) -> Optional[TimerHandle]:
        while self._heap and self._heap[0]._cancelled:
            heapq.heappop(self._heap)
        return self._heap[0] if self._heap else None

    def _fire(self, handle: TimerHandle) -> None:
        if self.realtime and self._loop is not None and self._wall_start is not None:
            # Honest late-fire timestamps: a timer that ran behind the
            # wall schedule reports the time it actually fired.  This is
            # the one place wall time leaks into ``now`` — hence the
            # "wall" clock capability.
            elapsed = (self._loop.time() - self._wall_start) / self.time_scale
            self.now = max(handle.when, elapsed)
        else:
            self.now = handle.when
        self.events_processed += 1
        handle._callback()

    def _kick(self) -> None:
        if self._wakeup is not None:
            self._wakeup.set()

    async def _pause(self, timeout: float) -> bool:
        """Wait for a wakeup (new timer / ingress frame) up to
        ``timeout`` real seconds; True when woken, False on timeout."""
        self._wakeup.clear()
        try:
            await asyncio.wait_for(self._wakeup.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    def _ensure_loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None or self._loop.is_closed():
            try:
                self._loop = asyncio.get_running_loop()
                self._owns_loop = False
            except RuntimeError:
                self._loop = asyncio.new_event_loop()
                self._owns_loop = True
        return self._loop


def asyncio_backend(topology) -> SchedulingBackend:
    """The ``"asyncio"`` backend: deterministic virtual-clock drive by
    default (what the conformance lane exercises); the service turns on
    realtime pacing and the stream transport explicitly."""
    scheduler = AsyncioScheduler()
    return SchedulingBackend("asyncio", scheduler, Transport(scheduler, topology))


register_backend("asyncio", asyncio_backend)
