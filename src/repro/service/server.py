"""The long-running rekeying service (docs/SERVICE.md).

:class:`RekeyService` assembles the ``"asyncio"`` backend — an
:class:`~repro.service.aio.AsyncioScheduler` plus a
:class:`~repro.service.transport.StreamTransport` — and runs the
existing message-level protocol (:class:`repro.distributed.harness.
DistributedGroup`) on it: the key server lives in-process at the hub,
every member endpoint holds a real asyncio stream, and all traffic to a
member crosses its socket.  The facade is synchronous (``start`` /
``join`` / ``drain`` / ``checkpoint`` / ``shutdown``) so tools and
tests drive it like any other harness; coroutines run on the
scheduler's private loop.

Lifecycle::

    service = RekeyService(topology, server_host=n, realtime=True)
    service.start()
    service.join(host=3)
    service.end_interval(delay=512.0)
    service.drain()                      # quiescent: wire + timers idle
    service.checkpoint()                 # repro.verify invariant audit
    blob = service.shutdown(snapshot_path="state.snap")

    resumed = RekeyService(topology, server_host=n, snapshot=blob)
    resumed.start()
    resumed.evict_absent_members()       # old members have no endpoint
    ...                                  # rekeying continues

Fault plans (:mod:`repro.faults`) install at the transport seam exactly
as in batch runs — drops, delays, and crash windows apply to live
socket traffic because the plan is consulted at send time and at
terminal delivery, both of which still run in-process.
"""

from __future__ import annotations

import asyncio
from pathlib import Path
from typing import Dict, Optional, Tuple

from ..core.id_assignment import PAPER_THRESHOLDS
from ..core.ids import IdScheme, PAPER_SCHEME
from ..distributed.harness import DistributedGroup
from ..distributed.nodes import UserNode
from ..faults.plan import FaultPlan
from ..net.scheduling import SchedulingBackend
from ..net.topology import Topology
from ..trace import hooks as _trace_hooks
from . import wire
from .aio import AsyncioScheduler
from .transport import StreamTransport


def expected_intervals(world) -> Dict[object, set]:
    """Per-member recovery obligation: the announced interval numbers
    from the interval that announced the member (its join — or, after an
    ID replacement, the replacement) onward.  A member owes no copies of
    announcements that predate its own membership."""
    announced_at: Dict[object, int] = {}
    for update in world.server._history:
        for record in update.joins:
            announced_at.setdefault(record.user_id, update.interval)
        for record in update.replacements:
            announced_at.setdefault(record.user_id, update.interval)
    all_intervals = sorted(u.interval for u in world.server._history)
    return {
        uid: {i for i in all_intervals if i >= start}
        for uid, start in announced_at.items()
    }


class RekeyService:
    """Key server + live member endpoints over asyncio streams."""

    def __init__(
        self,
        topology: Topology,
        server_host: int,
        scheme: IdScheme = PAPER_SCHEME,
        thresholds: Tuple[float, ...] = PAPER_THRESHOLDS,
        k: int = 4,
        seed: int = 0,
        fault_plan: Optional[FaultPlan] = None,
        realtime: bool = False,
        time_scale: float = 1e-4,
        use_sockets: bool = True,
        snapshot: Optional[bytes] = None,
        stall_timeout: float = 5.0,
    ):
        self.seed = seed
        self.scheduler = AsyncioScheduler(
            seed=seed,
            realtime=realtime,
            time_scale=time_scale,
            stall_timeout=stall_timeout,
        )
        self.transport = StreamTransport(self.scheduler, topology)
        backend = SchedulingBackend("asyncio", self.scheduler, self.transport)
        self.world = DistributedGroup(
            topology,
            server_host,
            scheme,
            thresholds,
            k=k,
            seed=seed,
            fault_plan=fault_plan,
            backend=backend,
        )
        if snapshot is not None:
            self.world.server.restore_state(snapshot)
        #: Degrades to in-process delivery when False (sandboxes without
        #: sockets); every protocol outcome is identical either way.
        self.use_sockets = use_sockets
        self.bind_host = "127.0.0.1"
        self.port: Optional[int] = None
        self.metrics_port: Optional[int] = None
        self.checkpoints_passed = 0
        self._hub: Optional[asyncio.AbstractServer] = None
        self._metrics_hub: Optional[asyncio.AbstractServer] = None
        self._endpoints: Dict[int, Tuple[asyncio.Task, asyncio.StreamWriter]] = {}
        self._running = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Bind the hub socket (when sockets are enabled and available)."""
        if self._running:
            return
        if self.use_sockets:
            try:
                self.scheduler.run_coro(self._start_hub())
            except OSError:
                self.use_sockets = False
        self._running = True

    def start_metrics_http(self) -> Optional[int]:
        """Expose a live ``GET /metrics`` endpoint (Prometheus text from
        the active trace registry) on an ephemeral port; returns the
        port, or None when sockets are unavailable."""
        if not self.use_sockets:
            return None
        try:
            self.scheduler.run_coro(self._start_metrics_hub())
        except OSError:
            return None
        return self.metrics_port

    def shutdown(self, snapshot_path: Optional[str] = None) -> bytes:
        """Graceful stop: drain to quiescence, snapshot the key server,
        close every stream, release the loop.  Returns the snapshot blob
        (also written to ``snapshot_path`` when given)."""
        if self._running:
            self.drain()
        blob = self.world.server.snapshot_state()
        if snapshot_path is not None:
            Path(snapshot_path).write_bytes(blob)
        self.stop()
        return blob

    def stop(self) -> None:
        """Close streams and the loop without draining or snapshotting."""
        if self._endpoints or self._hub or self._metrics_hub:
            self.scheduler.run_coro(self._close_streams())
        self.scheduler.close()
        self._running = False

    # ------------------------------------------------------------------
    # Workload surface (delays are virtual time units from "now")
    # ------------------------------------------------------------------
    def join(self, host: int, delay: float = 0.0) -> UserNode:
        """Admit a member: open its endpoint stream, schedule its join
        protocol ``delay`` from now."""
        node = self.world.schedule_join(host, at=self.scheduler.now + delay)
        self._connect(host)
        return node

    def leave(self, host: int, delay: float = 0.0) -> None:
        self.world.schedule_leave_of_host(host, at=self.scheduler.now + delay)

    def crash(self, host: int, delay: float = 0.0) -> None:
        """Silent failure: the member detaches without any protocol;
        neighbors must detect it by missed probes (Section 3.2)."""
        self.world.schedule_crash(host, at=self.scheduler.now + delay)

    def end_interval(self, delay: float = 0.0) -> None:
        self.world.end_interval(at=self.scheduler.now + delay)

    def probe_round(self, delay: float = 0.0) -> None:
        self.world.schedule_probe_round(at=self.scheduler.now + delay)

    def recovery_round(self, delay: float = 0.0) -> None:
        self.world.schedule_recovery_round(at=self.scheduler.now + delay)

    def refill_sweep(self, delay: float = 0.0) -> None:
        self.world.schedule_refill_sweep(at=self.scheduler.now + delay)

    # ------------------------------------------------------------------
    # Draining and audits
    # ------------------------------------------------------------------
    def drain(self, until: Optional[float] = None) -> None:
        """Run the service until timers and the wire are idle (or until
        virtual time ``until``).  Realtime mode paces; deterministic
        mode collapses virtual time."""
        self.world.run(until=until)

    @property
    def quiescent(self) -> bool:
        return self.scheduler.quiescent

    def checkpoint(self) -> None:
        """Quiescent audit against the :mod:`repro.verify` invariant
        set.  Clean runs get the full distributed audit (1-consistency +
        Theorem-1 exactly-once); under an installed fault plan the
        theorems that hold are 1-consistency *after convergence* and
        recovery completeness (every active member holds every announced
        interval — reference-[31] recovery is the repair path), so those
        are asserted instead.  Section-2.4 key-tree agreement is checked
        in both regimes.  Raises ``InvariantViolation``; increments
        :attr:`checkpoints_passed` otherwise."""
        from ..verify import (
            InvariantViolation,
            VerificationContext,
            ViolationReport,
        )

        world = self.world
        if world.fault_plan is None:
            VerificationContext(oracle=False).observe_distributed(world)
        else:
            reports = [
                ViolationReport(
                    checker="one-consistency",
                    citation="Definition 3 (K=1) / Theorem 1",
                    detail=problem,
                    seed=self.seed,
                )
                for problem in world.check_one_consistency()
            ]
            expected = expected_intervals(world)
            for user in world.active_users():
                missing = expected.get(user.user_id, set()) - set(
                    user.copies_received
                )
                if missing:
                    reports.append(
                        ViolationReport(
                            checker="recovery-completeness",
                            citation="reference [31] unicast recovery",
                            detail=(
                                f"{user.user_id} missing interval(s) "
                                f"{sorted(missing)}"
                            ),
                            seed=self.seed,
                        )
                    )
            if reports:
                raise InvariantViolation(reports, "service checkpoint")
        VerificationContext(oracle=False).observe_key_tree(
            world.server.key_tree
        )
        self.checkpoints_passed += 1

    def converge(self, rounds: int = 8, interval_ms: float = 512.0) -> int:
        """Protocol-only convergence: repeat bounded repair rounds —
        flush any pending announcement, probe twice, run reference-[31]
        recovery, sweep refills — until tables are 1-consistent (or
        ``rounds`` ran).  Needed because wire arrival can legitimately
        straddle a timer boundary (a join's last message lands after the
        announcement that should have carried it), which virtual-clock
        drives never see.  Returns the rounds used; every round is the
        protocol's own traffic, not oracle intervention."""
        for attempt in range(rounds):
            self.drain()
            if not self.world.check_one_consistency():
                return attempt
            server = self.world.server
            if (
                server._pending_joins
                or server._pending_leaves
                or server._pending_replacements
            ):
                self.end_interval(delay=0.05 * interval_ms)
            self.probe_round(delay=0.1 * interval_ms)
            self.probe_round(delay=0.4 * interval_ms)
            self.recovery_round(delay=0.7 * interval_ms)
            self.refill_sweep(delay=0.8 * interval_ms)
            self.drain()
        self.drain()
        return rounds

    def evict_absent_members(self) -> int:
        """Queue a leave for every registered member whose host has no
        live, joined node — the restart path: a restored snapshot knows
        the members, but their endpoints are gone, so the next interval
        end rotates them out and rekeying continues over live members."""
        evicted = 0
        for user_id, record in sorted(self.world.server.records.items()):
            node = self.transport.node_at(record.host)
            if node is None or not getattr(node, "joined", False):
                if self.world.server.evict(user_id):
                    evicted += 1
        return evicted

    def scrape_prometheus(self) -> str:
        """Prometheus text from the active trace registry (the soak
        harness runs inside ``with tracing(...)``)."""
        tctx = _trace_hooks.ACTIVE
        if tctx is None:
            return "# no active trace context\n"
        return tctx.registry.to_prometheus_text()

    # ------------------------------------------------------------------
    # Streams
    # ------------------------------------------------------------------
    def _connect(self, host: int) -> None:
        if not self.use_sockets or host in self._endpoints:
            return
        self.scheduler.run_coro(self._connect_endpoint(host))

    async def _start_hub(self) -> None:
        self._hub = await asyncio.start_server(
            self._on_connection, self.bind_host, 0
        )
        self.port = self._hub.sockets[0].getsockname()[1]

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        frame = await wire.read_frame(reader)
        if frame is None or not isinstance(frame[2], wire.Hello):
            writer.close()
            return
        host = frame[2].host
        self.transport.register_stream(host, writer)
        try:
            await reader.read()  # endpoints are one-way; wait for EOF
        finally:
            if self.transport.writers.get(host) is writer:
                self.transport.unregister_stream(host)

    async def _connect_endpoint(self, host: int) -> None:
        reader, writer = await asyncio.open_connection(
            self.bind_host, self.port
        )
        writer.write(
            wire.encode_frame(
                host, self.world.server.host, wire.Hello(host)
            )
        )
        await writer.drain()
        # Wait for the hub to register the writer so no early dispatch
        # silently falls back to local delivery.
        for _ in range(2000):
            if host in self.transport.writers:
                break
            await asyncio.sleep(0.001)
        task = asyncio.ensure_future(self._endpoint_reader(host, reader))
        self._endpoints[host] = (task, writer)

    async def _endpoint_reader(
        self, host: int, reader: asyncio.StreamReader
    ) -> None:
        while True:
            frame = await wire.read_frame(reader)
            if frame is None:
                return
            self.transport.ingress(*frame)

    async def _start_metrics_hub(self) -> None:
        self._metrics_hub = await asyncio.start_server(
            self._on_metrics_connection, self.bind_host, 0
        )
        self.metrics_port = self._metrics_hub.sockets[0].getsockname()[1]

    async def _on_metrics_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        line = await reader.readline()  # request line
        while line not in (b"\r\n", b"\n", b""):
            line = await reader.readline()  # drain headers
        body = self.scrape_prometheus().encode("utf-8")
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/plain; version=0.0.4\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n"
            b"Connection: close\r\n\r\n" + body
        )
        await writer.drain()
        writer.close()

    async def _close_streams(self) -> None:
        for host in sorted(self._endpoints):
            task, writer = self._endpoints[host]
            task.cancel()
            writer.close()
        self._endpoints.clear()
        # Let cancellations propagate and hub-side ``_on_connection``
        # tasks observe their endpoints' EOF before the loop closes.
        for _ in range(20):
            await asyncio.sleep(0.005)
            if not self.transport.writers:
                break
        if self._hub is not None:
            self._hub.close()
            await self._hub.wait_closed()
            self._hub = None
        if self._metrics_hub is not None:
            self._metrics_hub.close()
            await self._metrics_hub.wait_closed()
            self._metrics_hub = None
        for host in sorted(self.transport.writers):
            self.transport.writers[host].close()
        self.transport.writers.clear()
