"""Driver for Fig. 14: sensitivity of T-mesh latency to ``D`` and the
delay thresholds ``(R_1, ..., R_{D-1})``.

The paper multicasts a rekey message on the PlanetLab topology with 226
joins for several ``(D, R)`` combinations chosen by the Section-4.4
heuristic (R1 around 100+ ms; R_{D-1} a few ms; successive ratio >= 2)
and finds the latency distributions essentially insensitive to the
choice."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..core.ids import IdScheme
from ..core.tmesh import rekey_session
from ..metrics.latency import tmesh_latency
from ..metrics.stats import inverse_cdf
from .common import build_group, build_topology
from .config import SCHEME

#: The (D, thresholds) variants plotted in Fig. 14.
PAPER_VARIANTS: Tuple[Tuple[int, Tuple[float, ...]], ...] = (
    (5, (150.0, 30.0, 9.0, 3.0)),     # the default used everywhere else
    (5, (150.0, 80.0, 30.0, 9.0)),
    (4, (150.0, 30.0, 9.0)),
    (3, (150.0, 9.0)),
)


@dataclass
class VariantLatency:
    """T-mesh rekey latency under one (D, thresholds) choice."""

    num_digits: int
    thresholds: Tuple[float, ...]
    app_delay: np.ndarray  # per-user, one run
    rdp: np.ndarray

    @property
    def label(self) -> str:
        r = ",".join(f"{t:g}" for t in self.thresholds)
        return f"D={self.num_digits} R=({r})"

    def median_delay(self) -> float:
        return float(np.median(self.app_delay))

    def fraction_rdp_below(self, threshold: float) -> float:
        return inverse_cdf(self.rdp).fraction_below(threshold)


@dataclass
class ThresholdSweep:
    num_users: int
    variants: List[VariantLatency]

    def max_median_delay_spread(self) -> float:
        """Ratio of worst to best median delay across variants — the
        paper's 'not sensitive' claim means this stays near 1."""
        medians = [v.median_delay() for v in self.variants]
        return max(medians) / min(medians)

    def render(self) -> str:
        lines = [
            f"Fig 14 — T-mesh rekey latency vs (D, thresholds); "
            f"PlanetLab, {self.num_users} users",
            f"{'variant':32s} {'median delay':>13s} {'RDP<2':>7s} {'RDP<3':>7s}",
        ]
        for v in self.variants:
            lines.append(
                f"{v.label:32s} {v.median_delay():>11.1f}ms "
                f"{v.fraction_rdp_below(2):>6.0%} {v.fraction_rdp_below(3):>6.0%}"
            )
        lines.append(
            f"median-delay spread (worst/best): "
            f"{self.max_median_delay_spread():.2f}x"
        )
        return "\n".join(lines)


def run_threshold_sweep(
    num_users: int = 226,
    variants: Sequence[Tuple[int, Tuple[float, ...]]] = PAPER_VARIANTS,
    seed: int = 0,
) -> ThresholdSweep:
    """Run Fig. 14: one T-mesh rekey multicast per (D, R) variant, same
    topology and join order throughout."""
    topology = build_topology("planetlab", num_users, seed)
    results: List[VariantLatency] = []
    for num_digits, thresholds in variants:
        scheme = IdScheme(num_digits=num_digits, base=SCHEME.base)
        group = build_group(
            topology, num_users, seed, scheme=scheme, thresholds=thresholds
        )
        session = rekey_session(group.server_table, group.tables, topology)
        sample = tmesh_latency(session, topology)
        results.append(
            VariantLatency(
                num_digits=num_digits,
                thresholds=tuple(thresholds),
                app_delay=sample.app_delay,
                rdp=sample.rdp,
            )
        )
    return ThresholdSweep(num_users=num_users, variants=results)
