"""Shared experiment plumbing: topology construction, group building,
NICE building, and the centralized ID-assignment controller the paper uses
for its rekey-cost simulations."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..alm.nice import NiceHierarchy
from ..core.id_assignment import IdAssigner, complete_user_id
from ..core.id_tree import IdTree
from ..core.ids import Id, IdScheme
from ..core.membership import Group
from ..core.neighbor_table import UserRecord
from ..net.gtitm import TransitStubParams, TransitStubTopology
from ..net.planetlab import PlanetLabTopology
from ..net.topology import Topology
from ..verify import hooks as _verify_hooks
from .config import SCHEME, Scale, current_scale


#: Host count above which build_topology skips the dense RTT cache
#: (quadratic memory: 4096 hosts ~ 128 MiB of float64).
DENSE_RTT_HOST_LIMIT = 4096


def build_topology(
    kind: str,
    num_users: int,
    seed: int,
    gtitm_params: Optional[TransitStubParams] = None,
    dense_rtt: Optional[bool] = None,
) -> Topology:
    """A topology with ``num_users + 1`` hosts; by convention the last
    host index is the key server.

    ``dense_rtt`` controls the host-to-host RTT cache the simulation hot
    paths read: ``None`` (default) builds it up to
    :data:`DENSE_RTT_HOST_LIMIT` hosts, ``True`` forces it, ``False``
    keeps the scalar on-demand path (the cache never changes results —
    its entries are bitwise-equal to the scalar computation — so this is
    purely a speed/memory knob, used by the perf harness to time both
    paths)."""
    num_hosts = num_users + 1
    if kind == "planetlab":
        topology: Topology = PlanetLabTopology(num_hosts=num_hosts, seed=seed)
    elif kind == "gtitm":
        params = gtitm_params if gtitm_params is not None else current_scale().gtitm_params
        topology = TransitStubTopology(num_hosts=num_hosts, params=params, seed=seed)
    else:
        raise ValueError(f"unknown topology kind {kind!r}")
    if dense_rtt is None:
        dense_rtt = num_hosts <= DENSE_RTT_HOST_LIMIT
    if dense_rtt:
        topology.ensure_rtt_matrix()
    return topology


def server_host_of(topology: Topology) -> int:
    """The host index reserved for the key server (the last one)."""
    return topology.num_hosts - 1


def build_group(
    topology: Topology,
    num_users: int,
    seed: int,
    scheme: IdScheme = SCHEME,
    thresholds: Optional[Sequence[float]] = None,
    k: int = 4,
    random_ids: bool = False,
) -> Group:
    """Join ``num_users`` users (hosts 0..num_users-1 in random order)
    using the full Section-3.1 protocol (or random IDs for ablations)."""
    rng = np.random.default_rng(seed)
    assigner = (
        IdAssigner(scheme, thresholds)
        if thresholds is not None
        else IdAssigner(scheme, _default_thresholds(scheme))
    )
    group = Group(
        scheme, topology, server_host_of(topology), assigner, k=k, rng=rng
    )
    order = rng.permutation(num_users)
    for host in order:
        if random_ids:
            group.random_id_join(int(host))
        else:
            group.join(int(host))
    ctx = _verify_hooks.ACTIVE
    if ctx is not None:
        # Audit the finished group's tables against Definition 3 before
        # any experiment multicasts over them.
        ctx.observe_group(group)
    return group


def _default_thresholds(scheme: IdScheme) -> Tuple[float, ...]:
    """The paper's R values for D=5, or the Section-4.4 heuristic for
    other D: R1 ~ 150 ms, R_{D-1} a few ms, ratio >= 2 between levels."""
    from ..core.id_assignment import PAPER_THRESHOLDS

    if scheme.num_digits == 5:
        return PAPER_THRESHOLDS
    need = scheme.num_digits - 1
    values: List[float] = [150.0]
    while len(values) < need:
        values.append(max(3.0, values[-1] / 3.0))
    return tuple(values[:need])


def build_nice(
    topology: Topology, hosts: Sequence[int], seed: int, k: int = 3
) -> NiceHierarchy:
    """Sequentially join hosts into a NICE hierarchy, in the given order
    (the paper uses the same join order for T-mesh and NICE)."""
    hierarchy = NiceHierarchy(topology, k=k)
    for host in hosts:
        hierarchy.join(int(host))
    return hierarchy


def join_order(num_users: int, seed: int) -> List[int]:
    """The shared join order for one run: hosts 0..N-1 permuted."""
    rng = np.random.default_rng(seed)
    return [int(h) for h in rng.permutation(num_users)]


# ----------------------------------------------------------------------
# Centralized ID assignment (the paper's Fig. 12 controller)
# ----------------------------------------------------------------------
class CentralizedController:
    """Assigns IDs without building neighbor tables.

    The paper (Section 4.2): "For efficiency, we use a centralized
    controller to simulate the J joins and L leaves in that rekey
    interval."  The controller runs the same digit-by-digit percentile
    protocol but answers record queries from global knowledge of the ID
    tree, which yields the same kind of topology-aware IDs at a fraction
    of the cost.
    """

    def __init__(
        self,
        scheme: IdScheme,
        topology: Topology,
        seed: int,
        thresholds: Optional[Sequence[float]] = None,
        sample_limit: int = 32,
    ):
        self.scheme = scheme
        self.topology = topology
        self.rng = np.random.default_rng(seed)
        self.assigner = IdAssigner(
            scheme, thresholds if thresholds is not None else _default_thresholds(scheme)
        )
        self.sample_limit = sample_limit
        self.id_tree = IdTree(scheme)
        self.records: Dict[Id, UserRecord] = {}

    def _query(self, responder: UserRecord, prefix: Id) -> List[UserRecord]:
        members = [
            self.records[uid]
            for uid in self.id_tree.users_in_subtree(prefix)
            if uid != responder.user_id
        ]
        if len(members) > self.sample_limit:
            picks = self.rng.choice(len(members), self.sample_limit, replace=False)
            members = [members[int(i)] for i in picks]
        return members

    def join(self, host: int) -> Id:
        access = self.topology.access_rtt(host)
        if not self.records:
            user_id = self.scheme.first_user_id()
        else:
            ids = list(self.records)
            bootstrap = self.records[ids[int(self.rng.integers(0, len(ids)))]]
            outcome = self.assigner.determine_prefix(
                host, access, self.topology, self._query, bootstrap
            )
            user_id = complete_user_id(
                self.id_tree, outcome.determined_prefix, self.rng
            )
        self.id_tree.add_user(user_id)
        self.records[user_id] = UserRecord(user_id, host, access)
        return user_id

    def leave(self, user_id: Id) -> None:
        self.id_tree.remove_user(user_id)
        del self.records[user_id]
